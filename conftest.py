"""Pytest bootstrap: make ``src/`` importable without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on environments without the ``wheel`` package),
but adding the source tree to ``sys.path`` here means the test-suite and
benchmark harness also run straight from a fresh checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    """Repo-wide pytest options.

    ``--chaos-budget`` scales the chaos corpus (tests/chaos): by default
    the pinned corpus runs in full; nightly jobs pass a larger budget to
    extend the seed range, and a smaller one gives a quick smoke slice.

    ``--endurance-budget`` scales the endurance benchmark's steady phase
    (benchmarks/test_endurance.py) in simulated minutes: the default
    regenerates the committed 30-minute baseline; CI's endurance job
    passes a short smoke horizon, and nightly jobs extend it.
    """
    parser.addoption(
        "--chaos-budget",
        type=int,
        default=None,
        metavar="N",
        help="number of seeded chaos scenarios to run (default: the pinned corpus)",
    )
    parser.addoption(
        "--endurance-budget",
        type=int,
        default=None,
        metavar="MINUTES",
        help="steady-phase sim-minutes for the endurance benchmark (default: 30)",
    )
