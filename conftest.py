"""Pytest bootstrap: make ``src/`` importable without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on environments without the ``wheel`` package),
but adding the source tree to ``sys.path`` here means the test-suite and
benchmark harness also run straight from a fresh checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
