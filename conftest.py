"""Pytest bootstrap: make ``src/`` importable without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on environments without the ``wheel`` package),
but adding the source tree to ``sys.path`` here means the test-suite and
benchmark harness also run straight from a fresh checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    """Repo-wide pytest options.

    ``--chaos-budget`` scales the chaos corpus (tests/chaos): by default
    the pinned corpus runs in full; nightly jobs pass a larger budget to
    extend the seed range, and a smaller one gives a quick smoke slice.
    """
    parser.addoption(
        "--chaos-budget",
        type=int,
        default=None,
        metavar="N",
        help="number of seeded chaos scenarios to run (default: the pinned corpus)",
    )
