"""Differential harness: every execution configuration is the same system.

The same seeded tunable-contention workload runs under every combination
of ``execution_lanes`` ∈ {1, 2, 8} × ``message_batching`` ∈ {on, off}.
Whatever the intra-cell schedule and overlay pipeline, the observable
artifacts must be identical: ledger contents, aggregated receipts,
per-cycle execution fingerprints, contract state fingerprints, and the
anchored snapshot fingerprints.  A second matrix repeats the comparison
with a scripted cell crash (``FaultPlan``) active.
"""

import pytest

from repro.client import run_contended_transfers
from repro.crypto.fingerprint import snapshot_fingerprint
from repro.encoding import canonical_json
from tests.conftest import make_deployment

LANE_COUNTS = (1, 2, 8)
BATCHING = (True, False)
COUNT = 12
CONFLICT_RATE = 0.5
HOT_ACCOUNTS = 2


def run_workload(lanes: int, batched: bool, crash: bool = False):
    deployment = make_deployment(
        consortium_size=3,
        execution_lanes=lanes,
        message_batching=batched,
    )
    if crash:
        # The crash fires before the burst: every transaction deterministically
        # sees the dead cell miss its forwarding deadline, in every config.
        def crasher():
            yield deployment.env.timeout(1.0)
            deployment.crash_cell(2)

        deployment.env.process(crasher())
    report = run_contended_transfers(
        deployment,
        count=COUNT,
        conflict_rate=CONFLICT_RATE,
        hot_accounts=HOT_ACCOUNTS,
        submit_at=5.0,
    )
    deployment.run_cycles(1)
    return deployment, report


def live_cells(deployment):
    return [cell for cell in deployment.cells if not cell.fault.crashed]


def ledger_digest(deployment):
    """Timing- and order-free ledger contents per cell."""
    return {
        cell.node_name: sorted(
            (
                entry.tx_id,
                entry.status,
                str(entry.contract),
                canonical_json.dumps(entry.result),
                str(entry.error),
            )
            for entry in cell.ledger
        )
        for cell in live_cells(deployment)
    }


def receipt_digest(report):
    """Timing-free receipts plus the deterministic failure pattern."""
    receipts = sorted(
        (
            result.receipt.tx_id,
            result.receipt.contract,
            result.receipt.fingerprint_hex,
            canonical_json.dumps(result.receipt.result),
            tuple(sorted(result.receipt.cells())),
        )
        for result in report.successes
    )
    failures = sorted(
        (result.tx_id or "", str(result.error)) for result in report.failures
    )
    return receipts, failures


def cycle_fingerprints(deployment):
    return {
        cell.node_name: cell.ledger.cycle_execution_fingerprint(0)
        for cell in live_cells(deployment)
    }


def state_fingerprints(deployment):
    return {
        cell.node_name: "0x" + snapshot_fingerprint(cell.contracts.fingerprints()).hex()
        for cell in live_cells(deployment)
    }


def snapshot_fingerprints(deployment):
    return {
        cell.node_name: cell.snapshots.latest().fingerprint_hex()
        for cell in live_cells(deployment)
        if cell.snapshots.latest_cycle is not None
    }


def artifacts(deployment, report):
    return {
        "ledgers": ledger_digest(deployment),
        "receipts": receipt_digest(report),
        "cycle_fingerprints": cycle_fingerprints(deployment),
        "state_fingerprints": state_fingerprints(deployment),
        "snapshot_fingerprints": snapshot_fingerprints(deployment),
    }


@pytest.fixture(scope="module")
def matrix_runs():
    return {
        (lanes, batched): run_workload(lanes, batched)
        for lanes in LANE_COUNTS
        for batched in BATCHING
    }


@pytest.fixture(scope="module")
def crash_runs():
    return {lanes: run_workload(lanes, batched=True, crash=True) for lanes in (1, 8)}


def test_every_configuration_confirms_every_transaction(matrix_runs):
    for (lanes, batched), (_deployment, report) in matrix_runs.items():
        assert report.failure_count == 0, (
            f"lanes={lanes} batching={batched}: {report.failures[0].error}"
        )


def test_all_configurations_produce_identical_artifacts(matrix_runs):
    baseline_key = (1, True)
    baseline = artifacts(*matrix_runs[baseline_key])
    for key, (deployment, report) in matrix_runs.items():
        got = artifacts(deployment, report)
        for artifact_name, expected in baseline.items():
            assert got[artifact_name] == expected, (
                f"{artifact_name} diverged for lanes={key[0]} batching={key[1]}"
            )


def test_cells_agree_within_every_configuration(matrix_runs):
    for (lanes, batched), (deployment, _report) in matrix_runs.items():
        fingerprints = set(state_fingerprints(deployment).values())
        assert len(fingerprints) == 1, f"lanes={lanes} batching={batched}"
        snapshots = set(snapshot_fingerprints(deployment).values())
        assert len(snapshots) == 1


def test_lane_engine_ran_in_parallel_configurations(matrix_runs):
    for (lanes, batched), (deployment, _report) in matrix_runs.items():
        for cell in deployment.cells:
            stats = cell.statistics()["lanes"]
            if lanes == 1:
                assert stats is None
            else:
                assert stats["lanes"] == lanes
                assert stats["executions"] > 0
                assert stats["in_flight"] == 0
        # The contended workload must actually exercise the conflict gate.
        if lanes == 8:
            total_deferrals = sum(
                cell.statistics()["lanes"]["conflict_deferrals"]
                for cell in deployment.cells
            )
            assert total_deferrals > 0


def test_crash_is_identical_across_lane_counts(crash_runs):
    serial_artifacts = artifacts(*crash_runs[1])
    lane_artifacts = artifacts(*crash_runs[8])
    assert serial_artifacts == lane_artifacts
    # The crash actually bit: the dead cell confirms nothing, so the
    # deterministic failure pattern is non-empty and identical.
    _receipts, failures = serial_artifacts["receipts"]
    assert len(failures) == COUNT
    for _tx_id, error in failures:
        # Clients pooled on the dead cell see it unreachable; everyone else
        # times out waiting for its confirmation.
        assert "deadline" in error or "unreachable" in error
