"""The rejoin in-flight window: admitted-tx-aware readmission + backfill.

The one correctness bug the chaos engine ever found: a cell readmitted
while the consortium is executing traffic could miss entries that peers
*admitted* between the rejoiner's donor sync and the readmit commit.
The rejoin vote compares state fingerprints, which cannot see
admitted-but-not-yet-executed transactions, so the vote passes while
entries are lost — peers forward only to active-view members, and the
rejoiner was not one yet.

These tests *construct* that race deterministically instead of hoping
chaos traffic hits the few-millisecond window: a watcher process admits
a transaction at every live peer the instant the donor serves the sync,
which is provably inside the sync→vote gap.  With backfill enabled the
recovery converges (the ack-carried admitted heads trigger a delta
fetch); with it disabled the old window reopens and the rejoiner's
ledger and state demonstrably diverge.
"""

from repro.client import BlockumulusClient, FastMoneyClient
from repro.contracts.community import FastMoney
from repro.messages import Envelope, Opcode
from tests.conftest import make_deployment


def _client_tx_envelope(deployment, signer, recipient, nonce, amount):
    """A valid signed FastMoney transfer, as a service cell would admit it."""
    return Envelope.create(
        signer=signer,
        recipient=recipient,
        operation=Opcode.TX_SUBMIT,
        data={
            "contract": FastMoney.DEFAULT_NAME,
            "method": "transfer",
            "args": {"to": "0x" + "ee" * 20, "amount": amount},
        },
        timestamp=deployment.env.now,
        nonce=nonce,
    )


def _prepare_excluded_cell(deployment):
    """Fund an account, crash+exclude cell 2, land traffic it will miss."""
    client = BlockumulusClient(
        deployment,
        signer=deployment.make_client_signer("inflight-client"),
        service_cell_index=0,
    )
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(1_000))
    for amount in (3, 5):
        event = fastmoney.transfer("0x" + "aa" * 20, amount)
        deployment.env.run(event)
        assert event.value.ok
    deployment.crash_cell(2)
    deployment.exclude_cell(2)
    missed = fastmoney.transfer("0x" + "ab" * 20, 2)
    deployment.env.run(missed)
    assert missed.value.ok
    return client


def _admit_at_peers_when_donor_serves(deployment, client):
    """Watcher process: inject one admitted-not-executed tx mid-handshake.

    Polls the donor's ``syncs_served`` counter and, the instant the sync
    reply leaves, admits the same signed client transaction at both live
    peers *without executing it* — exactly the protocol state live
    traffic produces between a cell's admission and its execution.  The
    rejoiner is still replaying the (already-serialized) bundle at that
    moment, so its sync cannot contain the entry, while every peer's
    rejoin ack will count it in ``admitted_head`` — and, because the
    entry has not executed, the peers' state fingerprints still *agree*
    with the rejoiner's.  Returns a dict collecting the injected entries.
    """
    env = deployment.env
    injected = {"entries": []}
    envelope = _client_tx_envelope(
        deployment,
        client.signer,
        deployment.cell(0).address,
        client.nonces.next(),
        amount=7,
    )

    def watcher():
        base = deployment.metrics.counter("cell-0/syncs_served")
        while deployment.metrics.counter("cell-0/syncs_served") == base:
            yield env.timeout(0.0005)
        for index in (0, 1):
            cell = deployment.cell(index)
            cycle = cell.consensus.cycle_of(env.now)
            entry = cell.ledger.admit(envelope, cycle)
            injected["entries"].append((cell, entry))

    env.process(watcher())
    return injected


def _execute_injected(deployment, injected):
    """The peers execute the in-flight entry, as they would have live."""
    env = deployment.env
    for cell, entry in injected["entries"]:
        env.process(cell._execute_entry(entry))
    deployment.run(until=env.now + 1.0)


def _state_fingerprints(cell):
    return {
        name: cell.contracts.get(name).fingerprint_hex()
        for name in cell.contracts.names()
    }


def test_backfill_closes_the_inflight_admission_window():
    deployment = make_deployment(consortium_size=3, report_period=600.0)
    client = _prepare_excluded_cell(deployment)
    injected = _admit_at_peers_when_donor_serves(deployment, client)

    recovery = deployment.recover_cell(2)
    deployment.env.run(recovery)
    result = recovery.value
    assert result.ok and result.readmitted, result.reason

    # The race fired: both peers held the admitted entry when they voted.
    assert len(injected["entries"]) == 2
    # The vote still passed on the FIRST attempt — state fingerprints
    # cannot distinguish an admitted-only entry — and the ack-carried
    # admitted heads are what routed the gap into the backfill phase.
    assert result.attempts == 1
    assert result.live_backfilled >= 1
    assert result.backfill_rounds >= 1
    assert result.delta_syncs >= 1

    # The rejoiner holds (and already executed) the in-flight entry.
    rejoiner = deployment.cell(2)
    _, donor_entry = injected["entries"][0]
    assert rejoiner.ledger.contains(donor_entry.tx_id)
    assert rejoiner.ledger.get(donor_entry.tx_id).status == "executed"

    # Once the peers execute it too, all three cells converge bit for bit.
    _execute_injected(deployment, injected)
    digests = {
        tuple(map(tuple, cell.ledger.sync_digest())) for cell in deployment.cells
    }
    assert len(digests) == 1
    fingerprints = {
        tuple(sorted(_state_fingerprints(cell).items()))
        for cell in deployment.cells
    }
    assert len(fingerprints) == 1


def test_inflight_window_is_lost_without_backfill():
    """Regression guard: disabling backfill reopens the original bug.

    Identical construction — but with the backfill phase switched off the
    readmission succeeds on fingerprint agreement alone and the rejoiner
    never learns about the in-flight entry: its ledger stays short and,
    once the peers execute the entry, its contract state diverges from
    the consortium's.  This is the failure the chaos corpus could only
    avoid by quiescing traffic before every recovery.
    """
    deployment = make_deployment(consortium_size=3, report_period=600.0)
    client = _prepare_excluded_cell(deployment)
    injected = _admit_at_peers_when_donor_serves(deployment, client)

    deployment.cell(2).recovery.backfill_enabled = False
    recovery = deployment.recover_cell(2)
    deployment.env.run(recovery)
    result = recovery.value

    # The vote PASSES — that is the bug: state fingerprints are blind to
    # the admitted-but-unexecuted entry both peers were holding.
    assert result.ok and result.readmitted
    assert len(injected["entries"]) == 2
    assert result.live_backfilled == 0 and result.backfill_rounds == 0

    # But the readmitted cell is missing the in-flight transaction...
    rejoiner = deployment.cell(2)
    _, donor_entry = injected["entries"][0]
    assert not rejoiner.ledger.contains(donor_entry.tx_id)
    assert len(rejoiner.ledger) == len(deployment.cell(0).ledger) - 1

    # ...and once the peers execute it, the consortium's state has
    # diverged from the rejoiner's: silent entry loss, detected only
    # here because the test looks.  With backfill enabled (previous
    # test) the same schedule converges.
    _execute_injected(deployment, injected)
    assert _state_fingerprints(rejoiner) != _state_fingerprints(deployment.cell(0))
    digests = {
        tuple(map(tuple, cell.ledger.sync_digest())) for cell in deployment.cells
    }
    assert len(digests) == 2


def test_silent_peer_is_excluded_instead_of_waited_out():
    """A crashed-but-unexcluded peer must not stall readmission.

    With cells 0..2, cell 1 crashes *without* being excluded, then cell 2
    (excluded) recovers.  Cell 2's first vote needs 2 of {cell0, cell1}
    — but cell 1 can never answer.  Instead of failing forever (or the
    corpus having to schedule activations after every crash window), the
    coordinator names cell 1 silent, votes it out with cell 0's help,
    and the retry succeeds against the shrunken, reachable quorum.
    """
    deployment = make_deployment(consortium_size=3, report_period=600.0)
    client = BlockumulusClient(
        deployment,
        signer=deployment.make_client_signer("silent-peer-client"),
        service_cell_index=0,
    )
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    event = fastmoney.transfer("0x" + "aa" * 20, 4)
    deployment.env.run(event)
    assert event.value.ok

    deployment.crash_cell(2)
    deployment.exclude_cell(2)
    deployment.crash_cell(1)  # silent: crashed but never excluded

    recovery = deployment.recover_cell(2)
    deployment.env.run(recovery)
    result = recovery.value
    assert result.ok and result.readmitted, result.reason
    assert result.attempts == 2  # one failed vote, one against the live quorum
    assert result.delta_syncs >= 1  # the retry re-fetched only the delta
    deployment.run(until=deployment.env.now + 1.0)  # commits land everywhere

    # The silent peer was voted out everywhere that is still live.
    crashed = deployment.cell(1).address
    assert crashed in deployment.cell(0).consensus.excluded_cells()
    assert crashed in deployment.cell(2).consensus.excluded_cells()
    # And the rejoiner is active again from the donor's point of view.
    assert deployment.cell(2).address in deployment.cell(0).consensus.active_cells()


def test_recovering_cell_sheds_client_ingress():
    """Mid-resync a cell must refuse TX_SUBMIT with the OVERLOADED shed
    outcome — half-restored state never services transactions."""
    deployment = make_deployment(consortium_size=3, report_period=600.0)
    client = BlockumulusClient(
        deployment,
        signer=deployment.make_client_signer("shed-client"),
        service_cell_index=0,
    )
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    event = fastmoney.transfer("0x" + "aa" * 20, 3)
    deployment.env.run(event)
    assert event.value.ok

    deployment.crash_cell(2)
    deployment.exclude_cell(2)
    recovery = deployment.recover_cell(2)

    # A client pointed at the recovering cell submits while the resync is
    # in flight (the handshake alone spans several network round trips).
    direct = BlockumulusClient(
        deployment,
        signer=deployment.make_client_signer("shed-client-direct"),
        service_cell_index=2,
    )
    shed_event = FastMoneyClient(direct).transfer("0x" + "bb" * 20, 1)
    deployment.env.run(shed_event)
    shed_result = shed_event.value
    assert not shed_result.ok
    assert shed_result.shed, shed_result.error
    assert deployment.cell(2).statistics()["admission"]["shed_recovering"] == 1
    # Shedding left no protocol trace: no ledger entry anywhere.
    for cell in deployment.cells:
        assert not cell.ledger.contains(shed_event.value.tx_id)

    deployment.env.run(recovery)
    assert recovery.value.ok
    deployment.run(until=deployment.env.now + 1.0)
    after = FastMoneyClient(direct).faucet(10)
    deployment.env.run(after)
    assert after.value.ok  # recovered cell services traffic again
