"""Section V-B: the transaction-filtering attack and its on-chain escape hatch."""

from repro.client import BlockumulusClient
from repro.core.faults import censor_method
from repro.crypto.keys import PrivateKey
from tests.conftest import make_deployment


def _deployment_with_dividends():
    deployment = make_deployment(consortium_size=2, report_period=15.0, eth_block_interval=2.0)
    business = BlockumulusClient(deployment, signer=deployment.make_client_signer("business"))
    investor = BlockumulusClient(deployment, signer=deployment.make_client_signer("investor"))
    env = deployment.env
    env.run(investor.submit("dividendpool", "invest", {"amount": 1000}))
    env.run(business.submit("dividendpool", "declare_dividend",
                            {"rate_percent": 10, "claim_deadline": env.now + 1_000}))
    return deployment, business, investor


def test_censoring_cells_silently_drop_the_withdrawal():
    deployment, _business, investor = _deployment_with_dividends()
    # The bribed consortium filters out dividend withdrawals (every cell).
    for cell in deployment.cells:
        cell.fault.censor = censor_method("dividendpool", "withdraw_dividend")

    withdrawal = investor.submit("dividendpool", "withdraw_dividend", {})
    guard = deployment.env.any_of([withdrawal, deployment.env.timeout(30.0)])
    deployment.env.run(guard)
    # The client never receives a reply, and no cell executed the withdrawal.
    assert not withdrawal.triggered
    for cell in deployment.cells:
        position = cell.contracts.get("dividendpool").query(
            "position", {"account": investor.address.hex()})
        assert position["pending_dividend"] == 100
    # The service cell (the investor's access provider) exercised the censor
    # path; the other cells never even saw the transaction.
    service_cell = investor.service_cell
    assert service_cell.fault.events
    assert service_cell.fault.events[0]["kind"] == "censor"


def test_contingency_submission_forces_execution():
    deployment, _business, investor = _deployment_with_dividends()
    for cell in deployment.cells:
        cell.fault.censor = censor_method("dividendpool", "withdraw_dividend")

    # The investor escalates: the withdrawal is submitted directly to the
    # Ethereum anchor contract, which cells must poll and execute.
    eth_key = PrivateKey.from_seed("investor-eth")
    deployment.eth_node.chain.fund(eth_key.address, 10 ** 20)
    receipt_event = investor.submit_contingency(
        "dividendpool", "withdraw_dividend", {}, eth_key=eth_key)
    receipt = deployment.env.run(receipt_event)
    assert receipt.success

    # After the next report cycle every cell has executed the withdrawal.
    deployment.run(until=deployment.env.now + 2 * deployment.config.report_period + 5)
    for cell in deployment.cells:
        position = cell.contracts.get("dividendpool").query(
            "position", {"account": investor.address.hex()})
        assert position["pending_dividend"] == 0
        assert position["withdrawn"] == 100
        assert cell.statistics()["contingencies_executed"] >= 1
