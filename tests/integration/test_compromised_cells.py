"""Sections V-C/V-D: conspiring or compromised cells, crashes, and exclusion."""

from repro.audit import Auditor
from repro.client import BlockumulusClient, FastMoneyClient
from tests.conftest import make_deployment


def test_crashed_cell_causes_reverts_then_exclusion_restores_service():
    deployment = make_deployment(consortium_size=3, forwarding_deadline=2.0, miss_threshold=3)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    # Cell 2 crashes: it stops answering forwards entirely.
    deployment.cell(2).fault.crashed = True
    deployment.network.set_online(deployment.cell(2).node_name, False)

    # Until the miss threshold is reached, transactions revert because the
    # forwarding deadline passes without cell 2's confirmation.
    failures = 0
    for index in range(3):
        result_event = fastmoney.transfer("0x" + "aa" * 20, 1)
        deployment.env.run(result_event)
        if not result_event.value.ok:
            failures += 1
    assert failures == 3
    service_cell = deployment.cell(0)
    assert deployment.cell(2).address in service_cell.consensus.excluded_cells()

    # Once the crashed cell is excluded the consortium serves clients again.
    result_event = fastmoney.transfer("0x" + "aa" * 20, 1)
    deployment.env.run(result_event)
    assert result_event.value.ok
    # The receipt now carries confirmations only from the live cells.
    assert len(result_event.value.receipt.confirmations) == 2


def test_state_tampering_cell_detected_by_anchored_snapshots():
    deployment = make_deployment(consortium_size=3, report_period=15.0, eth_block_interval=2.0)
    deployment.cell(1).fault.tamper_state = True
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    # Land a transfer in cycle 1 so the tampering cell's divergence shows up
    # in a cycle that also has a previous snapshot for succession replay.
    deployment.run(until=16.0)
    deployment.env.run(fastmoney.transfer("0x" + "bb" * 20, 10))
    deployment.run(until=50.0)

    cycle = 1
    honest_fp = deployment.anchored_report(cycle, 0)
    tampered_fp = deployment.anchored_report(cycle, 1)
    assert honest_fp is not None and tampered_fp is not None
    # The compromised cell's anchored fingerprint diverges publicly.
    assert honest_fp != tampered_fp
    assert deployment.anchored_report(cycle, 2) == honest_fp

    # Auditors attribute the divergence to the tampering cell, not the honest ones.
    auditor = Auditor(deployment)
    assert auditor.run_audit(cell_index=0, cycle=cycle).passed
    assert not auditor.run_audit(cell_index=1, cycle=cycle).passed


def test_byzantine_majority_cannot_hide_from_the_anchor_contract():
    """Even if most cells tamper, the single honest cell's record survives
    (the Byzantine-fault argument of Section V-D / Theorem 1)."""
    deployment = make_deployment(consortium_size=3, report_period=15.0, eth_block_interval=2.0)
    deployment.cell(1).fault.tamper_fingerprint = True
    deployment.cell(2).fault.tamper_fingerprint = True
    client = BlockumulusClient(deployment, service_cell_index=0)
    deployment.env.run(FastMoneyClient(client).faucet(10))
    deployment.run(until=65.0)

    cycle = deployment.cell(0).snapshots.latest_cycle - 1
    auditor = Auditor(deployment)
    reports = auditor.cross_audit(cycle)
    verdicts = {report.cell: report.passed for report in reports}
    assert verdicts["cell-0"] is True
    assert verdicts["cell-1"] is False and verdicts["cell-2"] is False


def test_slow_cell_excluded_after_repeated_deadline_misses():
    deployment = make_deployment(consortium_size=2, forwarding_deadline=0.5, miss_threshold=2)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    # After funding, cell 1 turns pathologically slow.
    deployment.cell(1).fault.extra_confirm_delay = 5.0
    for _ in range(2):
        event = fastmoney.transfer("0x" + "cc" * 20, 1)
        deployment.env.run(event)
        assert not event.value.ok
    assert deployment.cell(1).address in deployment.cell(0).consensus.excluded_cells()
    # With the slow cell excluded, Theorem 1 says one valid cell suffices.
    event = fastmoney.transfer("0x" + "cc" * 20, 1)
    deployment.env.run(event)
    assert event.value.ok
