"""Differential harness: sharding must never change what gets computed.

Two guarantees are asserted:

* **shards = 1 is the pre-shard pipeline, artifact for artifact** — the
  sharded workload generators driven through a one-group
  ``ShardedDeployment`` produce exactly the ledgers, receipts, per-cycle
  execution fingerprints, and contract state of the plain
  ``BlockumulusDeployment`` running the plain workload generators.
* **repeat determinism** — running the same multi-shard configuration
  (including cross-shard two-phase transfers) twice yields identical
  per-shard ledgers, receipts, fingerprints, and the same deployment
  shard digest.
"""

from repro.client import (
    run_burst_transfers,
    run_contended_transfers,
    run_sharded_burst_transfers,
    run_sharded_contended_transfers,
)
from repro.crypto.fingerprint import snapshot_fingerprint
from repro.encoding import canonical_json
from tests.conftest import make_deployment, make_sharded_deployment

COUNT = 16
CONFLICT_RATE = 0.5
HOT_ACCOUNTS = 2
POOLS = 4


def cells_of(deployment):
    if hasattr(deployment, "cells"):
        return list(deployment.cells)
    return [cell for group in deployment.groups for cell in group.cells]


def artifacts(deployment, report):
    """Timing-free observable artifacts of one run."""
    cells = cells_of(deployment)
    return {
        "ledgers": {
            cell.node_name: sorted(
                (
                    entry.tx_id,
                    entry.status,
                    str(entry.contract),
                    canonical_json.dumps(entry.result),
                    str(entry.error),
                )
                for entry in cell.ledger
            )
            for cell in cells
        },
        "receipts": sorted(
            (
                result.receipt.tx_id,
                result.receipt.contract,
                result.receipt.fingerprint_hex,
                canonical_json.dumps(result.receipt.result),
            )
            for result in report.successes
        ),
        "cycle_fingerprints": {
            cell.node_name: cell.ledger.cycle_execution_fingerprint(0) for cell in cells
        },
        "state_fingerprints": {
            cell.node_name: "0x" + snapshot_fingerprint(cell.contracts.fingerprints()).hex()
            for cell in cells
        },
    }


def test_one_shard_burst_equals_the_plain_pipeline():
    plain = make_deployment()
    plain_report = run_burst_transfers(plain, count=COUNT, pools=POOLS)
    sharded = make_sharded_deployment(1)
    sharded_report = run_sharded_burst_transfers(sharded, count=COUNT, pools=POOLS)
    assert sharded_report.cross_results == []
    expected = artifacts(plain, plain_report)
    got = artifacts(sharded, sharded_report)
    for name, value in expected.items():
        assert got[name] == value, f"{name} diverged between plain and shards=1"


def test_one_shard_contended_equals_the_plain_pipeline():
    plain = make_deployment()
    plain_report = run_contended_transfers(
        plain, count=COUNT, conflict_rate=CONFLICT_RATE,
        hot_accounts=HOT_ACCOUNTS, pools=POOLS, submit_at=5.0,
    )
    sharded = make_sharded_deployment(1)
    sharded_report = run_sharded_contended_transfers(
        sharded, count=COUNT, conflict_rate=CONFLICT_RATE,
        hot_accounts=HOT_ACCOUNTS, pools=POOLS, submit_at=5.0,
    )
    assert sharded_report.cross_results == []
    expected = artifacts(plain, plain_report)
    got = artifacts(sharded, sharded_report)
    for name, value in expected.items():
        assert got[name] == value, f"{name} diverged between plain and shards=1"


def run_multi_shard():
    deployment = make_sharded_deployment(2)
    report = run_sharded_burst_transfers(
        deployment, count=COUNT, cross_shard_rate=0.25, pools=POOLS
    )
    deployment.run_cycles(1)
    return deployment, report


def test_repeated_multi_shard_runs_are_identical():
    first_deployment, first_report = run_multi_shard()
    second_deployment, second_report = run_multi_shard()
    assert first_report.failure_count == 0
    assert len(first_report.cross_results) > 0, "the cross dial must bite"
    assert artifacts(first_deployment, first_report) == artifacts(
        second_deployment, second_report
    )
    assert [r.xtx for r in first_report.cross_results] == [
        r.xtx for r in second_report.cross_results
    ]
    assert first_deployment.shard_digest(0) == second_deployment.shard_digest(0)


def test_groups_agree_internally_under_cross_shard_traffic():
    deployment, report = run_multi_shard()
    assert report.failure_count == 0
    for group in deployment.groups:
        # Admission *order* differs per cell (as in the unsharded overlay:
        # each peer admits on forward arrival); agreement is on content —
        # the sorted entry digests and the order-independent per-cycle
        # execution fingerprint every cell of the group must share.
        contents = {
            tuple(sorted(
                (entry.tx_id, entry.status, str(entry.contract), str(entry.error))
                for entry in cell.ledger
            ))
            for cell in group.cells
        }
        assert len(contents) == 1, f"group {group.index} cells disagree"
        fingerprints = {
            cell.ledger.cycle_execution_fingerprint(0) for cell in group.cells
        }
        assert len(fingerprints) == 1
