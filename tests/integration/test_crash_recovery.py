"""The Section V recovery loop: crash → exclusion → resync → rejoin.

The headline test runs the *same* workload (identical submission times, so
identical signed payloads and transaction ids) twice — once fault-free and
once with a scripted crash/exclusion/recovery of one cell — and requires
the ledgers, receipts, and snapshot fingerprints to come out identical.
"""

import pytest

from repro.audit import Auditor
from repro.client import BlockumulusClient, FastMoneyClient
from repro.messages import Envelope, ExclusionVote, MembershipUpdate, Opcode
from tests.conftest import make_deployment

#: (absolute sim time, destination, amount) — fixed so both runs sign
#: byte-identical payloads.
WORKLOAD = [
    (5.0, "0x" + "aa" * 20, 3),
    (7.0, "0x" + "aa" * 20, 2),
    (9.0, "0x" + "ab" * 20, 4),
    (35.0, "0x" + "bb" * 20, 1),   # submitted while one cell is down
    (37.0, "0x" + "bb" * 20, 2),
    (39.0, "0x" + "bc" * 20, 5),
    (41.0, "0x" + "bc" * 20, 1),
    (48.0, "0x" + "cc" * 20, 2),   # submitted after the cell rejoined
    (50.0, "0x" + "cd" * 20, 3),
]

CRASH_AT = 33.0
RECOVER_AT = 44.0
FINAL_AT = 65.0  # past the second report boundary (report_period = 30)


def _drive_workload(deployment, fastmoney):
    """Submit WORKLOAD at its fixed times; returns the result events."""
    env = deployment.env
    collected = []

    def submitter():
        for at, destination, amount in WORKLOAD:
            if at > env.now:
                yield env.timeout(at - env.now)
            collected.append(fastmoney.transfer(destination, amount))

    env.process(submitter())
    return collected


def _scripted_run(crash: bool):
    deployment = make_deployment(consortium_size=3, report_period=30.0)
    client = BlockumulusClient(
        deployment,
        signer=deployment.make_client_signer("recovery-scenario-client"),
        service_cell_index=0,
    )
    fastmoney = FastMoneyClient(client)
    faucet = fastmoney.faucet(1_000)
    deployment.env.run(faucet)
    assert faucet.value.ok

    events = _drive_workload(deployment, fastmoney)
    recovery = None
    if crash:
        deployment.run(until=CRASH_AT)
        deployment.crash_cell(2)
        deployment.exclude_cell(2)  # scripted consortium decision (Section V)
        deployment.run(until=RECOVER_AT)
        recovery = deployment.recover_cell(2)
    deployment.run(until=FINAL_AT)
    results = [event.value for event in events]
    assert all(event.triggered for event in events)
    return deployment, results, recovery


def _receipt_essence(results):
    return [
        (
            result.ok,
            result.tx_id,
            result.receipt.result if result.receipt else None,
            result.receipt.fingerprint_hex if result.receipt else None,
            result.receipt.cycle if result.receipt else None,
        )
        for result in results
    ]


def _state_fingerprints(cell):
    return {name: cell.contracts.get(name).fingerprint_hex() for name in cell.contracts.names()}


def test_scripted_crash_recover_cycle_matches_the_no_fault_run():
    baseline, baseline_results, _ = _scripted_run(crash=False)
    faulted, faulted_results, recovery = _scripted_run(crash=True)

    # The recovery itself succeeded and went through the full pipeline.
    result = recovery.value
    assert result.ok and result.readmitted and result.fingerprint_matched
    assert result.backfilled + result.replayed >= 4  # the downtime transactions
    assert result.duration > 0 and result.messages_used > 0

    # Every client-visible outcome is identical to the no-fault run.
    assert _receipt_essence(faulted_results) == _receipt_essence(baseline_results)
    for result_ in faulted_results:
        assert result_.ok

    # Ledgers: identical across the consortium and across the two runs.
    baseline_digest = baseline.cell(0).ledger.sync_digest()
    for deployment in (baseline, faulted):
        for cell in deployment.cells:
            assert cell.ledger.sync_digest() == baseline_digest

    # Contract state: identical fingerprints everywhere.
    expected_state = _state_fingerprints(baseline.cell(0))
    for deployment in (baseline, faulted):
        for cell in deployment.cells:
            assert _state_fingerprints(cell) == expected_state

    # Snapshot fingerprints of the final full cycle agree across cells and runs.
    cycle = 1
    expected_fp = baseline.cell(0).snapshots.get(cycle).fingerprint
    for deployment in (baseline, faulted):
        for cell in deployment.cells:
            assert cell.snapshots.get(cycle).fingerprint == expected_fp

    # The recovered cell anchored the post-recovery cycle like everyone else.
    assert faulted.anchored_report(cycle, 2) == expected_fp


def test_recovered_cell_passes_the_recovery_audit():
    faulted, _results, recovery = _scripted_run(crash=True)
    assert recovery.value.ok
    auditor = Auditor(faulted)
    report = auditor.run_recovery_audit(cell_index=2, reference_index=0)
    assert report.passed, [finding.details for finding in report.findings]
    assert report.cycle == 1
    # The ordinary per-cycle audit also passes on the recovered cell for the
    # post-recovery cycle (its adopted snapshot provides the predecessor).
    assert auditor.run_audit(cell_index=2, cycle=1).passed


def test_missed_deadlines_trigger_consortium_wide_vote_exclusion():
    deployment = make_deployment(
        consortium_size=3, forwarding_deadline=2.0, miss_threshold=2
    )
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    deployment.crash_cell(2)
    for _ in range(2):
        event = fastmoney.transfer("0x" + "aa" * 20, 1)
        deployment.env.run(event)
        assert not event.value.ok
    # Let the probe-and-vote round complete (probe deadline: 2 s).
    deployment.run(until=deployment.env.now + 5.0)

    crashed = deployment.cell(2).address
    # The observer excluded locally; the *other* live cell excluded via the
    # quorum-committed membership update, without burning its own misses.
    assert crashed in deployment.cell(0).consensus.excluded_cells()
    assert crashed in deployment.cell(1).consensus.excluded_cells()
    assert deployment.metrics.counter("cell-0/exclusions_committed") == 1
    assert deployment.metrics.counter("cell-1/cells_excluded_by_quorum") == 1

    # Recovery reverses the exclusion everywhere.
    recovery = deployment.recover_cell(2)
    deployment.env.run(recovery)
    assert recovery.value.ok
    deployment.run(until=deployment.env.now + 1.0)
    assert crashed not in deployment.cell(0).consensus.excluded_cells()
    assert crashed not in deployment.cell(1).consensus.excluded_cells()
    event = fastmoney.transfer("0x" + "bb" * 20, 1)
    deployment.env.run(event)
    assert event.value.ok
    assert len(event.value.receipt.confirmations) == 3


def test_standby_cell_bootstraps_into_the_quorum():
    deployment = make_deployment(consortium_size=2, standby_cells=1, report_period=30.0)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(500))
    before = fastmoney.transfer("0x" + "dd" * 20, 5)
    deployment.env.run(before)
    assert len(before.value.receipt.confirmations) == 2  # standby not serving

    deployment.run(until=35.0)  # one anchored snapshot exists
    bootstrap = deployment.activate_standby(2)
    deployment.env.run(bootstrap)
    result = bootstrap.value
    assert result.ok and result.readmitted
    deployment.run(until=deployment.env.now + 1.0)

    after = fastmoney.transfer("0x" + "ee" * 20, 5)
    deployment.env.run(after)
    assert len(after.value.receipt.confirmations) == 3  # standby now confirms
    digests = {tuple(map(tuple, cell.ledger.sync_digest())) for cell in deployment.cells}
    assert len(digests) == 1


def test_rejoin_rejected_while_state_is_stale():
    deployment = make_deployment(consortium_size=3)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    deployment.crash_cell(2)
    deployment.exclude_cell(2)
    event = fastmoney.transfer("0x" + "aa" * 20, 7)
    deployment.env.run(event)
    assert event.value.ok

    # Restart the cell but ask to rejoin WITHOUT resyncing: its stale state
    # fingerprint must be voted down by every live peer.
    deployment.restore_cell(2)
    stale = deployment.cell(2)
    attempt = deployment.env.process(
        stale.membership.request_rejoin(basis_cycle=0, last_sequence=len(stale.ledger) - 1)
    )
    deployment.env.run(attempt)
    outcome = attempt.value
    assert not outcome.readmitted
    assert outcome.acks and all(not ack.agree for ack in outcome.acks)
    assert not outcome.silent  # every live peer answered, just disagreed
    assert stale.address in deployment.cell(0).consensus.excluded_cells()
    assert stale.address in deployment.cell(1).consensus.excluded_cells()


def test_recovery_rolls_back_entries_newer_than_the_donor_snapshot():
    """The crashed cell executed transactions *after* the donor's latest
    snapshot: restoring the snapshot rolls its state back, so those local
    entries must be truncated and re-executed from the donor's tail."""
    deployment = make_deployment(consortium_size=3, report_period=30.0)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    deployment.run(until=31.0)  # snapshot cycle 0 taken everywhere

    # A post-snapshot transaction lands on all three cells (cycle 1)...
    event = fastmoney.transfer("0x" + "aa" * 20, 5)
    deployment.env.run(event)
    assert event.value.ok
    head = len(deployment.cell(2).ledger)

    # ...then cell 2 crashes and recovers before the next report boundary,
    # so the donor snapshot is older than cell 2's own ledger head.
    deployment.crash_cell(2)
    deployment.exclude_cell(2)
    more = fastmoney.transfer("0x" + "ab" * 20, 2)
    deployment.env.run(more)
    assert more.value.ok
    recovery = deployment.recover_cell(2)
    deployment.env.run(recovery)
    result = recovery.value
    assert result.ok, result.reason
    assert result.truncated >= 1  # the post-snapshot entry was rolled back
    assert result.replayed >= result.truncated + 1  # ...and re-executed
    assert len(deployment.cell(2).ledger) == head + 1  # incl. the downtime tx

    deployment.run(until=deployment.env.now + 1.0)
    digests = {tuple(map(tuple, cell.ledger.sync_digest())) for cell in deployment.cells}
    assert len(digests) == 1
    fingerprints = {
        tuple(sorted(_state_fingerprints(cell).items())) for cell in deployment.cells
    }
    assert len(fingerprints) == 1


def test_failed_recovery_recrashes_the_cell():
    deployment = make_deployment(consortium_size=3)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    deployment.crash_cell(2)
    deployment.exclude_cell(2)
    deployment.crash_cell(1)  # the would-be donor goes down too

    recovery = deployment.recover_cell(2, donor_index=1)
    deployment.env.run(recovery)
    result = recovery.value
    assert not result.ok and "unreachable" in result.reason
    # The cell went back down rather than serving half-restored state.
    assert deployment.cell(2).fault.crashed
    assert not deployment.network.is_online(deployment.cell(2).node_name)


def test_sequentially_activated_standbys_converge_on_membership():
    """Two standbys activated one after the other must end up seeing each
    other as active (the readmit commit reaches every peer, and a rejoiner
    adopts the donor's membership view during resync)."""
    deployment = make_deployment(consortium_size=2, standby_cells=2, report_period=30.0)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(500))
    deployment.run(until=31.0)

    for standby_index in (2, 3):
        bootstrap = deployment.activate_standby(standby_index)
        deployment.env.run(bootstrap)
        assert bootstrap.value.ok
        deployment.run(until=deployment.env.now + 1.0)

    # Every cell sees every other cell as active — no split views.
    for cell in deployment.cells:
        assert cell.consensus.excluded_cells() == []
    event = fastmoney.transfer("0x" + "ff" * 20, 1)
    deployment.env.run(event)
    assert event.value.ok
    assert len(event.value.receipt.confirmations) == 4


def test_stale_readmission_acks_cannot_revive_a_reexcluded_cell():
    """Replay protection: acks signed for an earlier recovery cycle must
    not readmit the cell after a later exclusion."""
    from repro.messages import RejoinAck

    deployment = make_deployment(consortium_size=3)
    cell0, cell1, cell2 = deployment.cells
    # cell2 was excluded at cycle 20 (a later episode than the old acks).
    cell0.consensus.exclude(cell2.address, cycle=20)

    old_acks = tuple(
        RejoinAck.create(
            signer, rejoiner=cell2.address, cycle=5,
            fingerprint_hex="0x" + "00" * 32, agree=True,
        )
        for signer in (cell0.signer, cell1.signer)
    )
    # Replayed verbatim (update.cycle = 5): stale, ignored.
    stale = MembershipUpdate(action="readmit", subject=cell2.address, cycle=5, acks=old_acks)
    envelope = Envelope.create(
        signer=cell2.signer, recipient=cell0.address,
        operation=Opcode.MEMBERSHIP_UPDATE, data=stale.to_data(),
        timestamp=deployment.env.now, nonce=cell2.nonces.next(),
    )
    cell0.membership.handle_update(envelope)
    assert cell2.address in cell0.consensus.excluded_cells()

    # Re-labelled with a fresh cycle: the acks no longer match update.cycle,
    # so they carry no supporters.
    relabelled = MembershipUpdate(
        action="readmit", subject=cell2.address, cycle=21, acks=old_acks
    )
    assert relabelled.verified_supporters() == set()
    envelope = Envelope.create(
        signer=cell2.signer, recipient=cell0.address,
        operation=Opcode.MEMBERSHIP_UPDATE, data=relabelled.to_data(),
        timestamp=deployment.env.now, nonce=cell2.nonces.next(),
    )
    cell0.membership.handle_update(envelope)
    assert cell2.address in cell0.consensus.excluded_cells()


def test_forged_membership_update_without_quorum_evidence_is_ignored():
    deployment = make_deployment(consortium_size=3)
    cell0, cell1, cell2 = deployment.cells

    # cell2 tries to evict cell1 with only its own vote (quorum needs 2).
    vote = ExclusionVote.create(cell2.signer, suspect=cell1.address, cycle=0, agree=True)
    update = MembershipUpdate(action="exclude", subject=cell1.address, cycle=0, votes=(vote,))
    envelope = Envelope.create(
        signer=cell2.signer,
        recipient=cell0.address,
        operation=Opcode.MEMBERSHIP_UPDATE,
        data=update.to_data(),
        timestamp=deployment.env.now,
        nonce=cell2.nonces.next(),
    )
    cell0.membership.handle_update(envelope)
    assert cell1.address in cell0.consensus.active_cells()

    # Even a two-vote update fails if one signature does not verify.
    forged_wire = ExclusionVote.create(
        cell0.signer, suspect=cell1.address, cycle=0, agree=False
    ).to_wire()
    forged_wire["agree"] = True
    data = update.to_data()
    data["votes"].append(forged_wire)
    envelope = Envelope.create(
        signer=cell2.signer,
        recipient=cell0.address,
        operation=Opcode.MEMBERSHIP_UPDATE,
        data=data,
        timestamp=deployment.env.now,
        nonce=cell2.nonces.next(),
    )
    cell0.membership.handle_update(envelope)
    assert cell1.address in cell0.consensus.active_cells()
