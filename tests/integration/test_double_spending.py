"""Section V-A: double spending through two different service cells."""

from repro.client import BlockumulusClient, FastMoneyClient
from repro.messages import Envelope, Opcode
from tests.conftest import make_deployment


def test_conflicting_transfers_cannot_both_succeed():
    deployment = make_deployment(consortium_size=2)
    alice_signer = deployment.make_client_signer("double-spend-alice")

    # Fund Alice with exactly 10 coins through cell 0.
    funding_client = BlockumulusClient(deployment, signer=alice_signer, service_cell_index=0)
    deployment.env.run(FastMoneyClient(funding_client).faucet(10))

    # Alice submits two conflicting 10-coin transfers at the same instant,
    # one through each cell (the scenario of Section V-A).
    client_via_cell0 = BlockumulusClient(deployment, signer=alice_signer, service_cell_index=0)
    client_via_cell1 = BlockumulusClient(deployment, signer=alice_signer, service_cell_index=1)
    bob = "0x" + "b0" * 20
    charlie = "0x" + "c0" * 20
    to_bob = FastMoneyClient(client_via_cell0).transfer(bob, 10)
    to_charlie = FastMoneyClient(client_via_cell1).transfer(charlie, 10)
    deployment.env.run(deployment.env.all_of([to_bob, to_charlie]))

    results = [to_bob.value, to_charlie.value]
    successes = [result for result in results if result.ok]
    # At most one of the conflicting transfers gets a receipt.
    assert len(successes) <= 1

    # No cell ever credits both recipients: the sum of credited funds never
    # exceeds Alice's balance on any cell.
    for cell in deployment.cells:
        fastmoney = cell.contracts.get("fastmoney")
        bob_balance = fastmoney.query("balance_of", {"account": bob})
        charlie_balance = fastmoney.query("balance_of", {"account": charlie})
        assert bob_balance + charlie_balance <= 10
        assert fastmoney.query("total_supply", {}) == 10


def test_identical_transaction_replay_through_both_cells_executes_once():
    deployment = make_deployment(consortium_size=2)
    alice_signer = deployment.make_client_signer("replay-alice")
    client = BlockumulusClient(deployment, signer=alice_signer, service_cell_index=0)
    deployment.env.run(FastMoneyClient(client).faucet(10))

    envelope = Envelope.create(
        signer=alice_signer,
        recipient=deployment.cell(0).address,
        operation=Opcode.TX_SUBMIT,
        data={"contract": "fastmoney", "method": "transfer",
              "args": {"to": "0x" + "d0" * 20, "amount": 10}},
        timestamp=deployment.env.now,
        nonce=client.nonces.next(),
    )
    # The exact same signed envelope is pushed to both cells (replay attempt).
    network = deployment.network
    network.send(client.node_name, deployment.cell(0).node_name, envelope, envelope.byte_size())
    network.send(client.node_name, deployment.cell(1).node_name, envelope, envelope.byte_size())
    deployment.run(until=deployment.env.now + 10)

    for cell in deployment.cells:
        fastmoney = cell.contracts.get("fastmoney")
        # The recipient was credited exactly once on every cell.
        assert fastmoney.query("balance_of", {"account": "0x" + "d0" * 20}) == 10
        assert fastmoney.query("balance_of", {"account": alice_signer.address.hex()}) == 0
