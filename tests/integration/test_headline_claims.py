"""Reduced-scale checks of the paper's headline behaviour.

Full-scale reproductions of Figures 8-10 live in the benchmark harness;
these tests assert the qualitative shape (latency band under normal load,
bulk-discount throughput, zero failures under burst) quickly enough for the
regular test run, using the calibrated Azure-B1ms service model.
"""

import pytest

from repro.client import run_burst_transfers, run_sequential_transfers
from repro.core import BlockumulusDeployment, DeploymentConfig


def azure_deployment(cells, **overrides):
    settings = dict(
        consortium_size=cells,
        signature_scheme="sim",
        report_period=3_600.0,
        forwarding_deadline=600.0,
        seed=2021,
    )
    settings.update(overrides)
    return BlockumulusDeployment(DeploymentConfig(**settings))


@pytest.mark.slow
def test_normal_load_latency_in_the_2_to_5_second_band():
    report = run_sequential_transfers(azure_deployment(2), count=60, pools=8)
    assert report.failure_count == 0
    p90 = report.latencies().p90()
    assert 1.0 < p90 < 3.0  # the paper reports ~2 s for 2 cells


@pytest.mark.slow
def test_latency_grows_slower_than_the_number_of_cells():
    p90 = {}
    for cells in (2, 8):
        report = run_sequential_transfers(azure_deployment(cells), count=60, pools=8)
        assert report.failure_count == 0
        p90[cells] = report.latencies().p90()
    assert p90[8] > p90[2]
    # Quadrupling the consortium size less than quadruples the latency.
    assert p90[8] / p90[2] < 4.0


@pytest.mark.slow
def test_burst_throughput_shows_bulk_discount_and_no_failures():
    small = run_burst_transfers(azure_deployment(2), count=400, pools=8)
    large = run_burst_transfers(azure_deployment(2, seed=2022), count=1200, pools=8)
    assert small.failure_count == 0 and large.failure_count == 0
    # Larger bursts achieve higher throughput (fixed overhead amortized).
    assert large.throughput().throughput > small.throughput().throughput


@pytest.mark.slow
def test_more_cells_reduce_burst_throughput():
    two = run_burst_transfers(azure_deployment(2), count=600, pools=8)
    eight = run_burst_transfers(azure_deployment(8), count=600, pools=8)
    assert two.failure_count == 0 and eight.failure_count == 0
    assert eight.throughput().throughput < two.throughput().throughput
