"""The FastMoney payment bContract."""

import pytest

from repro.contracts import BContractError, FastMoney, InvocationContext
from repro.crypto.keys import PrivateKey

ALICE = PrivateKey.from_seed("fm-alice").address
BOB = PrivateKey.from_seed("fm-bob").address
CAROL = PrivateKey.from_seed("fm-carol").address


def ctx(sender=ALICE, tx_id="0x1", timestamp=1.0):
    return InvocationContext(sender=sender, tx_id=tx_id, timestamp=timestamp, cell_id="cell-0", cycle=0)


@pytest.fixture
def fastmoney():
    contract = FastMoney("fastmoney")
    contract.invoke(ctx(tx_id="0xfund"), "faucet", {"amount": 100})
    return contract


def test_faucet_credits_and_updates_supply(fastmoney):
    assert fastmoney.query("balance_of", {"account": ALICE.hex()}) == 100
    assert fastmoney.query("total_supply", {}) == 100


def test_faucet_can_be_disabled():
    closed = FastMoney("closed", params={"allow_faucet": False})
    with pytest.raises(BContractError):
        closed.invoke(ctx(), "faucet", {"amount": 10})


def test_genesis_balances():
    contract = FastMoney("genesis", params={"genesis_balances": {BOB.hex(): 50}})
    assert contract.query("balance_of", {"account": BOB.hex()}) == 50
    assert contract.query("total_supply", {}) == 50


def test_transfer_moves_funds(fastmoney):
    result = fastmoney.invoke(ctx(tx_id="0x2"), "transfer", {"to": BOB.hex(), "amount": 30})
    assert result == {"from": ALICE.hex(), "to": BOB.hex(), "amount": 30}
    assert fastmoney.query("balance_of", {"account": ALICE.hex()}) == 70
    assert fastmoney.query("balance_of", {"account": BOB.hex()}) == 30
    assert fastmoney.query("transfer_count", {}) == 1


def test_transfer_result_is_order_independent(fastmoney):
    # Results must not expose running balances (cross-cell determinism).
    result = fastmoney.invoke(ctx(tx_id="0x2"), "transfer", {"to": BOB.hex(), "amount": 10})
    assert "balance" not in str(sorted(result))


def test_insufficient_funds_rejected(fastmoney):
    with pytest.raises(BContractError):
        fastmoney.invoke(ctx(tx_id="0x2"), "transfer", {"to": BOB.hex(), "amount": 1000})
    assert fastmoney.query("balance_of", {"account": ALICE.hex()}) == 100


def test_self_transfer_rejected(fastmoney):
    with pytest.raises(BContractError):
        fastmoney.invoke(ctx(tx_id="0x2"), "transfer", {"to": ALICE.hex(), "amount": 1})


def test_replayed_transaction_id_rejected(fastmoney):
    fastmoney.invoke(ctx(tx_id="0xdup"), "transfer", {"to": BOB.hex(), "amount": 5})
    with pytest.raises(BContractError):
        fastmoney.invoke(ctx(tx_id="0xdup"), "transfer", {"to": CAROL.hex(), "amount": 5})


def test_invalid_amounts_rejected(fastmoney):
    for amount in (0, -5, 1.5, "ten", True):
        with pytest.raises(BContractError):
            fastmoney.invoke(ctx(tx_id=f"0x{amount}"), "transfer", {"to": BOB.hex(), "amount": amount})


def test_invalid_recipient_rejected(fastmoney):
    with pytest.raises(BContractError):
        fastmoney.invoke(ctx(tx_id="0x2"), "transfer", {"to": "not-an-address", "amount": 1})


def test_burn(fastmoney):
    fastmoney.invoke(ctx(tx_id="0x2"), "burn", {"amount": 40})
    assert fastmoney.query("balance_of", {"account": ALICE.hex()}) == 60
    assert fastmoney.query("total_supply", {}) == 60
    with pytest.raises(BContractError):
        fastmoney.invoke(ctx(tx_id="0x3"), "burn", {"amount": 1000})


def test_unknown_account_balance_is_zero(fastmoney):
    assert fastmoney.query("balance_of", {"account": CAROL.hex()}) == 0


def test_supply_conserved_by_transfers(fastmoney):
    fastmoney.invoke(ctx(tx_id="0x2"), "transfer", {"to": BOB.hex(), "amount": 60})
    fastmoney.invoke(ctx(sender=BOB, tx_id="0x3"), "transfer", {"to": CAROL.hex(), "amount": 20})
    total = sum(
        fastmoney.query("balance_of", {"account": account.hex()})
        for account in (ALICE, BOB, CAROL)
    )
    assert total == fastmoney.query("total_supply", {}) == 100
