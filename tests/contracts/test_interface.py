"""The BContract base class: dispatch, atomicity, fingerprints."""

import pytest

from repro.contracts import (
    BContract,
    BContractError,
    InvocationContext,
    bcontract_method,
    bcontract_view,
)
from repro.crypto.keys import PrivateKey

ALICE = PrivateKey.from_seed("iface-alice").address


class Counter(BContract):
    """Minimal contract used to exercise the base class."""

    TYPE = "test/counter"

    @bcontract_method
    def bump(self, ctx, by=1):
        if by <= 0:
            raise BContractError("by must be positive")
        value = self.store.increment("count", by)
        return {"count": value}

    @bcontract_method
    def buggy(self, ctx):
        self.store.put("partial", True)
        raise RuntimeError("unexpected crash")

    @bcontract_view
    def value(self):
        return self.store.get("count", 0)


def ctx(tx_id="0x01", timestamp=1.0):
    return InvocationContext(sender=ALICE, tx_id=tx_id, timestamp=timestamp, cell_id="cell-0", cycle=0)


def test_method_and_view_discovery():
    counter = Counter("counter")
    assert counter.methods() == ["buggy", "bump"]
    assert counter.views() == ["value"]


def test_invoke_and_query():
    counter = Counter("counter")
    result = counter.invoke(ctx(), "bump", {"by": 3})
    assert result == {"count": 3}
    assert counter.query("value", {}) == 3


def test_unknown_method_and_view_raise():
    counter = Counter("counter")
    with pytest.raises(BContractError):
        counter.invoke(ctx(), "missing", {})
    with pytest.raises(BContractError):
        counter.query("missing", {})


def test_bad_arguments_revert():
    counter = Counter("counter")
    with pytest.raises(BContractError):
        counter.invoke(ctx(), "bump", {"unexpected": 1})
    assert counter.query("value", {}) == 0


def test_contract_error_rolls_back_writes():
    counter = Counter("counter")
    counter.invoke(ctx(), "bump", {})
    fingerprint = counter.fingerprint()
    with pytest.raises(BContractError):
        counter.invoke(ctx(), "bump", {"by": -1})
    assert counter.fingerprint() == fingerprint


def test_internal_error_wrapped_and_rolled_back():
    counter = Counter("counter")
    with pytest.raises(BContractError):
        counter.invoke(ctx(), "buggy", {})
    assert not counter.store.contains("partial")


def test_fingerprint_changes_with_state():
    counter = Counter("counter")
    before = counter.fingerprint_hex()
    counter.invoke(ctx(), "bump", {})
    assert counter.fingerprint_hex() != before


def test_clone_and_restore_roundtrip():
    counter = Counter("counter")
    counter.invoke(ctx(), "bump", {"by": 7})
    exported = counter.export_state()
    clone = Counter("counter")
    clone.restore_state(exported)
    assert clone.fingerprint() == counter.fingerprint()
    assert clone.query("value", {}) == 7


def test_describe_summary():
    counter = Counter("counter", owner=ALICE)
    info = counter.describe()
    assert info["name"] == "counter"
    assert info["type"] == "test/counter"
    assert info["owner"] == ALICE.hex()
    assert "bump" in info["methods"]


def test_require_sender_helper():
    context = ctx()
    context.require_sender(ALICE)
    with pytest.raises(BContractError):
        context.require_sender(PrivateKey.from_seed("other").address)
