"""The DividendPool bContract (censorship-scenario contract)."""

import pytest

from repro.contracts import BContractError, DividendPool, InvocationContext
from repro.crypto.keys import PrivateKey

BUSINESS = PrivateKey.from_seed("pool-business").address
INVESTOR = PrivateKey.from_seed("pool-investor").address
OTHER = PrivateKey.from_seed("pool-other").address


def ctx(sender, tx_id, timestamp):
    return InvocationContext(sender=sender, tx_id=tx_id, timestamp=timestamp, cell_id="c", cycle=0)


@pytest.fixture
def pool():
    contract = DividendPool("dividendpool", params={"business_owner": BUSINESS.hex()})
    contract.invoke(ctx(INVESTOR, "0x1", 1.0), "invest", {"amount": 1000})
    contract.invoke(ctx(OTHER, "0x2", 1.5), "invest", {"amount": 500})
    return contract


def test_invest_accumulates(pool):
    position = pool.query("position", {"account": INVESTOR.hex()})
    assert position["invested"] == 1000
    assert pool.query("totals", {})["total_invested"] == 1500


def test_invalid_investment_rejected(pool):
    with pytest.raises(BContractError):
        pool.invoke(ctx(INVESTOR, "0x3", 2.0), "invest", {"amount": 0})


def test_declare_dividend_credits_investors(pool):
    result = pool.invoke(ctx(BUSINESS, "0x3", 2.0), "declare_dividend",
                         {"rate_percent": 10, "claim_deadline": 100.0})
    assert result["credited"] == 150
    assert pool.query("position", {"account": INVESTOR.hex()})["pending_dividend"] == 100


def test_only_owner_declares(pool):
    with pytest.raises(BContractError):
        pool.invoke(ctx(INVESTOR, "0x3", 2.0), "declare_dividend",
                    {"rate_percent": 10, "claim_deadline": 100.0})


def test_withdraw_before_deadline(pool):
    pool.invoke(ctx(BUSINESS, "0x3", 2.0), "declare_dividend",
                {"rate_percent": 10, "claim_deadline": 100.0})
    result = pool.invoke(ctx(INVESTOR, "0x4", 50.0), "withdraw_dividend", {})
    assert result["withdrawn_now"] == 100
    assert pool.query("position", {"account": INVESTOR.hex()})["pending_dividend"] == 0
    with pytest.raises(BContractError):
        pool.invoke(ctx(INVESTOR, "0x5", 60.0), "withdraw_dividend", {})


def test_withdraw_after_deadline_rejected(pool):
    pool.invoke(ctx(BUSINESS, "0x3", 2.0), "declare_dividend",
                {"rate_percent": 10, "claim_deadline": 100.0})
    with pytest.raises(BContractError):
        pool.invoke(ctx(INVESTOR, "0x4", 150.0), "withdraw_dividend", {})


def test_reinvest_unclaimed_after_deadline(pool):
    pool.invoke(ctx(BUSINESS, "0x3", 2.0), "declare_dividend",
                {"rate_percent": 10, "claim_deadline": 100.0})
    # Investor withdraws; the other investor forgets.
    pool.invoke(ctx(INVESTOR, "0x4", 50.0), "withdraw_dividend", {})
    result = pool.invoke(ctx(BUSINESS, "0x5", 150.0), "reinvest_unclaimed", {})
    assert result["reinvested"] == 50
    assert pool.query("position", {"account": OTHER.hex()})["invested"] == 550


def test_reinvest_before_deadline_rejected(pool):
    pool.invoke(ctx(BUSINESS, "0x3", 2.0), "declare_dividend",
                {"rate_percent": 10, "claim_deadline": 100.0})
    with pytest.raises(BContractError):
        pool.invoke(ctx(BUSINESS, "0x4", 50.0), "reinvest_unclaimed", {})


def test_declaration_validation(pool):
    with pytest.raises(BContractError):
        pool.invoke(ctx(BUSINESS, "0x3", 2.0), "declare_dividend",
                    {"rate_percent": 0, "claim_deadline": 100.0})
    with pytest.raises(BContractError):
        pool.invoke(ctx(BUSINESS, "0x3", 2.0), "declare_dividend",
                    {"rate_percent": 10, "claim_deadline": 1.0})


def test_access_plans_cover_observed_mutations(pool):
    """The declared plans are sound against the runtime mutation journal."""
    context = ctx(INVESTOR, "0x10", 3.0)
    pool.invoke(context, "invest", {"amount": 250})
    plan = pool.access_plan(
        "invest", {"amount": 250}, sender=INVESTOR.hex(), tx_id=context.tx_id
    )
    assert plan is not None
    assert plan.covers_mutations_of(pool.last_access)

    pool.invoke(ctx(BUSINESS, "0x11", 4.0), "declare_dividend",
                {"rate_percent": 10, "claim_deadline": 100.0})
    context = ctx(INVESTOR, "0x12", 5.0)
    pool.invoke(context, "withdraw_dividend", {})
    plan = pool.access_plan(
        "withdraw_dividend", {}, sender=INVESTOR.hex(), tx_id=context.tx_id
    )
    assert plan is not None
    assert plan.covers_mutations_of(pool.last_access)


def test_sweep_methods_stay_exclusive(pool):
    """The unbounded prefix-scan methods deliberately have no plan."""
    for method in ("declare_dividend", "reinvest_unclaimed"):
        assert pool.access_plan(method, {}, sender=BUSINESS.hex(), tx_id="0x1") is None
