"""The content-addressable storage system bContract."""

import pytest

from repro.contracts import BContractError, ContentAddressableStorage, InvocationContext
from repro.crypto.keys import PrivateKey

ALICE = PrivateKey.from_seed("cas-alice").address


def ctx(tx_id="0x1"):
    return InvocationContext(sender=ALICE, tx_id=tx_id, timestamp=0.0, cell_id="cell-0", cycle=0)


@pytest.fixture
def cas():
    return ContentAddressableStorage("system.cas")


def test_put_and_get(cas):
    result = cas.invoke(ctx(), "put", {"content_hex": "0xdeadbeef"})
    digest = result["hash"]
    assert result["references"] == 1 and result["size"] == 4
    assert cas.query("get", {"digest": digest})["content_hex"] == "0xdeadbeef"


def test_content_hash_is_deterministic(cas):
    assert cas.content_hash(b"abc") == ContentAddressableStorage.content_hash(b"abc")


def test_duplicate_put_increments_reference_count(cas):
    first = cas.invoke(ctx("0x1"), "put", {"content_hex": "0x0102"})
    second = cas.invoke(ctx("0x2"), "put", {"content_hex": "0x0102"})
    assert first["hash"] == second["hash"]
    assert second["references"] == 2
    assert cas.query("stats", {})["blobs"] == 1


def test_add_reference_and_release(cas):
    digest = cas.invoke(ctx(), "put", {"content_hex": "0xaa"})["hash"]
    cas.invoke(ctx("0x2"), "add_reference", {"digest": digest})
    assert cas.query("reference_count", {"digest": digest}) == 2
    cas.invoke(ctx("0x3"), "release", {"digest": digest})
    assert cas.query("reference_count", {"digest": digest}) == 1


def test_release_to_zero_purges_blob(cas):
    digest = cas.invoke(ctx(), "put", {"content_hex": "0xbb"})["hash"]
    cas.invoke(ctx("0x2"), "release", {"digest": digest})
    assert cas.query("reference_count", {"digest": digest}) == 0
    with pytest.raises(BContractError):
        cas.query("get", {"digest": digest})
    assert cas.query("stats", {})["purged"] == 1


def test_release_unknown_blob_rejected(cas):
    with pytest.raises(BContractError):
        cas.invoke(ctx(), "release", {"digest": "0x" + "00" * 32})


def test_invalid_hex_rejected(cas):
    with pytest.raises(BContractError):
        cas.invoke(ctx(), "put", {"content_hex": "zz"})
    with pytest.raises(BContractError):
        cas.invoke(ctx(), "put", {"content_hex": 42})


def test_oversized_blob_rejected(cas):
    oversized = "0x" + "00" * (ContentAddressableStorage.MAX_BLOB_BYTES + 1)
    with pytest.raises(BContractError):
        cas.invoke(ctx(), "put", {"content_hex": oversized})


def test_fetch_blob_helper(cas):
    digest = cas.invoke(ctx(), "put", {"content_hex": "0x010203"})["hash"]
    assert cas.fetch_blob(digest) == b"\x01\x02\x03"
    with pytest.raises(BContractError):
        cas.fetch_blob("0x" + "ff" * 32)


def test_fingerprint_reflects_stored_blobs(cas):
    before = cas.fingerprint()
    cas.invoke(ctx(), "put", {"content_hex": "0x01"})
    assert cas.fingerprint() != before
