"""KeyValueStore: journaling, incremental fingerprints, cloning."""

import pytest

from repro.contracts.state_store import EMPTY_FINGERPRINT, KeyValueStore, StoreError


def test_put_get_delete():
    store = KeyValueStore()
    store.put("a", 1)
    assert store.get("a") == 1
    assert store.contains("a")
    store.delete("a")
    assert store.get("a") is None
    assert len(store) == 0


def test_require_raises_for_missing_key():
    with pytest.raises(StoreError):
        KeyValueStore().require("missing")


def test_keys_and_items_sorted_with_prefix():
    store = KeyValueStore({"b/2": 2, "a/1": 1, "b/1": 3})
    assert store.keys() == ["a/1", "b/1", "b/2"]
    assert store.keys("b/") == ["b/1", "b/2"]
    assert list(store.items("b/")) == [("b/1", 3), ("b/2", 2)]


def test_increment():
    store = KeyValueStore()
    assert store.increment("count") == 1
    assert store.increment("count", 4) == 5


def test_non_string_keys_rejected():
    with pytest.raises(StoreError):
        KeyValueStore().put(5, "value")


def test_empty_store_fingerprint():
    assert KeyValueStore().fingerprint() == EMPTY_FINGERPRINT


def test_fingerprint_tracks_content_not_history():
    a = KeyValueStore()
    a.put("x", 1)
    a.put("y", 2)
    a.delete("x")
    b = KeyValueStore()
    b.put("y", 2)
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_matches_recomputation_after_updates():
    store = KeyValueStore()
    for index in range(50):
        store.put(f"key-{index % 7}", index)
        if index % 3 == 0:
            store.delete(f"key-{index % 5}")
    assert store.fingerprint() == store.recompute_fingerprint()


def test_fingerprint_insertion_order_independent():
    a = KeyValueStore()
    b = KeyValueStore()
    a.put("x", 1)
    a.put("y", 2)
    b.put("y", 2)
    b.put("x", 1)
    assert a.fingerprint() == b.fingerprint()


def test_journal_commit_keeps_writes():
    store = KeyValueStore({"balance": 10})
    store.begin()
    store.put("balance", 5)
    store.commit()
    assert store.get("balance") == 5


def test_journal_rollback_restores_values_and_fingerprint():
    store = KeyValueStore({"balance": 10})
    before = store.fingerprint()
    store.begin()
    store.put("balance", 5)
    store.put("new", "entry")
    store.delete("balance")
    store.rollback()
    assert store.get("balance") == 10
    assert not store.contains("new")
    assert store.fingerprint() == before


def test_journal_misuse_raises():
    store = KeyValueStore()
    with pytest.raises(StoreError):
        store.commit()
    with pytest.raises(StoreError):
        store.rollback()
    store.begin()
    with pytest.raises(StoreError):
        store.begin()


def test_clone_snapshot_captures_fingerprint():
    store = KeyValueStore({"a": 1})
    snapshot = store.clone_snapshot()
    assert snapshot.fingerprint == store.fingerprint()
    assert snapshot.entry_count == 1
    assert snapshot.fingerprint_hex().startswith("0x")
    store.put("b", 2)
    assert snapshot.fingerprint != store.fingerprint()


def test_export_and_restore_state():
    store = KeyValueStore({"a": {"nested": [1, 2]}, "b": 2})
    exported = store.export_state()
    exported["a"]["nested"].append(3)  # the export is a deep copy
    assert store.get("a") == {"nested": [1, 2]}

    other = KeyValueStore()
    other.restore_state(store.export_state())
    assert other.fingerprint() == store.fingerprint()


def test_restore_inside_transaction_rejected():
    store = KeyValueStore()
    store.begin()
    with pytest.raises(StoreError):
        store.restore_state({})


def test_increment_non_numeric_value_raises_store_error():
    store = KeyValueStore({"label": "not a number", "flag": True})
    with pytest.raises(StoreError):
        store.increment("label")
    with pytest.raises(StoreError):
        store.increment("flag")
    # The failed increments changed nothing.
    assert store.get("label") == "not a number"


# ----------------------------------------------------------------------
# Copy-on-write exports
# ----------------------------------------------------------------------
def test_cow_export_freezes_state_at_export_time():
    store = KeyValueStore({"a": 1, "b": {"nested": [1]}})
    export = store.cow_export()
    assert not export.materialized
    store.put("a", 2)
    store.delete("b")
    store.put("c", 3)
    frozen = export.materialize()
    assert frozen == {"a": 1, "b": {"nested": [1]}}
    # Materializing detaches the export: later writes are free and unseen.
    store.put("a", 99)
    assert export.materialize() == {"a": 1, "b": {"nested": [1]}}
    assert store.pending_export_count == 0


def test_cow_export_only_copies_dirty_keys():
    store = KeyValueStore({f"k{i}": i for i in range(100)})
    export = store.cow_export()
    store.put("k0", -1)
    store.put("k1", -1)
    store.put("k0", -2)  # second write to the same key captures nothing new
    assert export.dirty_key_count == 2


def test_cow_export_unaffected_by_journal_rollback():
    store = KeyValueStore({"balance": 10})
    export = store.cow_export()
    store.begin()
    store.put("balance", 5)
    store.rollback()
    store.put("balance", 7)
    assert export.materialize() == {"balance": 10}


def test_multiple_cow_exports_see_their_own_instant():
    store = KeyValueStore({"x": 1})
    first = store.cow_export()
    store.put("x", 2)
    second = store.cow_export()
    store.put("x", 3)
    assert first.materialize() == {"x": 1}
    assert second.materialize() == {"x": 2}
    assert store.get("x") == 3


def test_cow_export_survives_restore_state():
    store = KeyValueStore({"a": 1, "b": 2})
    export = store.cow_export()
    store.restore_state({"a": 10, "c": 30})
    assert export.materialize() == {"a": 1, "b": 2}


def test_released_export_cannot_materialize_and_stops_tracking():
    store = KeyValueStore({"a": 1})
    export = store.cow_export()
    export.release()
    assert store.pending_export_count == 0
    store.put("a", 2)
    with pytest.raises(StoreError):
        export.materialize()


def test_materialized_export_is_a_deep_copy():
    store = KeyValueStore({"a": {"nested": [1]}})
    export = store.cow_export()
    frozen = export.materialize()
    frozen["a"]["nested"].append(2)
    assert store.get("a") == {"nested": [1]}
