"""The community-contract deployer system bContract."""

import pytest

from repro.contracts import (
    BContractError,
    CommunityDeployer,
    ContractRegistry,
    InvocationContext,
)
from repro.crypto.keys import PrivateKey

OWNER = PrivateKey.from_seed("deployer-owner").address
OTHER = PrivateKey.from_seed("deployer-other").address

SOURCE = '''
class Tally(BContract):
    TYPE = "community/tally"

    @bcontract_method
    def add(self, ctx, amount):
        return {"total": self.store.increment("total", amount)}

    @bcontract_view
    def total(self):
        return self.store.get("total", 0)
'''


def ctx(sender=OWNER, tx_id="0x1"):
    return InvocationContext(sender=sender, tx_id=tx_id, timestamp=1.0, cell_id="cell-0", cycle=0)


@pytest.fixture
def setup():
    registry = ContractRegistry()
    deployer = CommunityDeployer("system.deployer")
    deployer.bind(registry.register, registry.remove)
    registry.register(deployer)
    return registry, deployer


def test_deploy_registers_contract(setup):
    registry, deployer = setup
    result = deployer.invoke(ctx(), "deploy", {"name": "tally", "source": SOURCE})
    assert result["name"] == "tally" and result["owner"] == OWNER.hex()
    assert registry.contains("tally")
    contract = registry.get("tally")
    contract.invoke(ctx(tx_id="0x2"), "add", {"amount": 3})
    assert contract.query("total", {}) == 3
    assert deployer.query("deployed", {}) == ["tally"]


def test_reserved_names_rejected(setup):
    _registry, deployer = setup
    with pytest.raises(BContractError):
        deployer.invoke(ctx(), "deploy", {"name": "system.evil", "source": SOURCE})
    with pytest.raises(BContractError):
        deployer.invoke(ctx(), "deploy", {"name": "", "source": SOURCE})


def test_duplicate_name_rejected(setup):
    _registry, deployer = setup
    deployer.invoke(ctx(), "deploy", {"name": "tally", "source": SOURCE})
    with pytest.raises(BContractError):
        deployer.invoke(ctx(tx_id="0x2"), "deploy", {"name": "tally", "source": SOURCE})


def test_bad_source_rejected_and_nothing_registered(setup):
    registry, deployer = setup
    with pytest.raises(BContractError):
        deployer.invoke(ctx(), "deploy", {"name": "bad", "source": "import os"})
    assert not registry.contains("bad")
    assert deployer.query("deployed", {}) == []


def test_destroy_by_owner(setup):
    registry, deployer = setup
    deployer.invoke(ctx(), "deploy", {"name": "tally", "source": SOURCE})
    deployer.invoke(ctx(tx_id="0x2"), "destroy", {"name": "tally"})
    assert not registry.contains("tally")
    assert deployer.query("deployed", {}) == []


def test_destroy_by_non_owner_rejected(setup):
    registry, deployer = setup
    deployer.invoke(ctx(), "deploy", {"name": "tally", "source": SOURCE})
    with pytest.raises(BContractError):
        deployer.invoke(ctx(sender=OTHER, tx_id="0x2"), "destroy", {"name": "tally"})
    assert registry.contains("tally")


def test_indestructible_contract(setup):
    _registry, deployer = setup
    deployer.invoke(ctx(), "deploy", {"name": "tally", "source": SOURCE, "destroyable": False})
    with pytest.raises(BContractError):
        deployer.invoke(ctx(tx_id="0x2"), "destroy", {"name": "tally"})


def test_record_view(setup):
    _registry, deployer = setup
    deployer.invoke(ctx(), "deploy", {"name": "tally", "source": SOURCE, "params": {"limit": 5}})
    record = deployer.query("record", {"name": "tally"})
    assert record["owner"] == OWNER.hex()
    assert record["params"] == {"limit": 5}
    assert record["source_hash"].startswith("0x")
    with pytest.raises(BContractError):
        deployer.query("record", {"name": "ghost"})
