"""The Ballot voting bContract."""

import pytest

from repro.contracts import Ballot, BContractError, InvocationContext
from repro.crypto.keys import PrivateKey

CHAIR = PrivateKey.from_seed("ballot-chair").address
VOTERS = [PrivateKey.from_seed(f"voter-{i}").address for i in range(5)]


def ctx(sender=CHAIR, tx_id=None, timestamp=10.0):
    tx_id = tx_id or f"0x{abs(hash((sender.hex(), timestamp))) % 10**12:x}"
    return InvocationContext(sender=sender, tx_id=tx_id, timestamp=timestamp, cell_id="c", cycle=0)


@pytest.fixture
def ballot():
    contract = Ballot("ballot")
    contract.invoke(ctx(), "create_election", {
        "election_id": "e1", "question": "Best consensus?",
        "choices": ["overlay", "nakamoto", "pos"], "closes_at": 100.0,
    })
    return contract


def test_create_election_and_metadata(ballot):
    info = ballot.query("election", {"election_id": "e1"})
    assert info["question"] == "Best consensus?"
    assert info["choices"] == ["overlay", "nakamoto", "pos"]
    assert info["creator"] == CHAIR.hex()


def test_duplicate_election_rejected(ballot):
    with pytest.raises(BContractError):
        ballot.invoke(ctx(timestamp=11.0), "create_election", {
            "election_id": "e1", "question": "again?", "choices": ["a", "b"], "closes_at": 50.0,
        })


def test_election_validation():
    contract = Ballot("ballot")
    with pytest.raises(BContractError):
        contract.invoke(ctx(), "create_election", {
            "election_id": "bad", "question": "?", "choices": ["only-one"], "closes_at": 100.0})
    with pytest.raises(BContractError):
        contract.invoke(ctx(), "create_election", {
            "election_id": "bad", "question": "?", "choices": ["a", "a"], "closes_at": 100.0})
    with pytest.raises(BContractError):
        contract.invoke(ctx(timestamp=200.0), "create_election", {
            "election_id": "bad", "question": "?", "choices": ["a", "b"], "closes_at": 100.0})


def test_voting_and_tally(ballot):
    for index, voter in enumerate(VOTERS):
        choice = "overlay" if index < 3 else "nakamoto"
        ballot.invoke(ctx(sender=voter, timestamp=20.0 + index), "vote",
                      {"election_id": "e1", "choice": choice})
    tally = ballot.query("tally", {"election_id": "e1"})
    assert tally == {"overlay": 3, "nakamoto": 2, "pos": 0}
    assert ballot.query("winner", {"election_id": "e1"}) == {"choice": "overlay", "votes": 3}


def test_double_voting_rejected(ballot):
    ballot.invoke(ctx(sender=VOTERS[0], timestamp=20.0), "vote",
                  {"election_id": "e1", "choice": "overlay"})
    with pytest.raises(BContractError):
        ballot.invoke(ctx(sender=VOTERS[0], timestamp=21.0), "vote",
                      {"election_id": "e1", "choice": "pos"})


def test_vote_after_deadline_rejected(ballot):
    with pytest.raises(BContractError):
        ballot.invoke(ctx(sender=VOTERS[0], timestamp=200.0), "vote",
                      {"election_id": "e1", "choice": "overlay"})


def test_invalid_choice_and_unknown_election(ballot):
    with pytest.raises(BContractError):
        ballot.invoke(ctx(sender=VOTERS[0], timestamp=20.0), "vote",
                      {"election_id": "e1", "choice": "anarchy"})
    with pytest.raises(BContractError):
        ballot.invoke(ctx(sender=VOTERS[0], timestamp=20.0), "vote",
                      {"election_id": "ghost", "choice": "overlay"})
    with pytest.raises(BContractError):
        ballot.query("tally", {"election_id": "ghost"})


def test_access_plans_cover_observed_mutations(ballot):
    """The declared plans are sound against the runtime mutation journal."""
    voter = VOTERS[0]
    context = ctx(sender=voter, timestamp=20.0)
    args = {"election_id": "e1", "choice": "overlay"}
    ballot.invoke(context, "vote", args)
    plan = ballot.access_plan("vote", args, sender=voter.hex(), tx_id=context.tx_id)
    assert plan is not None
    assert plan.covers_mutations_of(ballot.last_access)

    fresh = Ballot("ballot2")
    context = ctx(timestamp=5.0)
    args = {"election_id": "e9", "question": "?", "choices": ["a", "b"], "closes_at": 100.0}
    fresh.invoke(context, "create_election", args)
    plan = fresh.access_plan(
        "create_election", args, sender=CHAIR.hex(), tx_id=context.tx_id
    )
    assert plan is not None
    assert plan.covers_mutations_of(fresh.last_access)


def test_access_plan_exclusive_fallback_on_malformed_args():
    """Garbage arguments yield None (the exclusive footprint), not a raise."""
    contract = Ballot("ballot")
    assert contract.access_plan("vote", {}, sender=CHAIR.hex(), tx_id="0x1") is None
    assert contract.access_plan("unknown", {}, sender=CHAIR.hex(), tx_id="0x1") is None
