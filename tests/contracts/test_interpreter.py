"""The restricted interpreter for community bContract source."""

import pytest

from repro.contracts.interpreter import InterpreterError, instantiate_contract, load_contract_class

VALID_SOURCE = '''
class Greeter(BContract):
    TYPE = "community/greeter"

    @bcontract_method
    def greet(self, ctx, name):
        if not name:
            raise BContractError("name required")
        self.store.increment("greetings")
        return {"message": "hello " + name}

    @bcontract_view
    def count(self):
        return self.store.get("greetings", 0)
'''


def test_load_valid_contract_class():
    cls = load_contract_class(VALID_SOURCE)
    assert cls.__name__ == "Greeter"


def test_instantiate_and_invoke():
    from repro.contracts import InvocationContext
    from repro.crypto.keys import PrivateKey

    contract = instantiate_contract(VALID_SOURCE, name="greeter")
    ctx = InvocationContext(
        sender=PrivateKey.from_seed("caller").address,
        tx_id="0x1", timestamp=0.0, cell_id="cell-0", cycle=0,
    )
    result = contract.invoke(ctx, "greet", {"name": "world"})
    assert result == {"message": "hello world"}
    assert contract.query("count", {}) == 1


def test_empty_source_rejected():
    with pytest.raises(InterpreterError):
        load_contract_class("   ")


def test_import_is_forbidden():
    with pytest.raises(InterpreterError):
        load_contract_class("import os\nclass X(BContract):\n    pass\n")


def test_dunder_escapes_forbidden():
    with pytest.raises(InterpreterError):
        load_contract_class("class X(BContract):\n    y = ().__class__.__subclasses__()\n")


def test_open_forbidden():
    with pytest.raises(InterpreterError):
        load_contract_class("class X(BContract):\n    f = open('/etc/passwd')\n")


def test_source_must_define_exactly_one_contract():
    with pytest.raises(InterpreterError):
        load_contract_class("x = 1\n")
    two = VALID_SOURCE + "\nclass Another(BContract):\n    pass\n"
    with pytest.raises(InterpreterError):
        load_contract_class(two)


def test_syntax_error_reported():
    with pytest.raises(InterpreterError):
        load_contract_class("class Broken(BContract:\n    pass\n")


def test_loaded_contracts_are_isolated_instances():
    first = instantiate_contract(VALID_SOURCE, name="a")
    second = instantiate_contract(VALID_SOURCE, name="b")
    first.store.put("greetings", 10)
    assert second.query("count", {}) == 0
