"""Per-cell contract registry and exclusion handling."""

import pytest

from repro.contracts import (
    BContractError,
    ContentAddressableStorage,
    ContractRegistry,
    FastMoney,
    RegistryError,
)


@pytest.fixture
def registry():
    reg = ContractRegistry()
    reg.register(ContentAddressableStorage("system.cas"))
    reg.register(FastMoney("fastmoney"))
    return reg


def test_register_and_get(registry):
    assert registry.contains("fastmoney")
    assert registry.get("fastmoney").name == "fastmoney"
    assert registry.names() == ["fastmoney", "system.cas"]
    assert len(registry) == 2


def test_duplicate_registration_rejected(registry):
    with pytest.raises(RegistryError):
        registry.register(FastMoney("fastmoney"))


def test_missing_contract_raises(registry):
    with pytest.raises(BContractError):
        registry.get("ghost")


def test_remove_community_contract(registry):
    registry.remove("fastmoney")
    assert not registry.contains("fastmoney")


def test_system_contract_cannot_be_removed(registry):
    with pytest.raises(RegistryError):
        registry.remove("system.cas")


def test_exclusion_lifecycle(registry):
    registry.exclude("fastmoney")
    assert registry.is_excluded("fastmoney")
    assert registry.excluded() == ["fastmoney"]
    assert "fastmoney" not in registry.fingerprints()
    assert "fastmoney" in registry.fingerprints(include_excluded=True)
    registry.include("fastmoney")
    assert not registry.is_excluded("fastmoney")


def test_exclude_unknown_contract_rejected(registry):
    with pytest.raises(RegistryError):
        registry.exclude("ghost")


def test_fingerprints_cover_all_contracts(registry):
    fingerprints = registry.fingerprints()
    assert set(fingerprints) == {"fastmoney", "system.cas"}
    assert all(len(digest) == 32 for digest in fingerprints.values())


def test_export_all_and_describe(registry):
    exported = registry.export_all()
    assert set(exported) == {"fastmoney", "system.cas"}
    described = registry.describe()
    assert {item["name"] for item in described} == {"fastmoney", "system.cas"}


def test_iteration_is_sorted(registry):
    assert [contract.name for contract in registry] == ["fastmoney", "system.cas"]
