"""Canonical JSON serialization used for signed payloads."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.encoding.canonical_json import CanonicalJSONError, dump_bytes, dumps, loads


def test_key_order_is_canonical():
    assert dumps({"b": 1, "a": 2}) == dumps({"a": 2, "b": 1})


def test_no_whitespace():
    text = dumps({"a": [1, 2], "b": "x"})
    assert " " not in text and "\n" not in text


def test_bytes_rendered_as_hex():
    assert dumps({"sig": b"\x01\x02"}) == '{"sig":"0x0102"}'


def test_roundtrip_via_loads():
    value = {"a": 1, "b": [True, None, "text"], "c": {"nested": 2.5}}
    assert loads(dumps(value)) == value


def test_address_objects_use_hex_method():
    address = PrivateKey.from_seed("json").address
    assert dumps({"addr": address}) == f'{{"addr":"{address.hex()}"}}'


def test_nan_rejected():
    with pytest.raises(CanonicalJSONError):
        dumps({"x": float("nan")})


def test_non_string_keys_rejected():
    with pytest.raises(CanonicalJSONError):
        dumps({1: "a"})


def test_unsupported_object_rejected():
    with pytest.raises(CanonicalJSONError):
        dumps({"x": object()})


def test_dump_bytes_is_utf8_of_dumps():
    value = {"text": "héllo"}
    assert dump_bytes(value) == dumps(value).encode()


def test_loads_accepts_bytes():
    assert loads(dump_bytes({"a": 1})) == {"a": 1}
