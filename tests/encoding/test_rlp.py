"""RLP encoding against the canonical Ethereum test vectors."""

import pytest

from repro.encoding.rlp import RLPError, decode, decode_int, encode


def test_single_byte_below_0x80_encodes_as_itself():
    assert encode(b"a") == b"a"
    assert encode(0x7F) == b"\x7f"


def test_empty_string():
    assert encode(b"") == b"\x80"
    assert encode(0) == b"\x80"


def test_dog_vector():
    assert encode(b"dog") == b"\x83dog"


def test_cat_dog_list_vector():
    assert encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"


def test_empty_list():
    assert encode([]) == b"\xc0"


def test_integer_vectors():
    assert encode(15) == b"\x0f"
    assert encode(1024) == b"\x82\x04\x00"


def test_long_string_prefix():
    text = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit"
    encoded = encode(text)
    assert encoded[0] == 0xB8
    assert encoded[1] == len(text)
    assert encoded[2:] == text


def test_nested_list_roundtrip():
    value = [b"cat", [b"dog", [b""]], b"horse", [[]]]
    assert decode(encode(value)) == [b"cat", [b"dog", [b""]], b"horse", [[]]]


def test_string_inputs_are_utf8():
    assert encode("dog") == encode(b"dog")


def test_negative_int_rejected():
    with pytest.raises(RLPError):
        encode(-1)


def test_bool_rejected():
    with pytest.raises(RLPError):
        encode(True)


def test_unsupported_type_rejected():
    with pytest.raises(RLPError):
        encode(1.5)


def test_decode_int_helper():
    assert decode_int(decode(encode(1024))) == 1024
    assert decode_int(b"") == 0


def test_decode_rejects_trailing_bytes():
    with pytest.raises(RLPError):
        decode(encode(b"dog") + b"\x00")


def test_decode_rejects_empty_input():
    with pytest.raises(RLPError):
        decode(b"")


def test_decode_rejects_non_canonical_single_byte():
    # 0x81 0x05 is the non-canonical encoding of 0x05.
    with pytest.raises(RLPError):
        decode(b"\x81\x05")


def test_large_payload_roundtrip():
    value = [b"x" * 300, [b"y" * 100] * 5, 2 ** 64]
    decoded = decode(encode(value))
    assert decoded[0] == b"x" * 300
    assert decode_int(decoded[2]) == 2 ** 64
