"""Hex helpers."""

import pytest

from repro.encoding.hexutil import HexError, from_hex, hex_to_int, int_to_hex, strip_0x, to_hex


def test_to_hex_prefix():
    assert to_hex(b"\x01\x02") == "0x0102"


def test_from_hex_with_and_without_prefix():
    assert from_hex("0x0102") == b"\x01\x02"
    assert from_hex("0102") == b"\x01\x02"


def test_from_hex_odd_length_padded():
    assert from_hex("0x1") == b"\x01"


def test_from_hex_invalid():
    with pytest.raises(HexError):
        from_hex("0xzz")


def test_strip_prefix():
    assert strip_0x("0xabc") == "abc"
    assert strip_0x("abc") == "abc"
    assert strip_0x("0Xabc") == "abc"


def test_int_roundtrip():
    assert hex_to_int(int_to_hex(123456)) == 123456
    assert hex_to_int("0x") == 0


def test_int_to_hex_rejects_negative():
    with pytest.raises(HexError):
        int_to_hex(-1)


def test_hex_to_int_invalid():
    with pytest.raises(HexError):
        hex_to_int("0xgg")
