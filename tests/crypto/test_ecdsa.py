"""Deterministic ECDSA signing, verification, and recovery."""

import pytest

from repro.crypto.ecdsa import (
    N,
    Signature,
    SignatureError,
    recover_public_key,
    sign_hash,
    sign_message,
    verify_hash,
    verify_message,
)
from repro.crypto.keccak import keccak256
from repro.crypto.keys import PrivateKey

KEY = PrivateKey.from_seed("ecdsa-tests")
MESSAGE = b"blockumulus transaction payload"


def test_sign_and_verify_message():
    signature = sign_message(KEY.secret, MESSAGE)
    assert verify_message(KEY.public_key.point, MESSAGE, signature)


def test_signature_is_deterministic():
    assert sign_message(KEY.secret, MESSAGE) == sign_message(KEY.secret, MESSAGE)


def test_different_messages_different_signatures():
    assert sign_message(KEY.secret, b"a") != sign_message(KEY.secret, b"b")


def test_verify_rejects_tampered_message():
    signature = sign_message(KEY.secret, MESSAGE)
    assert not verify_message(KEY.public_key.point, MESSAGE + b"!", signature)


def test_verify_rejects_wrong_key():
    other = PrivateKey.from_seed("someone-else")
    signature = sign_message(KEY.secret, MESSAGE)
    assert not verify_message(other.public_key.point, MESSAGE, signature)


def test_low_s_normalization():
    signature = sign_message(KEY.secret, MESSAGE)
    assert signature.s <= N // 2


def test_recover_public_key():
    message_hash = keccak256(MESSAGE)
    signature = sign_hash(KEY.secret, message_hash)
    recovered = recover_public_key(message_hash, signature)
    assert recovered == KEY.public_key.point


def test_recovery_of_tampered_input_yields_different_signer():
    message_hash = keccak256(MESSAGE)
    signature = sign_hash(KEY.secret, message_hash)
    corrupted = Signature(r=signature.r, s=(signature.s + 1) % N or 1, v=signature.v)
    try:
        recovered = recover_public_key(keccak256(b"different"), corrupted)
    except SignatureError:
        return  # rejecting outright is also acceptable
    assert recovered != KEY.public_key.point


def test_signature_serialization_roundtrip():
    signature = sign_message(KEY.secret, MESSAGE)
    assert Signature.from_bytes(signature.to_bytes()) == signature
    assert Signature.from_hex(signature.to_hex()) == signature


def test_signature_bytes_length():
    assert len(sign_message(KEY.secret, MESSAGE).to_bytes()) == 65


def test_signature_rejects_out_of_range_components():
    with pytest.raises(SignatureError):
        Signature(r=0, s=1, v=0)
    with pytest.raises(SignatureError):
        Signature(r=1, s=N, v=0)
    with pytest.raises(SignatureError):
        Signature(r=1, s=1, v=5)


def test_sign_hash_requires_32_bytes():
    with pytest.raises(SignatureError):
        sign_hash(KEY.secret, b"short")
    with pytest.raises(SignatureError):
        verify_hash(KEY.public_key.point, b"short", sign_message(KEY.secret, MESSAGE))


def test_many_keys_roundtrip():
    for index in range(5):
        key = PrivateKey.from_seed(f"key-{index}")
        signature = sign_message(key.secret, MESSAGE)
        assert verify_message(key.public_key.point, MESSAGE, signature)
        assert recover_public_key(keccak256(MESSAGE), signature) == key.public_key.point
