"""Canonical encoding and state fingerprinting."""

import pytest

from repro.crypto.fingerprint import (
    canonical_bytes,
    fingerprint_state,
    fingerprint_state_hex,
    snapshot_fingerprint,
    snapshot_fingerprint_hex,
)


def test_dict_key_order_does_not_matter():
    a = {"x": 1, "y": [1, 2, 3], "z": {"nested": True}}
    b = {"z": {"nested": True}, "y": [1, 2, 3], "x": 1}
    assert fingerprint_state(a) == fingerprint_state(b)


def test_list_order_matters():
    assert fingerprint_state([1, 2, 3]) != fingerprint_state([3, 2, 1])


def test_type_distinctions():
    assert canonical_bytes(1) != canonical_bytes("1")
    assert canonical_bytes(True) != canonical_bytes(1)
    assert canonical_bytes(None) != canonical_bytes(0)
    assert canonical_bytes(b"ab") != canonical_bytes("ab")


def test_value_changes_change_fingerprint():
    assert fingerprint_state({"balance": 10}) != fingerprint_state({"balance": 11})


def test_nested_structures_supported():
    state = {"accounts": {"0xabc": {"balance": 5, "history": [1, 2]}}, "supply": 5}
    assert len(fingerprint_state(state)) == 32


def test_unsupported_type_raises():
    with pytest.raises(TypeError):
        canonical_bytes(object())


def test_fingerprint_hex_prefix():
    assert fingerprint_state_hex({"a": 1}).startswith("0x")


def test_snapshot_fingerprint_combines_contracts():
    parts = {"fastmoney": b"\x01" * 32, "system.cas": b"\x02" * 32}
    combined = snapshot_fingerprint(parts)
    assert len(combined) == 32
    assert combined != parts["fastmoney"]


def test_snapshot_fingerprint_is_order_independent():
    parts_a = {"a": b"\x01" * 32, "b": b"\x02" * 32}
    parts_b = {"b": b"\x02" * 32, "a": b"\x01" * 32}
    assert snapshot_fingerprint(parts_a) == snapshot_fingerprint(parts_b)


def test_snapshot_fingerprint_detects_excluded_contract():
    full = {"a": b"\x01" * 32, "b": b"\x02" * 32}
    partial = {"a": b"\x01" * 32}
    assert snapshot_fingerprint(full) != snapshot_fingerprint(partial)


def test_snapshot_fingerprint_hex():
    assert snapshot_fingerprint_hex({"a": b"\x01" * 32}).startswith("0x")


def test_float_and_string_lengths_disambiguated():
    # "ab" + "c" must not collide with "a" + "bc".
    assert canonical_bytes(["ab", "c"]) != canonical_bytes(["a", "bc"])
