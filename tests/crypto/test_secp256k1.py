"""secp256k1 group arithmetic."""

import pytest

from repro.crypto.secp256k1 import (
    GENERATOR,
    INFINITY,
    InvalidPointError,
    N,
    P,
    Point,
    decode_point,
    point_add,
    recover_y,
    scalar_multiply,
)


def test_generator_is_on_curve():
    assert (GENERATOR.y ** 2 - GENERATOR.x ** 3 - 7) % P == 0


def test_off_curve_point_rejected():
    with pytest.raises(InvalidPointError):
        Point(1, 1)


def test_point_addition_identity():
    assert point_add(GENERATOR, INFINITY) == GENERATOR
    assert point_add(INFINITY, GENERATOR) == GENERATOR


def test_addition_of_inverse_is_infinity():
    negated = Point(GENERATOR.x, P - GENERATOR.y)
    assert point_add(GENERATOR, negated).is_infinity()


def test_doubling_matches_scalar_two():
    doubled = point_add(GENERATOR, GENERATOR)
    assert doubled == scalar_multiply(2)


def test_scalar_multiplication_distributes():
    # (3 + 5) * G == 3*G + 5*G
    left = scalar_multiply(8)
    right = point_add(scalar_multiply(3), scalar_multiply(5))
    assert left == right


def test_order_times_generator_is_infinity():
    assert scalar_multiply(N).is_infinity()


def test_scalar_zero_is_infinity():
    assert scalar_multiply(0).is_infinity()


def test_known_multiple():
    # 2*G from the SEC2 test data.
    doubled = scalar_multiply(2)
    assert doubled.x == 0xC6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5
    assert doubled.y == 0x1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A


def test_encode_decode_uncompressed_roundtrip():
    point = scalar_multiply(123456789)
    assert decode_point(point.encode()) == point


def test_encode_decode_compressed_roundtrip():
    point = scalar_multiply(987654321)
    assert decode_point(point.encode(compressed=True)) == point


def test_decode_rejects_bad_length():
    with pytest.raises(InvalidPointError):
        decode_point(b"\x02" * 10)


def test_recover_y_parities():
    point = scalar_multiply(42)
    assert recover_y(point.x, bool(point.y & 1)) == point.y
    assert recover_y(point.x, not bool(point.y & 1)) == P - point.y


def test_encode_infinity_rejected():
    with pytest.raises(InvalidPointError):
        INFINITY.encode()
