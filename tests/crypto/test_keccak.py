"""Keccak-256 against published test vectors and API behaviour."""

import pytest

from repro.crypto.keccak import Keccak256, keccak256, keccak256_hex

# Known Keccak-256 (pre-SHA3 padding) vectors.
VECTORS = {
    b"": "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470",
    b"abc": "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45",
    b"testing": "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02",
    b"The quick brown fox jumps over the lazy dog":
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
}


@pytest.mark.parametrize("message,expected", sorted(VECTORS.items()))
def test_known_vectors(message, expected):
    assert keccak256(message).hex() == expected


def test_hex_digest_matches_digest():
    assert keccak256_hex(b"abc") == keccak256(b"abc").hex()


def test_digest_is_32_bytes():
    assert len(keccak256(b"x" * 1000)) == 32


def test_incremental_update_equals_one_shot():
    hasher = Keccak256()
    hasher.update(b"The quick brown fox ")
    hasher.update(b"jumps over the lazy dog")
    assert hasher.hexdigest() == VECTORS[b"The quick brown fox jumps over the lazy dog"]


def test_update_returns_self_for_chaining():
    assert Keccak256().update(b"a").update(b"bc").hexdigest() == VECTORS[b"abc"]


def test_multi_block_input():
    # Exercise more than one sponge block (rate = 136 bytes).
    data = b"a" * 500
    assert keccak256(data) == Keccak256(data).digest()
    incremental = Keccak256()
    for offset in range(0, len(data), 37):
        incremental.update(data[offset:offset + 37])
    assert incremental.digest() == keccak256(data)


def test_digest_does_not_finalize_state():
    hasher = Keccak256(b"ab")
    first = hasher.digest()
    assert hasher.digest() == first
    hasher.update(b"c")
    assert hasher.hexdigest() == VECTORS[b"abc"]


def test_copy_is_independent():
    hasher = Keccak256(b"ab")
    clone = hasher.copy()
    clone.update(b"c")
    hasher.update(b"X")
    assert clone.hexdigest() == VECTORS[b"abc"]
    assert hasher.hexdigest() != clone.hexdigest()


def test_rejects_non_bytes_input():
    with pytest.raises(TypeError):
        Keccak256().update("not-bytes")


def test_distinct_inputs_distinct_digests():
    digests = {keccak256(bytes([i])) for i in range(64)}
    assert len(digests) == 64
