"""Key pairs and Ethereum-style addresses."""

import pytest

from repro.crypto.keys import Address, AddressError, PrivateKey, PublicKey, recover_address


def test_address_from_seed_is_deterministic():
    assert PrivateKey.from_seed("alice").address == PrivateKey.from_seed("alice").address


def test_distinct_seeds_distinct_addresses():
    assert PrivateKey.from_seed("alice").address != PrivateKey.from_seed("bob").address


def test_address_is_20_bytes_of_pubkey_hash():
    key = PrivateKey.from_seed("addr")
    from repro.crypto.keccak import keccak256

    expected = keccak256(key.public_key.encode())[-20:]
    assert key.address.value == expected


def test_address_hex_roundtrip():
    address = PrivateKey.from_seed("hex").address
    assert Address.from_hex(address.hex()) == address
    assert address.hex().startswith("0x") and len(address.hex()) == 42


def test_address_short_form():
    address = PrivateKey.from_seed("short").address
    short = address.short()
    assert short.startswith("0x") and ".." in short and len(short) < len(address.hex())


def test_address_rejects_bad_lengths():
    with pytest.raises(AddressError):
        Address(b"\x01" * 19)
    with pytest.raises(AddressError):
        Address.from_hex("0x1234")


def test_zero_address():
    assert Address.zero().value == b"\x00" * 20


def test_private_key_hex_roundtrip():
    key = PrivateKey.from_seed("roundtrip")
    assert PrivateKey.from_hex(key.to_hex()).address == key.address


def test_private_key_range_validation():
    with pytest.raises(ValueError):
        PrivateKey(0)


def test_public_key_encode_decode():
    key = PrivateKey.from_seed("pub")
    encoded = key.public_key.encode()
    assert PublicKey.decode(encoded).address() == key.address


def test_sign_and_recover_address():
    key = PrivateKey.from_seed("signer")
    signature = key.sign(b"message body")
    assert recover_address(b"message body", signature) == key.address


def test_recover_address_differs_for_tampered_message():
    key = PrivateKey.from_seed("signer")
    signature = key.sign(b"message body")
    try:
        recovered = recover_address(b"tampered body", signature)
    except Exception:
        return
    assert recovered != key.address


def test_public_key_verify():
    key = PrivateKey.from_seed("verify")
    signature = key.sign(b"hello")
    assert key.public_key.verify(b"hello", signature)
    assert not key.public_key.verify(b"hello!", signature)


def test_addresses_are_orderable_and_hashable():
    addresses = {PrivateKey.from_seed(str(i)).address for i in range(10)}
    assert len(addresses) == 10
    assert sorted(addresses)
