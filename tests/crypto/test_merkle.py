"""Merkle trees and inclusion proofs."""

import pytest

from repro.crypto.hashing import fast_hash
from repro.crypto.keccak import keccak256
from repro.crypto.merkle import MerkleTree, empty_root, merkle_root


def leaves(count):
    return [f"leaf-{index}".encode() for index in range(count)]


def test_empty_tree_has_defined_root():
    assert MerkleTree([]).root == empty_root(keccak256)


def test_single_leaf_root_is_leaf_hash():
    tree = MerkleTree([b"only"])
    assert len(tree) == 1
    assert tree.root == keccak256(b"\x00" + b"only")


def test_root_changes_with_any_leaf():
    base = merkle_root(leaves(8))
    for index in range(8):
        mutated = leaves(8)
        mutated[index] = b"mutated"
        assert merkle_root(mutated) != base


def test_root_depends_on_order():
    items = leaves(4)
    assert merkle_root(items) != merkle_root(list(reversed(items)))


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
def test_proofs_verify_for_every_leaf(count):
    items = leaves(count)
    tree = MerkleTree(items)
    for index, item in enumerate(items):
        assert tree.proof(index).verify(item, tree.root)
        assert tree.verify(index, item)


def test_proof_fails_for_wrong_leaf():
    items = leaves(6)
    tree = MerkleTree(items)
    proof = tree.proof(2)
    assert not proof.verify(b"not-the-leaf", tree.root)


def test_proof_fails_against_wrong_root():
    items = leaves(6)
    tree = MerkleTree(items)
    other = MerkleTree(leaves(7))
    assert not tree.proof(1).verify(items[1], other.root)


def test_proof_out_of_range():
    tree = MerkleTree(leaves(3))
    with pytest.raises(IndexError):
        tree.proof(3)
    with pytest.raises(IndexError):
        MerkleTree([]).proof(0)


def test_alternative_hash_function():
    items = leaves(5)
    fast_tree = MerkleTree(items, hash_function=fast_hash)
    keccak_tree = MerkleTree(items)
    assert fast_tree.root != keccak_tree.root
    for index, item in enumerate(items):
        assert fast_tree.proof(index).verify(item, fast_tree.root, fast_hash)


def test_root_hex_prefix():
    assert MerkleTree(leaves(2)).root_hex().startswith("0x")
