"""Tamper detection and the shrinking pass.

The negative half of the chaos acceptance criteria: a scenario whose
fault schedule includes a state tamper *must fail* its oracle stack (the
per-group audit replays the cycle and catches the corrupted state), and
the shrinking pass must bisect the schedule down to the tampering fault
alone — the minimal failing spec recorded in the scenario report.
"""

import pytest

from repro.chaos import check_scenario, sample_scenario, shrink_faults
from repro.chaos.runner import scenario_report
from repro.core.faults import FaultSchedule, ScheduledFault

#: A corpus seed with one shard (every operation executes on group 0, so
#: the injected tamper is guaranteed to corrupt executed state), several
#: benign faults for the shrinker to remove, and no crash/recovery of
#: the tamper target (a resync would overwrite the corrupted store and
#: hide the evidence behind the donor's honest state).
BASE_SEED = 13

TAMPER = ScheduledFault(kind="tamper_state", group=0, cell=1, at=6.0)


def tampered_spec():
    spec = sample_scenario(BASE_SEED)
    assert spec.shards == 1 and len(spec.faults) >= 2
    return spec.with_faults(FaultSchedule(spec.faults.faults + (TAMPER,)))


@pytest.fixture(scope="module")
def tamper_outcome():
    """Run the tampered scenario once; reuse across assertions."""
    spec = tampered_spec()
    run, results = check_scenario(spec, replay=False)
    return spec, run, results


def test_injected_state_tamper_is_caught_by_the_oracle_stack(tamper_outcome):
    spec, run, results = tamper_outcome
    audit = next(result for result in results if result.oracle == "audit")
    assert not audit.passed
    assert any("succession" in finding or "fingerprint" in finding
               for finding in audit.findings)
    # The tampering cell recorded its own misbehaviour (test oracle only —
    # the audit does not rely on it).
    assert any(event["kind"] == "tamper_state"
               for cell in run.deployment.group(0).cells
               for event in cell.fault.events)


def test_tampered_scenario_shrinks_to_the_tamper_alone(tamper_outcome):
    spec, _run, _results = tamper_outcome

    def fails(candidate):
        _candidate_run, results = check_scenario(
            candidate, replay=False, differential=False
        )
        return not all(result.passed for result in results)

    shrunk, runs = shrink_faults(spec, fails=fails)
    assert runs <= 24
    assert len(shrunk.faults) == 1
    assert shrunk.faults.faults[0] == TAMPER
    # The shrunk spec still reproduces the failure on the full stack.
    _shrunk_run, results = check_scenario(shrunk, replay=False)
    assert not all(result.passed for result in results)


def test_scenario_report_records_the_shrunk_spec():
    spec = tampered_spec()
    report = scenario_report(
        spec, replay=False, differential=False, shrink_on_failure=True
    )
    assert not report.passed
    assert report.shrunk_spec is not None
    assert len(report.shrunk_spec["faults"]) == 1
    assert report.shrunk_spec["faults"][0]["kind"] == "tamper_state"
    # A hand-modified spec is not what sample_scenario(seed) yields, so
    # the replay command honestly points at the embedded spec instead.
    assert not report.sampled
    assert report.replay_command.endswith(f"--spec scenario-{spec.seed}.json")


def test_shrinker_is_a_no_op_on_single_fault_schedules():
    """Regression: an already-1-minimal schedule must cost *zero*
    candidate executions — the shrinker must not re-run the scenario
    just to confirm the single fault is load-bearing."""
    spec = sample_scenario(0)
    assert len(spec.faults) == 1
    calls = []

    def fails(candidate):
        calls.append(candidate)
        return True

    shrunk, runs = shrink_faults(spec, fails=fails)
    assert shrunk == spec
    assert runs == 0
    assert calls == [], "no runner invocation may happen on a minimal schedule"


def test_shrinker_is_a_no_op_on_empty_schedules():
    """Regression: a spec whose faults validated away entirely (e.g. a
    workload-only failure) shrinks to itself without a single run."""
    spec = sample_scenario(0).with_faults(FaultSchedule(()))
    assert len(spec.faults) == 0
    calls = []

    def fails(candidate):
        calls.append(candidate)
        return True

    shrunk, runs = shrink_faults(spec, fails=fails)
    assert shrunk == spec
    assert runs == 0
    assert calls == []
