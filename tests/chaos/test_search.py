"""Coverage-guided search: beats uniform, deterministic, floor-pinned.

The acceptance bar of the greybox half of the corpus
(:mod:`repro.chaos.search`): at the pinned CI budget the search must
**strictly** beat the plain uniform corpus on covered
``(matrix point × fault kind × op kind × signal)`` tuples, every
scenario it generates must still pass the (cheap) oracle stack — grown
faults obey the sampler's recoverability constraints, so a failure here
is a found bug — and the whole run must be a pure function of the
budget, because CI pins a coverage floor on it.
"""

import json

from repro.chaos import SearchOutcome, run_search
from repro.chaos.__main__ import main as chaos_main
from repro.chaos.search import (
    PINNED_COVERAGE_FLOOR,
    PINNED_SEARCH_BUDGET,
    TREND_SCHEMA,
    uniform_coverage,
)
from repro.core.faults import RECOVERABLE_FAULT_KINDS

import pytest


@pytest.fixture(scope="module")
def pinned_search() -> SearchOutcome:
    """One search run at the CI-pinned budget, shared across assertions."""
    return run_search(PINNED_SEARCH_BUDGET)


def test_search_strictly_beats_uniform_at_equal_budget(pinned_search):
    uniform = uniform_coverage(PINNED_SEARCH_BUDGET)
    assert len(pinned_search.coverage) > len(uniform), (
        f"search covered {len(pinned_search.coverage)} tuples, uniform "
        f"{len(uniform)} — the mutation half is not earning its budget"
    )


def test_search_meets_the_pinned_coverage_floor(pinned_search):
    assert len(pinned_search.coverage) >= PINNED_COVERAGE_FLOOR


def test_search_scenarios_pass_their_oracle_stack(pinned_search):
    assert pinned_search.failures == [], (
        "a search scenario failed its oracles — grown faults are "
        "sampler-legal, so this is a real bug, not sampling noise"
    )


def test_search_spends_half_its_budget_on_mutations(pinned_search):
    origins = [entry.origin for entry in pinned_search.entries]
    assert len(origins) == PINNED_SEARCH_BUDGET
    assert origins.count("uniform") == (PINNED_SEARCH_BUDGET + 1) // 2
    assert origins.count("mutation") == PINNED_SEARCH_BUDGET // 2
    assert all(entry.mutation for entry in pinned_search.entries
               if entry.origin == "mutation")


def test_coverage_tuples_are_well_formed(pinned_search):
    for matrix, kind, op, signal in pinned_search.coverage:
        assert matrix.startswith("shards=")
        assert kind in RECOVERABLE_FAULT_KINDS
        assert op in {"transfer", "cas_put", "vote", "invest"}
        assert ":" in signal


def test_search_is_a_pure_function_of_the_budget():
    first = run_search(4)
    second = run_search(4)
    assert first.coverage == second.coverage
    assert [(e.seed, e.origin, e.mutation) for e in first.entries] == [
        (e.seed, e.origin, e.mutation) for e in second.entries
    ]


def test_trend_payload_matches_the_documented_schema(pinned_search, tmp_path):
    path = tmp_path / "corpus_trend.json"
    pinned_search.write_trend(str(path), uniform_tuples=123)
    data = json.loads(path.read_text())
    assert data["schema"] == TREND_SCHEMA
    assert data["budget"] == PINNED_SEARCH_BUDGET
    assert data["uniform_budget"] + data["search_budget"] == PINNED_SEARCH_BUDGET
    assert data["coverage"]["tuples"] == len(pinned_search.coverage)
    assert data["uniform_coverage_tuples"] == 123
    assert len(data["entries"]) == PINNED_SEARCH_BUDGET
    assert data["failures"] == 0
    assert data["failing_specs"] == []
    assert len(data["new_tuples_by_iteration"]) == PINNED_SEARCH_BUDGET


def test_cli_search_subcommand_writes_the_trend(tmp_path):
    path = tmp_path / "corpus_trend.json"
    status = chaos_main(["search", "--budget", "4", "--trend-out", str(path)])
    assert status == 0
    data = json.loads(path.read_text())
    assert data["schema"] == TREND_SCHEMA
    assert data["budget"] == 4


def test_cli_search_fails_on_a_floor_regression(tmp_path):
    path = tmp_path / "corpus_trend.json"
    status = chaos_main([
        "search", "--budget", "4", "--trend-out", str(path),
        "--coverage-floor", "1000000",
    ])
    assert status == 1
