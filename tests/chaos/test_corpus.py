"""The pinned chaos corpus: every seeded scenario passes the oracle stack.

This is the acceptance gate of the chaos engine: seeds ``0..N-1``
(stratified over shards {1,2,4} × lanes {1,4} × batching {on,off} and
the seven recoverable fault kinds — crashes, rejoins, standby
activations, censor/delay windows, healing partitions, clock skew) each
run through :func:`repro.chaos.check_scenario` —
value conservation, differential equality against the serial/unsharded/
unbatched reference, bit-for-bit same-seed replay, and the full
per-group audit + shard-digest verification.  A failing scenario writes
its :class:`ScenarioReport` (seed + spec + findings) to the report
directory so CI can upload it as an artifact; the report's
``replay_command`` reproduces the failure locally in one line.

Scale with ``pytest --chaos-budget N`` (see tests/chaos/conftest.py).
"""

from repro.chaos import check_scenario, sample_scenario
from repro.chaos.report import ScenarioReport

from tests.chaos.conftest import REPORT_DIR


def test_scenario_passes_all_oracles(chaos_seed):
    spec = sample_scenario(chaos_seed)
    run, results = check_scenario(spec)
    failed = [result for result in results if not result.passed]
    if failed:
        report = ScenarioReport(
            seed=chaos_seed,
            spec=spec.to_data(),
            passed=False,
            oracles=[result.to_data() for result in results],
            stats={"fault_events": len(run.fault_log)},
        )
        path = report.write(REPORT_DIR)
        details = "; ".join(
            f"{result.oracle}: {result.findings[:2]}" for result in failed
        )
        raise AssertionError(
            f"scenario {chaos_seed} failed oracles [{details}] — "
            f"report: {path}; reproduce with: {report.replay_command}"
        )
    # Replay + audit + conservation + differential all ran.
    assert {result.oracle for result in results} == {
        "conservation",
        "differential",
        "replay",
        "audit",
    }
    # Every scheduled fault actually fired (the FaultSchedule validation
    # promise: nothing silently targets a ghost and never fires).
    injected = {(f["kind"], f["group"], f["cell"]) for f in run.fault_log}
    scheduled = {(f.kind, f.group, f.cell) for f in spec.faults}
    assert scheduled <= injected
