"""Scenario sampling: determinism, serialization, validation, coverage."""

import pytest

from repro.chaos import (
    CORPUS_SIZE,
    ScenarioError,
    ScenarioSpace,
    ScenarioSpec,
    corpus_specs,
    coverage,
    sample_scenario,
)
from repro.chaos.scenario import (
    FAULTS_END,
    FAULTS_START,
    OPS_END,
    OPS_START,
    RESOLVE_BY,
)
from repro.core.faults import (
    BYZANTINE_FAULT_KINDS,
    RECOVERABLE_FAULT_KINDS,
    VOUCHER_FAULT_KINDS,
    FaultError,
    FaultSchedule,
    ScheduledFault,
)


def test_sampling_is_a_pure_function_of_the_seed():
    for seed in (0, 7, 41, 59):
        assert sample_scenario(seed) == sample_scenario(seed)


def test_distinct_seeds_draw_distinct_scenarios():
    specs = {seed: sample_scenario(seed) for seed in range(8)}
    operations = {
        tuple(str(op.to_data()) for op in spec.operations) for spec in specs.values()
    }
    assert len(operations) == len(specs), "seeds must not share workload draws"


def test_spec_round_trips_through_json_data():
    for seed in (3, 17, 44):
        spec = sample_scenario(seed)
        assert ScenarioSpec.from_data(spec.to_data()) == spec


def test_sampled_timelines_respect_the_scenario_phases():
    for seed in range(24):
        spec = sample_scenario(seed)
        for op in spec.operations:
            assert OPS_START <= op.at <= OPS_END
        for fault in spec.faults:
            if fault.kind == "standby_activate":
                # Activations land anywhere in the fault/traffic window —
                # including inside other cells' crash windows; the rejoin
                # protocol backfills in-flight admissions and excludes
                # silent voters, so nothing is scheduled around.
                assert fault.at >= FAULTS_START
                assert fault.at <= RESOLVE_BY + spec.shards
            else:
                assert FAULTS_START <= fault.at <= FAULTS_END
            if fault.until is not None:
                assert fault.at < fault.until <= RESOLVE_BY
                if fault.kind in ("crash_recover", "crash_rejoin"):
                    assert fault.until >= fault.at + 4.0
            if fault.kind == "partition_window":
                # Partitions heal before the first anchor boundary, so
                # the cut-off cells reconnect in time to co-sign digests.
                assert fault.until is not None
                assert fault.until <= 19.0 < spec.report_period
            if fault.kind == "skew_window":
                assert 0.0 < fault.params["seconds"] <= 0.5
        assert spec.end_time > spec.cycles * spec.report_period


def test_fault_kinds_derive_from_the_exported_taxonomy():
    """Satellite: the sampling space's fault kinds are the single
    exported constant, not a hand-maintained copy — adding a kind to
    ``repro.core.faults`` widens the sampler automatically."""
    space = ScenarioSpace()
    assert space.fault_kinds == RECOVERABLE_FAULT_KINDS
    assert space.fault_kinds is RECOVERABLE_FAULT_KINDS
    # Byzantine kinds are deliberately NOT in the uniform space: their
    # scenarios must fail oracles, and belong to the byzantine corpus.
    assert not set(space.fault_kinds) & set(BYZANTINE_FAULT_KINDS)


def test_fault_targeting_a_ghost_cell_is_rejected_at_spec_level():
    spec = sample_scenario(0)
    ghost = FaultSchedule(
        (ScheduledFault(kind="crash_recover", group=0, cell=99, at=6.0, until=12.0),)
    )
    with pytest.raises(FaultError, match="unknown cell 99"):
        spec.with_faults(ghost)
    wrong_group = FaultSchedule(
        (ScheduledFault(kind="crash_recover", group=7, cell=0, at=6.0, until=12.0),)
    )
    with pytest.raises(FaultError, match="group 7"):
        spec.with_faults(wrong_group)
    ghost_account = FaultSchedule(
        (ScheduledFault(kind="censor_window", group=0, cell=0, at=6.0, until=12.0,
                        params={"account": 99}),)
    )
    with pytest.raises(ScenarioError, match="account 99"):
        spec.with_faults(ghost_account)


def test_standby_activation_must_target_a_standby_index():
    with pytest.raises(FaultError, match="not a standby"):
        ScenarioSpec.from_data(
            {
                **sample_scenario(2).to_data(),
                "standby_cells": 1,
                "faults": [
                    {"kind": "standby_activate", "group": 0, "cell": 0, "at": 6.0}
                ],
            }
        )


def test_space_validation_rejects_degenerate_axes():
    with pytest.raises(ScenarioError):
        ScenarioSpace(shards=())
    with pytest.raises(ScenarioError):
        ScenarioSpace(consortium_size=1)
    with pytest.raises(ScenarioError):
        ScenarioSpace(min_ops=5, max_ops=3)


def test_pinned_corpus_spans_the_full_feature_matrix():
    specs = corpus_specs()
    assert len(specs) == CORPUS_SIZE >= 50
    cov = coverage(specs)
    assert cov["matrix_points"] == len(ScenarioSpace().matrix()) == 12
    assert set(cov["fault_kinds"]) == set(RECOVERABLE_FAULT_KINDS) | set(
        VOUCHER_FAULT_KINDS
    )
    assert set(cov["op_kinds"]) == {"transfer", "cas_put", "vote", "invest"}
    # Multi-shard scenarios exist with transfers, so cross-shard 2PC and
    # pauper-driven aborts get exercised across the corpus.
    assert cov["multi_shard_transfer_candidates"] > 0


def test_corpus_stratifies_the_voucher_fast_path():
    """Half the corpus runs its cross-shard transfers over the voucher
    fast path, voucher delivery faults ride only on those scenarios (on
    the gateway cell), and lead-kind stratification is untouched."""
    specs = corpus_specs()
    fast = [spec for spec in specs if spec.fast_path]
    slow = [spec for spec in specs if not spec.fast_path]
    assert len(fast) == len(slow) == CORPUS_SIZE // 2
    voucher_kinds = set(VOUCHER_FAULT_KINDS)
    sampled = 0
    for spec in specs:
        for fault in spec.faults:
            if fault.kind in voucher_kinds:
                sampled += 1
                assert spec.fast_path and spec.shards > 1
                assert fault.cell == 0, "voucher faults target the gateway"
                assert fault.until is not None
    assert sampled > 0, "the corpus must sample voucher delivery faults"
    # The voucher draws ride strictly *after* the pre-existing ones, so
    # lead-kind stratification over seed % 7 is untouched: the first
    # scheduled fault of every scenario is never a voucher kind.
    for spec in specs:
        if len(spec.faults):
            assert spec.faults.faults[0].kind not in voucher_kinds

