"""Fixtures for the chaos-engine suite (budget scaling, report dir)."""

from __future__ import annotations

import os

import pytest

from repro.chaos import corpus_seeds

#: Where failing scenario reports are written (CI uploads these).
REPORT_DIR = os.environ.get("CHAOS_REPORT_DIR", ".chaos-reports")


def pytest_generate_tests(metafunc):
    """Parametrize corpus tests over the budgeted seed range.

    The ``--chaos-budget N`` option (see the root conftest) replaces the
    pinned corpus with seeds ``0..N-1`` — a prefix for quick smoke runs,
    an extension beyond the pinned range for nightly soak runs.
    """
    if "chaos_seed" in metafunc.fixturenames:
        budget = metafunc.config.getoption("--chaos-budget")
        metafunc.parametrize("chaos_seed", corpus_seeds(budget))


@pytest.fixture
def chaos_budget(request) -> int | None:
    """The raw --chaos-budget value (None = pinned corpus)."""
    return request.config.getoption("--chaos-budget")
