"""The Byzantine corpus: every injected adversary is caught and named.

The mirror image of ``test_corpus.py``: recoverable scenarios must pass
their oracle stack, Byzantine scenarios must be *caught* — by the
mechanism their threat model predicts.  Each corpus seed runs through
:func:`repro.chaos.check_byzantine_scenario` (the standard stack plus
the attribution oracle) and :func:`repro.chaos.byzantine_verdict`
asserts the per-kind expectations:

* ``tamper_state`` / ``tamper_fingerprint`` / ``equivocate`` fail the
  audit oracle and are attributed to the anchor-agreement check (or a
  per-cell audit finding naming the cell);
* ``lying_gateway`` (``forge``, ``withhold``, and the fast-path
  ``voucher`` forgery modes) passes every standard oracle — the
  forged/withheld XSHARD_VOTE (or forged credit voucher) is refused at
  the certificate layer before anything commits — and is attributed to
  ``caught-by-certificate`` with ledger-derived evidence of zero
  half-commits;
* conservation, differential, and bit-identical same-seed replay stay
  green for *all four* kinds: a caught adversary corrupts no committed
  state and never breaks determinism.
"""

import pytest

from repro.chaos import (
    BYZANTINE_CORPUS_SIZE,
    byzantine_corpus_seeds,
    byzantine_verdict,
    check_byzantine_scenario,
    sample_byzantine_scenario,
)
from repro.chaos.byzantine import ANCHORED_BYZANTINE_KINDS
from repro.core.faults import BYZANTINE_FAULT_KINDS, LYING_GATEWAY_MODES


@pytest.fixture(scope="module")
def byzantine_outcomes():
    """Run the pinned Byzantine corpus once; assertions share the runs."""
    outcomes = {}
    for seed in byzantine_corpus_seeds():
        spec = sample_byzantine_scenario(seed)
        run, results = check_byzantine_scenario(spec)
        outcomes[seed] = (spec, run, results)
    return outcomes


def test_byzantine_sampling_is_deterministic():
    for seed in byzantine_corpus_seeds():
        assert sample_byzantine_scenario(seed) == sample_byzantine_scenario(seed)


def test_byzantine_corpus_covers_every_kind_and_both_lying_modes():
    specs = [sample_byzantine_scenario(seed) for seed in byzantine_corpus_seeds()]
    assert len(specs) == BYZANTINE_CORPUS_SIZE
    kinds = {fault.kind for spec in specs for fault in spec.faults}
    assert kinds == set(BYZANTINE_FAULT_KINDS)
    modes = {
        fault.params["mode"]
        for spec in specs
        for fault in spec.faults
        if fault.kind == "lying_gateway"
    }
    assert modes == set(LYING_GATEWAY_MODES)


def test_byzantine_specs_carry_exactly_one_fault():
    """One adversary per scenario: attribution stays unambiguous."""
    for seed in byzantine_corpus_seeds():
        spec = sample_byzantine_scenario(seed)
        assert len(spec.faults) == 1
        assert spec.standby_cells == 0
        if spec.faults.faults[0].kind == "lying_gateway":
            # A lying gateway needs a cross-shard vote to lie about.
            assert spec.shards >= 2


def test_every_byzantine_scenario_meets_its_verdict(byzantine_outcomes):
    for seed, (spec, _run, results) in byzantine_outcomes.items():
        problems = byzantine_verdict(spec, results)
        assert not problems, f"seed {seed}: {problems}"


def test_replay_is_bit_identical_for_every_byzantine_kind(byzantine_outcomes):
    """Determinism survives the adversary: the replay oracle re-runs the
    scenario from the same seed and diffs the full artifact set."""
    seen_kinds = set()
    for seed, (spec, _run, results) in byzantine_outcomes.items():
        replay = next(result for result in results if result.oracle == "replay")
        assert replay.passed, f"seed {seed}: {replay.findings}"
        seen_kinds |= spec.faults.kinds()
    assert seen_kinds == set(BYZANTINE_FAULT_KINDS)


def test_every_fault_is_attributed_to_its_predicted_mechanism(byzantine_outcomes):
    for seed, (spec, _run, results) in byzantine_outcomes.items():
        attribution = next(
            result for result in results if result.oracle == "attribution"
        )
        assert attribution.passed, f"seed {seed}: {attribution.findings}"
        assert attribution.metrics["byzantine_faults"] == 1
        assert attribution.metrics["attributed"] == 1
        (record,) = attribution.metrics["attributions"]
        fault = spec.faults.faults[0]
        assert record["kind"] == fault.kind
        assert (record["group"], record["cell"]) == (fault.group, fault.cell)
        assert record["evidence"], "an attribution must carry its proof"
        if fault.kind == "lying_gateway":
            assert record["mechanism"] == "caught-by-certificate"
        else:
            assert record["mechanism"] in (
                "caught-by-anchor-agreement",
                "caught-by-audit",
            )


def test_lying_gateway_leaves_zero_half_commits(byzantine_outcomes):
    """The acceptance bar: a forged or withheld vote — or a forged
    fast-path voucher — must never produce a settled source hold, a
    credited or redeemed target, or a client-visible ok commit; holds
    stay escrowed until the decision is re-driven (or the voucher's
    escrow reclaims)."""
    from repro.audit.oracles import harvest_escrows
    from repro.chaos.scenario import CHAOS_CONTRACT
    from repro.client.sharded import CrossShardResult

    checked = 0
    for seed, (spec, run, _results) in byzantine_outcomes.items():
        fault = spec.faults.faults[0]
        if fault.kind != "lying_gateway":
            continue
        checked += 1
        cell = run.deployment.group(fault.group).cells[fault.cell]
        lied = {
            event["xtx"]
            for event in cell.fault.events
            if event["kind"] == "lying_gateway" and event.get("xtx")
        }
        assert lied, "the lying gateway must have had a vote to lie about"
        escrows = harvest_escrows(run.deployment, CHAOS_CONTRACT)
        for xtx in lied:
            pair = escrows.get(xtx, {})
            out, into = pair.get("out"), pair.get("in")
            if out is not None:
                assert out["status"] != "settled", f"seed {seed} xtx {xtx}"
            if into is not None:
                assert into["status"] != "credited", f"seed {seed} xtx {xtx}"
                assert into["status"] != "redeemed", f"seed {seed} xtx {xtx}"
        for result in run.workload.results:
            if isinstance(result, CrossShardResult) and result.xtx in lied:
                assert not (result.ok and result.decision == "commit"), (
                    f"seed {seed}: client saw an undetected half-commit"
                )
    assert checked >= 3, "all three lying modes must have been exercised"


def test_anchored_kinds_fail_audit_and_lying_gateway_does_not(byzantine_outcomes):
    for seed, (spec, _run, results) in byzantine_outcomes.items():
        audit = next(result for result in results if result.oracle == "audit")
        if spec.faults.kinds() & ANCHORED_BYZANTINE_KINDS:
            assert not audit.passed, f"seed {seed}: anchored fault escaped audit"
        else:
            assert audit.passed, f"seed {seed}: {audit.findings}"
