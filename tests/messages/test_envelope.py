"""Signed message envelopes."""

import dataclasses

import pytest

from repro.crypto.keys import PrivateKey
from repro.messages import EcdsaSigner, Envelope, EnvelopeError, NonceFactory, Opcode, SimulatedSigner

SIGNER = EcdsaSigner.from_seed("envelope-signer")
RECIPIENT = PrivateKey.from_seed("envelope-cell").address


def make_envelope(signer=SIGNER, data=None, nonce="0x1234"):
    return Envelope.create(
        signer=signer,
        recipient=RECIPIENT,
        operation=Opcode.TX_SUBMIT,
        data=data or {"contract": "fastmoney", "method": "transfer", "args": {"amount": 1}},
        timestamp=5.0,
        nonce=nonce,
    )


def test_envelope_verifies(deployment=None):
    assert make_envelope().verify()


def test_wire_roundtrip_preserves_verification():
    envelope = make_envelope()
    restored = Envelope.from_wire(envelope.wire_bytes())
    assert restored.verify()
    assert restored.payload == envelope.payload
    assert restored.signature == envelope.signature


def test_tampered_payload_fails_verification():
    envelope = make_envelope()
    tampered = dataclasses.replace(
        envelope, payload=dataclasses.replace(envelope.payload, data={"contract": "evil"})
    )
    assert not tampered.verify()


def test_signature_from_wrong_key_fails():
    other = EcdsaSigner.from_seed("other-signer")
    envelope = make_envelope()
    forged = dataclasses.replace(envelope, signature=other.sign(envelope.payload.canonical_bytes()))
    assert not forged.verify()


def test_simulated_signer_roundtrip():
    signer = SimulatedSigner("sim-client")
    envelope = make_envelope(signer=signer)
    assert envelope.scheme == "sim"
    assert envelope.verify()
    assert Envelope.from_wire(envelope.wire_bytes()).verify()


def test_simulated_signature_rejects_tampering():
    signer = SimulatedSigner("sim-client-2")
    envelope = make_envelope(signer=signer)
    tampered = dataclasses.replace(
        envelope, payload=dataclasses.replace(envelope.payload, data={"x": 1})
    )
    assert not tampered.verify()


def test_signature_must_be_65_bytes():
    envelope = make_envelope()
    with pytest.raises(EnvelopeError):
        dataclasses.replace(envelope, signature=b"\x00" * 10)


def test_from_wire_rejects_garbage():
    with pytest.raises(EnvelopeError):
        Envelope.from_wire({"payload": {"sender": "xx"}, "signature": "0x00"})


def test_nonce_factory_produces_unique_nonces():
    factory = NonceFactory(SIGNER.address)
    nonces = {factory.next() for _ in range(100)}
    assert len(nonces) == 100


def test_byte_size_matches_wire_length():
    envelope = make_envelope()
    assert envelope.byte_size() == len(envelope.wire_bytes())


def test_accessors():
    envelope = make_envelope()
    assert envelope.sender == SIGNER.address
    assert envelope.recipient == RECIPIENT
    assert envelope.operation == Opcode.TX_SUBMIT
    assert envelope.data["contract"] == "fastmoney"
