"""Cross-shard message bodies: round-trips, signatures, certificates."""

import pytest

from repro.messages import SimulatedSigner
from repro.messages.xshard import (
    CrossShardDecision,
    CrossShardError,
    CrossShardPrepare,
    CrossShardVote,
)

PARTICIPANTS = (0, 1)


def make_vote(seed: str, group: int, *, xtx: str = "0x01", phase: str = "prepare",
              ok: bool = True, participants: tuple = PARTICIPANTS) -> CrossShardVote:
    return CrossShardVote.create(SimulatedSigner(seed), xtx, group, participants, phase, ok)


def test_prepare_round_trip_and_validation():
    prepare = CrossShardPrepare(
        xtx="0xabc", group=1, participants=(0, 1), transaction={"payload": {}}
    )
    assert CrossShardPrepare.from_data(prepare.to_data()) == prepare
    with pytest.raises(CrossShardError):
        CrossShardPrepare(xtx="", group=0, participants=(0, 1), transaction={})
    with pytest.raises(CrossShardError):
        CrossShardPrepare(xtx="0x1", group=0, participants=(0,), transaction={})
    with pytest.raises(CrossShardError):
        CrossShardPrepare(xtx="0x1", group=2, participants=(0, 1), transaction={})
    with pytest.raises(CrossShardError):
        CrossShardPrepare.from_data({"xtx": "0x1"})


def test_vote_signature_round_trip():
    vote = make_vote("cell-a", 0)
    assert vote.verify()
    again = CrossShardVote.from_wire(vote.to_wire())
    assert again == vote and again.verify()
    # Any field change breaks the signature — including the participant
    # set, so a vote cannot be replayed into a reshaped transaction.
    tampered = CrossShardVote(
        voter=vote.voter, xtx=vote.xtx, group=vote.group, participants=vote.participants,
        phase=vote.phase, ok=False, signature=vote.signature, scheme=vote.scheme,
    )
    assert not tampered.verify()
    reshaped = CrossShardVote(
        voter=vote.voter, xtx=vote.xtx, group=vote.group, participants=(0, 1, 2),
        phase=vote.phase, ok=vote.ok, signature=vote.signature, scheme=vote.scheme,
    )
    assert not reshaped.verify()
    with pytest.raises(CrossShardError):
        CrossShardVote.create(SimulatedSigner("x"), "0x1", 0, PARTICIPANTS, "decide", True)
    with pytest.raises(CrossShardError):
        CrossShardVote.from_data({"vote": "not-a-dict"})


def test_vote_envelope_data_carries_receipt_and_error():
    vote = make_vote("cell-a", 0)
    data = vote.to_data(receipt={"tx_id": "0x1"}, error=None)
    assert data["receipt"] == {"tx_id": "0x1"}
    assert CrossShardVote.from_data(data) == vote


def test_decision_round_trip():
    votes = (make_vote("cell-a", 0), make_vote("cell-b", 1))
    decision = CrossShardDecision(
        xtx="0x01", decision="commit", group=0, participants=(0, 1),
        transaction={"payload": {}}, votes=votes,
    )
    assert CrossShardDecision.from_data(decision.to_data()) == decision
    with pytest.raises(CrossShardError):
        CrossShardDecision(
            xtx="0x01", decision="maybe", group=0, participants=(0, 1), transaction={}
        )


def test_commit_certificate_verification():
    signer_a, signer_b = SimulatedSigner("gw-a"), SimulatedSigner("gw-b")
    directory = {
        0: frozenset({signer_a.address}),
        1: frozenset({signer_b.address}),
    }
    good = CrossShardDecision(
        xtx="0x01", decision="commit", group=0, participants=(0, 1), transaction={},
        votes=(
            make_vote("gw-a", 0),
            make_vote("gw-b", 1),
        ),
    )
    assert good.certificate_error(directory) is None

    # A missing participant vote fails.
    partial = CrossShardDecision(
        xtx="0x01", decision="commit", group=0, participants=(0, 1), transaction={},
        votes=(make_vote("gw-a", 0),),
    )
    assert "missing prepare votes" in partial.certificate_error(directory)

    # A vote from an unknown signer fails even with a valid signature.
    outsider = CrossShardDecision(
        xtx="0x01", decision="commit", group=0, participants=(0, 1), transaction={},
        votes=(make_vote("gw-a", 0), make_vote("intruder", 1)),
    )
    assert "not from a known gateway" in outsider.certificate_error(directory)

    # Votes for another xtx or the wrong phase do not count.
    wrong_xtx = CrossShardDecision(
        xtx="0x01", decision="commit", group=0, participants=(0, 1), transaction={},
        votes=(make_vote("gw-a", 0), make_vote("gw-b", 1, xtx="0x02")),
    )
    assert "missing prepare votes" in wrong_xtx.certificate_error(directory)

    # A vote cast for a different participant set is rejected outright —
    # a coordinator cannot narrow the transaction after gathering votes.
    reshaped = CrossShardDecision(
        xtx="0x01", decision="commit", group=0, participants=(0, 1), transaction={},
        votes=(
            make_vote("gw-a", 0),
            make_vote("gw-b", 1, participants=(0, 1, 2)),
        ),
    )
    assert "participant set" in reshaped.certificate_error(directory)


def test_abort_certificate_requires_a_genuine_no_vote():
    signer_a, signer_b = SimulatedSigner("gw-a"), SimulatedSigner("gw-b")
    directory = {
        0: frozenset({signer_a.address}),
        1: frozenset({signer_b.address}),
    }
    # An abort without evidence is refused: with all-yes votes only a
    # commit is provable, so decisions are mutually exclusive.
    unbacked = CrossShardDecision(
        xtx="0x01", decision="abort", group=0, participants=(0, 1), transaction={},
        votes=(make_vote("gw-a", 0), make_vote("gw-b", 1)),
    )
    assert "no verified no-vote" in unbacked.certificate_error(directory)
    empty = CrossShardDecision(
        xtx="0x01", decision="abort", group=0, participants=(0, 1), transaction={}
    )
    assert "no verified no-vote" in empty.certificate_error(directory)
    # A genuine no vote from a known gateway is sufficient evidence.
    backed = CrossShardDecision(
        xtx="0x01", decision="abort", group=0, participants=(0, 1), transaction={},
        votes=(make_vote("gw-b", 1, ok=False),),
    )
    assert backed.certificate_error(directory) is None
    # …but not if it was signed by an outsider.
    forged = CrossShardDecision(
        xtx="0x01", decision="abort", group=0, participants=(0, 1), transaction={},
        votes=(make_vote("intruder", 1, ok=False),),
    )
    assert "not from a known gateway" in forged.certificate_error(directory)
