"""Batch envelope codec: sign/verify round trips and malformed input."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.messages import BatchError, Envelope, ForwardBatch, Opcode
from repro.messages.signer import EcdsaSigner


def make_signer(seed: str) -> EcdsaSigner:
    return EcdsaSigner(PrivateKey.from_seed(seed))


def client_envelope(index: int, recipient) -> Envelope:
    signer = make_signer(f"batch-client-{index}")
    return Envelope.create(
        signer=signer,
        recipient=recipient,
        operation=Opcode.TX_SUBMIT,
        data={"contract": "fastmoney", "method": "faucet", "args": {"amount": index + 1}},
        timestamp=float(index),
        nonce=f"0x{index:024x}",
    )


@pytest.fixture
def cell_signer():
    return make_signer("batch-cell")


def test_forward_batch_round_trip_preserves_client_signatures(cell_signer):
    recipient = make_signer("batch-peer").address
    originals = [client_envelope(i, recipient) for i in range(4)]
    batch = ForwardBatch.of(originals)

    outer = Envelope.create(
        signer=cell_signer,
        recipient=recipient,
        operation=Opcode.TX_FORWARD_BATCH,
        data=batch.to_data(),
        timestamp=10.0,
        nonce="0x" + "ab" * 12,
    )
    # Full wire round trip of the outer envelope.
    parsed_outer = Envelope.from_wire(outer.wire_bytes())
    assert parsed_outer.verify()
    assert parsed_outer.operation == Opcode.TX_FORWARD_BATCH

    parsed_batch = ForwardBatch.from_data(parsed_outer.data)
    assert len(parsed_batch) == 4
    inner = parsed_batch.envelopes()
    for original, round_tripped in zip(originals, inner):
        assert round_tripped.verify()
        assert round_tripped.payload.hash_hex() == original.payload.hash_hex()
        assert round_tripped.data == original.data


def test_tampered_outer_batch_fails_verification(cell_signer):
    recipient = make_signer("batch-peer").address
    batch = ForwardBatch.of([client_envelope(0, recipient)])
    outer = Envelope.create(
        signer=cell_signer,
        recipient=recipient,
        operation=Opcode.TX_FORWARD_BATCH,
        data=batch.to_data(),
        timestamp=1.0,
        nonce="0x" + "cd" * 12,
    )
    wire = outer.to_wire()
    wire["payload"]["data"]["transactions"].append(
        client_envelope(9, recipient).to_wire()
    )
    assert not Envelope.from_wire(wire).verify()


def test_empty_and_malformed_batches_rejected():
    with pytest.raises(BatchError):
        ForwardBatch(transactions=())
    with pytest.raises(BatchError):
        ForwardBatch.from_data({})
    with pytest.raises(BatchError):
        ForwardBatch.from_data({"transactions": []})
    with pytest.raises(BatchError):
        ForwardBatch.from_data({"transactions": ["not a wire object"]})
    with pytest.raises(BatchError):
        ForwardBatch.from_data({"transactions": [{"payload": "garbage"}]}).envelopes()


def test_inner_envelope_with_bad_signature_hex_raises_batch_error(cell_signer):
    recipient = make_signer("batch-peer").address
    wire = client_envelope(0, recipient).to_wire()
    wire["signature"] = "0xzz"  # not hex: must surface as BatchError, not ValueError
    with pytest.raises(BatchError):
        ForwardBatch.from_data({"transactions": [wire]}).envelopes()
    wire["signature"] = 1234  # not even a string
    with pytest.raises(BatchError):
        ForwardBatch.from_data({"transactions": [wire]}).envelopes()
