"""The payload tuple P = <As, Ar, O, eta, tau, t, D>."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.messages.opcodes import Opcode
from repro.messages.payload import Payload, PayloadError

ALICE = PrivateKey.from_seed("payload-alice").address
CELL = PrivateKey.from_seed("payload-cell").address


def make_payload(**overrides):
    fields = dict(
        sender=ALICE,
        recipient=CELL,
        operation=Opcode.TX_SUBMIT,
        nonce="0xabc123",
        timestamp=12.345678901,
        data={"contract": "fastmoney", "method": "transfer", "args": {"amount": 5}},
    )
    fields.update(overrides)
    return Payload(**fields)


def test_canonical_bytes_are_deterministic():
    assert make_payload().canonical_bytes() == make_payload().canonical_bytes()


def test_hash_changes_with_data():
    assert make_payload().hash() != make_payload(data={"contract": "ballot"}).hash()
    assert make_payload().hash_hex().startswith("0x")


def test_timestamp_quantized_to_wire_precision():
    payload = make_payload(timestamp=1.23456789)
    assert payload.timestamp == pytest.approx(1.234568)
    roundtripped = Payload.from_dict(payload.to_dict())
    assert roundtripped.timestamp == payload.timestamp
    assert roundtripped.canonical_bytes() == payload.canonical_bytes()


def test_dict_roundtrip_preserves_hash():
    payload = make_payload(reply_to="0xdef")
    assert Payload.from_dict(payload.to_dict()).hash() == payload.hash()


def test_validation_errors():
    with pytest.raises(PayloadError):
        make_payload(sender="not-an-address")
    with pytest.raises(PayloadError):
        make_payload(operation="tx_submit")
    with pytest.raises(PayloadError):
        make_payload(nonce="")
    with pytest.raises(PayloadError):
        make_payload(data=[1, 2, 3])


def test_from_dict_rejects_missing_fields():
    with pytest.raises(PayloadError):
        Payload.from_dict({"sender": ALICE.hex()})


def test_byte_size_reports_canonical_length():
    payload = make_payload()
    assert payload.byte_size() == len(payload.canonical_bytes())
