"""Equivocation-evidence and partition-event marshalling and forgery rules."""

import pytest

from repro.core.receipts import Confirmation
from repro.crypto import PrivateKey
from repro.messages import (
    EcdsaSigner,
    EquivocationEvidence,
    EvidenceError,
    PartitionEvent,
    SimulatedSigner,
)


@pytest.fixture
def equivocator():
    return EcdsaSigner(PrivateKey.from_seed("evidence-equivocator"))


@pytest.fixture
def observer():
    return EcdsaSigner(PrivateKey.from_seed("evidence-observer"))


def _confirmation(signer, fingerprint, tx_id="tx-1", status="executed"):
    return Confirmation.create(
        signer, tx_id=tx_id, contract="fastmoney", fingerprint_hex=fingerprint,
        status=status, timestamp=12.5,
    )


# ----------------------------------------------------------------------
# EquivocationEvidence
# ----------------------------------------------------------------------
def test_equivocation_evidence_round_trip(equivocator):
    evidence = EquivocationEvidence(
        first=_confirmation(equivocator, "0x" + "aa" * 32),
        second=_confirmation(equivocator, "0x" + "bb" * 32),
    )
    assert evidence.verify()
    rebuilt = EquivocationEvidence.from_data(evidence.to_data())
    assert rebuilt == evidence
    assert rebuilt.verify()
    assert rebuilt.cell() == equivocator.address


def test_equivocation_evidence_with_simulated_scheme():
    signer = SimulatedSigner("sim-equivocator")
    evidence = EquivocationEvidence(
        first=_confirmation(signer, "0x" + "aa" * 32),
        second=_confirmation(signer, "0x" + "bb" * 32),
    )
    assert evidence.verify()
    assert EquivocationEvidence.from_data(evidence.to_data()).verify()


def test_matching_confirmations_prove_nothing(equivocator):
    """Two honest (identical) confirmations are not an equivocation."""
    evidence = EquivocationEvidence(
        first=_confirmation(equivocator, "0x" + "aa" * 32),
        second=_confirmation(equivocator, "0x" + "aa" * 32),
    )
    assert not evidence.verify()


def test_different_transactions_prove_nothing(equivocator):
    """Divergent fingerprints of *different* transactions are normal."""
    evidence = EquivocationEvidence(
        first=_confirmation(equivocator, "0x" + "aa" * 32, tx_id="tx-1"),
        second=_confirmation(equivocator, "0x" + "bb" * 32, tx_id="tx-2"),
    )
    assert not evidence.verify()


def test_different_cells_prove_nothing(equivocator, observer):
    """Two cells legitimately disagreeing is the auditor's business, not
    an equivocation by either."""
    evidence = EquivocationEvidence(
        first=_confirmation(equivocator, "0x" + "aa" * 32),
        second=_confirmation(observer, "0x" + "bb" * 32),
    )
    assert not evidence.verify()


def test_forged_confirmation_invalidates_evidence(equivocator):
    """An accuser must not be able to *fabricate* the contradicting half
    by editing a real confirmation's fingerprint after signing."""
    honest = _confirmation(equivocator, "0x" + "aa" * 32)
    forged_wire = _confirmation(equivocator, "0x" + "aa" * 32).to_wire()
    forged_wire["fingerprint"] = "0x" + "bb" * 32  # edit after signing
    evidence = EquivocationEvidence.from_data(
        {"first": honest.to_wire(), "second": forged_wire}
    )
    assert not evidence.verify()


def test_status_equivocation_counts(equivocator):
    """Same fingerprint but contradictory status is still equivocation
    (executed-to-one-peer, rejected-to-another)."""
    evidence = EquivocationEvidence(
        first=_confirmation(equivocator, "0x" + "aa" * 32, status="executed"),
        second=_confirmation(equivocator, "0x" + "aa" * 32, status="rejected"),
    )
    assert evidence.verify()


def test_equivocation_evidence_rejects_garbage():
    with pytest.raises(EvidenceError):
        EquivocationEvidence.from_data({"first": {"cell": "zz"}, "second": {}})
    with pytest.raises(EvidenceError):
        EquivocationEvidence.from_data({})


# ----------------------------------------------------------------------
# PartitionEvent
# ----------------------------------------------------------------------
def test_partition_event_signature_round_trip(observer):
    event = PartitionEvent.create(
        observer, members=("cell-1-2", "cell-1-3"), action="cut", at=7.25
    )
    assert event.verify()
    rebuilt = PartitionEvent.from_wire(event.to_wire())
    assert rebuilt == event
    assert rebuilt.verify()
    assert rebuilt.members == ("cell-1-2", "cell-1-3")


def test_partition_event_tamper_detected(observer):
    """Neither the member set nor the action survives post-sign edits."""
    event = PartitionEvent.create(
        observer, members=("cell-1-2",), action="cut", at=7.25
    )
    wire = event.to_wire()
    wire["members"] = ["cell-0-0"]  # accuse a different cell
    assert not PartitionEvent.from_wire(wire).verify()
    wire = event.to_wire()
    wire["action"] = "heal"  # claim the cut resolved
    assert not PartitionEvent.from_wire(wire).verify()


def test_partition_event_healed_at_is_signed(observer):
    """The healing time feeds window-length accounting; an observer's
    signed value must not be movable by a relayer."""
    event = PartitionEvent.create(
        observer, members=("cell-1-2",), action="heal", at=13.0, healed_at=12.75
    )
    wire = event.to_wire()
    wire["healed_at"] = 40.0  # stretch the outage window
    assert not PartitionEvent.from_wire(wire).verify()


def test_partition_event_without_healed_at_stays_verifiable(observer):
    """Pre-extension events (no healed_at on the wire) still verify, as
    the unknown sentinel -1.0."""
    event = PartitionEvent.create(
        observer, members=("cell-1-2",), action="cut", at=7.25
    )
    wire = event.to_wire()
    assert wire["healed_at"] == -1.0
    del wire["healed_at"]
    rebuilt = PartitionEvent.from_wire(wire)
    assert rebuilt.healed_at == -1.0
    assert rebuilt.verify()


def test_partition_event_validation(observer):
    with pytest.raises(EvidenceError):
        PartitionEvent.create(observer, members=(), action="cut", at=1.0)
    with pytest.raises(EvidenceError):
        PartitionEvent.create(observer, members=("x",), action="split", at=1.0)
    with pytest.raises(EvidenceError):
        PartitionEvent.from_wire({"observer": "not-hex", "members": ["x"]})
