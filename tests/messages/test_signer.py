"""Signature schemes and opcode classification."""

from repro.messages.opcodes import AUDITOR_OPCODES, CELL_OPCODES, CLIENT_OPCODES, Opcode
from repro.messages.signer import EcdsaSigner, SimulatedSigner, verify_signature


def test_ecdsa_signer_sign_and_verify():
    signer = EcdsaSigner.from_seed("scheme-test")
    signature = signer.sign(b"message")
    assert len(signature) == 65
    assert verify_signature("ecdsa", signer.address, b"message", signature)
    assert not verify_signature("ecdsa", signer.address, b"other", signature)


def test_ecdsa_wrong_address_rejected():
    signer = EcdsaSigner.from_seed("scheme-a")
    other = EcdsaSigner.from_seed("scheme-b")
    signature = signer.sign(b"m")
    assert not verify_signature("ecdsa", other.address, b"m", signature)


def test_simulated_signer_is_deterministic():
    a = SimulatedSigner("same-seed")
    b = SimulatedSigner("same-seed")
    assert a.address == b.address
    assert a.sign(b"x") == b.sign(b"x")


def test_simulated_signer_verification():
    signer = SimulatedSigner("fast")
    signature = signer.sign(b"payload")
    assert len(signature) == 65
    assert verify_signature("sim", signer.address, b"payload", signature)
    assert not verify_signature("sim", signer.address, b"tampered", signature)


def test_unknown_scheme_rejected():
    signer = SimulatedSigner("x")
    assert not verify_signature("bogus", signer.address, b"m", signer.sign(b"m"))


def test_unregistered_sim_address_rejected():
    signer = EcdsaSigner.from_seed("never-registered-as-sim")
    assert not verify_signature("sim", signer.address, b"m", b"\x00" * 65)


def test_garbage_ecdsa_signature_rejected():
    signer = EcdsaSigner.from_seed("garbage")
    assert not verify_signature("ecdsa", signer.address, b"m", b"\xff" * 65)


def test_opcode_categories_are_disjoint_enough():
    assert Opcode.TX_SUBMIT in CLIENT_OPCODES
    assert Opcode.TX_FORWARD in CELL_OPCODES
    assert Opcode.SNAPSHOT_REQUEST in AUDITOR_OPCODES
    assert Opcode.TX_FORWARD not in CLIENT_OPCODES
    assert str(Opcode.TX_SUBMIT) == "tx_submit"
