"""Membership/resync message marshalling and signed-evidence rules."""

import pytest

from repro.crypto import PrivateKey
from repro.messages import (
    EcdsaSigner,
    ExclusionProposal,
    ExclusionVote,
    MembershipError,
    MembershipUpdate,
    RejoinAck,
    RejoinRequest,
    SimulatedSigner,
    SyncRequest,
    SyncState,
)


@pytest.fixture
def signer():
    return EcdsaSigner(PrivateKey.from_seed("membership-voter"))


@pytest.fixture
def other_signer():
    return EcdsaSigner(PrivateKey.from_seed("membership-suspect"))


def test_exclusion_proposal_round_trip(other_signer):
    proposal = ExclusionProposal(suspect=other_signer.address, cycle=4, reason="missed deadlines")
    rebuilt = ExclusionProposal.from_data(proposal.to_data())
    assert rebuilt == proposal


def test_exclusion_proposal_rejects_garbage():
    with pytest.raises(MembershipError):
        ExclusionProposal.from_data({"suspect": "not-hex", "cycle": 1})
    with pytest.raises(MembershipError):
        ExclusionProposal.from_data({"cycle": 1})


def test_exclusion_vote_signature_round_trip(signer, other_signer):
    vote = ExclusionVote.create(signer, suspect=other_signer.address, cycle=2, agree=True)
    assert vote.verify()
    rebuilt = ExclusionVote.from_data(vote.to_data())
    assert rebuilt.verify()
    assert rebuilt.voter == signer.address
    assert rebuilt.suspect == other_signer.address
    assert rebuilt.agree is True


def test_exclusion_vote_tamper_detected(signer, other_signer):
    vote = ExclusionVote.create(signer, suspect=other_signer.address, cycle=2, agree=False)
    wire = vote.to_wire()
    wire["agree"] = True  # flip the verdict, keep the signature
    assert not ExclusionVote.from_wire(wire).verify()


def test_rejoin_ack_signature_round_trip(signer, other_signer):
    ack = RejoinAck.create(
        signer,
        rejoiner=other_signer.address,
        cycle=3,
        fingerprint_hex="0x" + "ab" * 32,
        agree=True,
        admitted_head=17,
    )
    assert ack.verify()
    rebuilt = RejoinAck.from_data(ack.to_data())
    assert rebuilt.verify() and rebuilt.agree
    assert rebuilt.admitted_head == 17


def test_rejoin_ack_admitted_head_is_signed(signer, other_signer):
    """The backfill decision rides on admitted_head; a peer (or a relayer)
    must not be able to understate it after signing."""
    ack = RejoinAck.create(
        signer,
        rejoiner=other_signer.address,
        cycle=3,
        fingerprint_hex="0x" + "ab" * 32,
        agree=True,
        admitted_head=17,
    )
    wire = ack.to_wire()
    wire["admitted_head"] = 3  # pretend nothing was admitted in flight
    assert not RejoinAck.from_wire(wire).verify()


def test_rejoin_ack_without_admitted_head_stays_verifiable(signer, other_signer):
    """Pre-extension acks (no admitted_head on the wire) still verify, as
    the unknown-head sentinel -1."""
    ack = RejoinAck.create(
        signer,
        rejoiner=other_signer.address,
        cycle=3,
        fingerprint_hex="0x" + "ab" * 32,
        agree=True,
    )
    wire = ack.to_wire()
    assert wire["admitted_head"] == -1
    del wire["admitted_head"]
    rebuilt = RejoinAck.from_wire(wire)
    assert rebuilt.admitted_head == -1
    assert rebuilt.verify()


def test_rejoin_request_round_trip(other_signer):
    request = RejoinRequest(
        cell=other_signer.address,
        cycle=8,
        basis_cycle=7,
        last_sequence=41,
        fingerprint_hex="0x" + "cd" * 32,
    )
    assert RejoinRequest.from_data(request.to_data()) == request


def test_membership_update_requires_matching_evidence():
    with pytest.raises(MembershipError):
        MembershipUpdate(
            action="exclude", subject=PrivateKey.from_seed("x").address, cycle=0
        )
    with pytest.raises(MembershipError):
        MembershipUpdate(
            action="readmit", subject=PrivateKey.from_seed("x").address, cycle=0
        )
    with pytest.raises(MembershipError):
        MembershipUpdate.from_data(
            {"action": "promote", "subject": "0x" + "00" * 20, "cycle": 0}
        )


def test_verified_supporters_counts_only_valid_agreeing_votes(signer, other_signer):
    suspect = PrivateKey.from_seed("dead-cell").address
    agreeing = ExclusionVote.create(signer, suspect=suspect, cycle=1, agree=True)
    dissenting = ExclusionVote.create(other_signer, suspect=suspect, cycle=1, agree=False)
    forged_wire = ExclusionVote.create(other_signer, suspect=suspect, cycle=1, agree=False).to_wire()
    forged_wire["agree"] = True
    update = MembershipUpdate.from_data(
        {
            "action": "exclude",
            "subject": suspect.hex(),
            "cycle": 1,
            "votes": [agreeing.to_wire(), dissenting.to_wire(), forged_wire],
            "acks": [],
        }
    )
    assert update.verified_supporters() == {signer.address}


def test_verified_supporters_with_simulated_scheme():
    voter = SimulatedSigner("sim-voter")
    rejoiner = SimulatedSigner("sim-rejoiner")
    ack = RejoinAck.create(
        voter, rejoiner=rejoiner.address, cycle=0, fingerprint_hex="0x" + "00" * 32, agree=True
    )
    update = MembershipUpdate(
        action="readmit", subject=rejoiner.address, cycle=0, acks=(ack,)
    )
    assert update.verified_supporters() == {voter.address}


def test_sync_request_validation():
    assert SyncRequest.from_data({"since_sequence": 9}).since_sequence == 9
    # Pre-extension requests carry no delta_only flag: full sync.
    assert SyncRequest.from_data({"since_sequence": 9}).delta_only is False
    request = SyncRequest(since_sequence=4, delta_only=True)
    assert SyncRequest.from_data(request.to_data()) == request
    with pytest.raises(MembershipError):
        SyncRequest.from_data({"since_sequence": -1})
    with pytest.raises(MembershipError):
        SyncRequest.from_data({})


def test_sync_state_round_trip(signer):
    bundle = SyncState(
        donor=signer.address,
        snapshot={"cycle": 0, "fingerprint": "0x" + "00" * 32},
        entries=({"summary": {"sequence": 0}, "envelope": {}, "result": None},),
        head=12,
    )
    rebuilt = SyncState.from_data(bundle.to_data())
    assert rebuilt.donor == signer.address
    assert rebuilt.snapshot["cycle"] == 0
    assert len(rebuilt.entries) == 1
    assert rebuilt.head == 12
    # Pre-extension bundles carry no head: the unknown sentinel.
    legacy = {"donor": signer.address.hex(), "snapshot": None, "entries": []}
    assert SyncState.from_data(legacy).head == -1
    with pytest.raises(MembershipError):
        SyncState.from_data({"donor": signer.address.hex(), "snapshot": "nope", "entries": []})
    with pytest.raises(MembershipError):
        SyncState.from_data({"donor": signer.address.hex(), "snapshot": None, "entries": "x"})
