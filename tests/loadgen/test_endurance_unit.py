"""Endurance harness units: plan validation, run-ids, outcome taxonomy.

The endurance *benchmark* (benchmarks/test_endurance.py) proves the
sustained-load story end to end; these tests pin the harness's building
blocks at unit scale — every plan-validation branch, run-id sensitivity,
the shed/revert/unanswered classification (including the cross-shard
OVERLOADED-prepare case), minute-series bucketing, and a short
deterministic run with both oracles.
"""

import pytest

from repro.client.client import TransactionResult
from repro.client.sharded import CrossShardResult, PhaseOutcome
from repro.client.workload import WorkloadError
from repro.core.cell import OVERLOADED_ERROR
from repro.loadgen import (
    EndurancePlan,
    EnduranceReport,
    collect_endurance_artifacts,
    endurance_differential,
    endurance_run_id,
    run_endurance,
    run_endurance_conservation,
)
from repro.loadgen.endurance import _Arrival
from tests.conftest import make_sharded_deployment


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------
def test_default_plan_validates():
    EndurancePlan().validate(make_sharded_deployment(1))


def test_every_plan_validation_branch_raises():
    deployment = make_sharded_deployment(1)
    bad_plans = [
        (dict(process="bursty"), "unknown arrival process"),
        (dict(users=1), "users"),
        (dict(users=2.5), "users"),
        (dict(rate=0.0), "rate"),
        (dict(process="diurnal", peak_rate=None), "peak_rate"),
        (dict(process="diurnal", rate=5.0, peak_rate=2.0), "peak_rate"),
        (dict(horizon=0.0), "positive"),
        (dict(bucket_seconds=0.0), "positive"),
        (dict(horizon=30.0, bucket_seconds=60.0), "at least one bucket"),
        (dict(cross_shard_rate=1.5), "cross_shard_rate"),
        (dict(cross_shard_rate=-0.1), "cross_shard_rate"),
        (dict(cross_shard_rate=0.5), "at least two shards"),
        (dict(pools=0), "client pool"),
        (dict(amount=0), "amount"),
        (dict(drain=-1.0), "drain"),
    ]
    for overrides, match in bad_plans:
        with pytest.raises(WorkloadError, match=match):
            EndurancePlan(**overrides).validate(deployment)
    # The cross-shard plan that the single-shard deployment rejected is
    # fine once there are two groups to cross between.
    EndurancePlan(cross_shard_rate=0.5).validate(make_sharded_deployment(2))


def test_plan_round_trips_to_json_native_data():
    plan = EndurancePlan(process="diurnal", rate=2.0, peak_rate=8.0)
    data = plan.to_data()
    assert data["process"] == "diurnal" and data["peak_rate"] == 8.0
    assert EndurancePlan(**data) == plan


# ----------------------------------------------------------------------
# Run identifiers
# ----------------------------------------------------------------------
def test_run_id_is_stable_for_the_same_plan_and_config():
    plan = EndurancePlan()
    assert endurance_run_id(plan, make_sharded_deployment(1)) == endurance_run_id(
        plan, make_sharded_deployment(1)
    )


def test_run_id_is_sensitive_to_plan_and_deployment_knobs():
    base = endurance_run_id(EndurancePlan(), make_sharded_deployment(1))
    ids = {
        base,
        endurance_run_id(EndurancePlan(rate=5.0), make_sharded_deployment(1)),
        endurance_run_id(EndurancePlan(), make_sharded_deployment(1, seed=43)),
        endurance_run_id(EndurancePlan(), make_sharded_deployment(1, max_inflight=8)),
        endurance_run_id(EndurancePlan(), make_sharded_deployment(2)),
    }
    assert len(ids) == 5
    assert all(run_id.startswith("endure-") for run_id in ids)


# ----------------------------------------------------------------------
# Outcome classification
# ----------------------------------------------------------------------
def _tx(ok: bool, error: str | None = None) -> TransactionResult:
    return TransactionResult(ok=ok, submitted_at=0.0, completed_at=1.0, error=error)


def test_outcome_taxonomy_for_plain_transactions():
    classify = EnduranceReport.outcome_of
    assert classify(None) == "unanswered"
    assert classify(_tx(True)) == "ok"
    assert classify(_tx(False, OVERLOADED_ERROR)) == "shed"
    assert classify(_tx(False, "FastMoney: insufficient funds (0 < 1)")) == "reverted"


def test_outcome_taxonomy_for_cross_shard_transactions():
    classify = EnduranceReport.outcome_of

    def cross(prepare_errors):
        return CrossShardResult(
            ok=False, xtx="xtx-1", decision="abort", submitted_at=0.0,
            completed_at=1.0,
            prepare={
                group: PhaseOutcome(ok=error is None, error=error)
                for group, error in enumerate(prepare_errors)
            },
            error="prepare votes were lost before any decision was provable",
        )

    # A shed prepare surfaces the admission refusal, even though the
    # coordinator's own top-level error only reports the missing vote.
    assert classify(cross([OVERLOADED_ERROR, None])) == "shed"
    assert classify(cross([None, "FastMoney: insufficient funds (0 < 1)"])) == "reverted"
    ok = CrossShardResult(
        ok=True, xtx="xtx-2", decision="commit", submitted_at=0.0, completed_at=1.0
    )
    assert classify(ok) == "ok"


# ----------------------------------------------------------------------
# Minute-series bucketing
# ----------------------------------------------------------------------
def test_minute_series_buckets_by_submission_time():
    plan = EndurancePlan(horizon=120.0, bucket_seconds=60.0)
    report = EnduranceReport(label="unit", run_id="endure-unit", plan=plan,
                             started_at=0.0)
    report.schedule = [
        _Arrival(at=10.0, user=0, home=0),
        _Arrival(at=30.0, user=1, home=0),
        _Arrival(at=70.0, user=2, home=0),
        _Arrival(at=119.9, user=3, home=0),
    ]
    report.results = [
        TransactionResult(ok=True, submitted_at=10.0, completed_at=10.5),
        TransactionResult(ok=False, submitted_at=30.0, completed_at=30.1,
                          error=OVERLOADED_ERROR),
        # Completes in the *next* bucket but counts where it was submitted.
        TransactionResult(ok=True, submitted_at=70.0, completed_at=130.0),
        None,
    ]
    report.queue_samples = [
        {"minute": 0.0, "time": 60.0, "inflight": 3.0},
        {"minute": 1.0, "time": 120.0, "inflight": 1.0},
    ]

    series = report.minute_series()
    assert [row["minute"] for row in series] == [0, 1]
    assert series[0]["submitted"] == 2 and series[1]["submitted"] == 2
    assert series[0]["ok"] == 1 and series[0]["shed"] == 1
    assert series[1]["ok"] == 1 and series[1]["unanswered"] == 1
    assert series[0]["tps"] == pytest.approx(1 / 60.0, abs=1e-4)
    assert series[0]["p50"] == pytest.approx(0.5)
    assert series[1]["p50"] == pytest.approx(60.0)
    assert series[0]["queue_depth"] == 3 and series[1]["queue_depth"] == 1

    totals = report.totals()
    assert totals == {"arrivals": 4, "ok": 2, "shed": 1, "reverted": 0,
                      "unanswered": 1}
    assert report.peak_queue_depth() == 3


# ----------------------------------------------------------------------
# Short end-to-end runs (sim signatures: the unit tests exercise the
# harness plumbing, not the crypto; the endurance benchmark runs the
# full-size configuration)
# ----------------------------------------------------------------------
def test_short_endurance_run_commits_everything_and_replays_bit_identically():
    plan = EndurancePlan(users=40, rate=1.0, horizon=60.0, bucket_seconds=30.0,
                         pools=2, drain=30.0)
    deployment = make_sharded_deployment(1, signature_scheme="sim")
    report = run_endurance(deployment, plan)

    totals = report.totals()
    assert totals["arrivals"] == len(report.schedule) > 0
    assert totals["ok"] == totals["arrivals"], "under-capacity load must all commit"
    assert sum(row["submitted"] for row in report.minute_series()) == totals["arrivals"]
    assert report.run_id == endurance_run_id(plan, deployment)

    conservation = run_endurance_conservation(deployment, report)
    assert conservation.passed, conservation.findings
    assert endurance_differential(deployment, report) == []

    replay_deployment = make_sharded_deployment(1, signature_scheme="sim")
    replay = run_endurance(replay_deployment, plan)
    assert collect_endurance_artifacts(deployment, report) == (
        collect_endurance_artifacts(replay_deployment, replay)
    )


def test_cross_shard_endurance_run_settles_and_conserves():
    plan = EndurancePlan(users=40, rate=1.0, horizon=60.0, bucket_seconds=30.0,
                         cross_shard_rate=0.5, pools=2, drain=60.0)
    deployment = make_sharded_deployment(2, signature_scheme="sim")
    report = run_endurance(deployment, plan)

    assert any(arrival.cross for arrival in report.schedule)
    assert any(not arrival.cross for arrival in report.schedule)
    totals = report.totals()
    assert totals["ok"] == totals["arrivals"] > 0
    conservation = run_endurance_conservation(deployment, report)
    assert conservation.passed, conservation.findings


def test_plan_that_produces_no_arrivals_raises():
    plan = EndurancePlan(users=10, rate=1e-9, horizon=60.0, bucket_seconds=60.0)
    with pytest.raises(WorkloadError, match="no arrivals"):
        run_endurance(make_sharded_deployment(1), plan)
