"""Open-loop arrival processes: determinism, validation, and shape."""

import random

import pytest

from repro.loadgen import (
    ArrivalError,
    diurnal_arrivals,
    diurnal_rate,
    poisson_arrivals,
)


def test_poisson_is_a_pure_function_of_the_rng_seed():
    first = poisson_arrivals(random.Random(7), rate=5.0, horizon=200.0)
    second = poisson_arrivals(random.Random(7), rate=5.0, horizon=200.0)
    other = poisson_arrivals(random.Random(8), rate=5.0, horizon=200.0)
    assert first == second
    assert first != other


def test_poisson_times_are_sorted_and_inside_the_window():
    start = 100.0
    times = poisson_arrivals(random.Random(1), rate=3.0, horizon=50.0, start=start)
    assert times == sorted(times)
    assert all(start <= at < start + 50.0 for at in times)


def test_poisson_mean_rate_matches_the_intensity():
    times = poisson_arrivals(random.Random(42), rate=5.0, horizon=2_000.0)
    assert len(times) == pytest.approx(5.0 * 2_000.0, rel=0.05)


def test_poisson_parameter_validation():
    rng = random.Random(0)
    for bad_rate in (0.0, -1.0, float("nan"), float("inf"), "fast", None):
        with pytest.raises(ArrivalError):
            poisson_arrivals(rng, rate=bad_rate, horizon=10.0)
    for bad_horizon in (0.0, -5.0, float("inf")):
        with pytest.raises(ArrivalError):
            poisson_arrivals(rng, rate=1.0, horizon=bad_horizon)


def test_diurnal_rate_traces_the_raised_cosine():
    period = 86_400.0
    assert diurnal_rate(0.0, 2.0, 8.0, period) == pytest.approx(2.0)
    assert diurnal_rate(period / 2, 2.0, 8.0, period) == pytest.approx(8.0)
    assert diurnal_rate(period, 2.0, 8.0, period) == pytest.approx(2.0)
    # Symmetric around midday, and never outside [base, peak].
    assert diurnal_rate(period / 4, 2.0, 8.0, period) == pytest.approx(
        diurnal_rate(3 * period / 4, 2.0, 8.0, period)
    )
    for elapsed in range(0, int(period), 3_600):
        assert 2.0 <= diurnal_rate(float(elapsed), 2.0, 8.0, period) <= 8.0


def test_diurnal_arrivals_concentrate_at_midday():
    horizon = 3_000.0
    times = diurnal_arrivals(
        random.Random(9), base_rate=1.0, peak_rate=10.0, horizon=horizon, period=horizon
    )
    assert times == sorted(times)
    third = horizon / 3
    night = sum(1 for at in times if at < third or at >= 2 * third)
    midday = sum(1 for at in times if third <= at < 2 * third)
    # The midday third sees the peak of the intensity profile; each night
    # third sits near the base rate.
    assert midday > night / 2


def test_diurnal_arrivals_are_deterministic_per_seed():
    kwargs = dict(base_rate=2.0, peak_rate=6.0, horizon=500.0, period=500.0)
    assert diurnal_arrivals(random.Random(3), **kwargs) == diurnal_arrivals(
        random.Random(3), **kwargs
    )


def test_diurnal_parameter_validation():
    rng = random.Random(0)
    with pytest.raises(ArrivalError, match="must not exceed"):
        diurnal_arrivals(rng, base_rate=5.0, peak_rate=2.0, horizon=10.0)
    with pytest.raises(ArrivalError):
        diurnal_arrivals(rng, base_rate=1.0, peak_rate=2.0, horizon=10.0, period=0.0)
    with pytest.raises(ArrivalError):
        diurnal_arrivals(rng, base_rate=0.0, peak_rate=2.0, horizon=10.0)
