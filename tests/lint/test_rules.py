"""Per-rule fixture goldens for :mod:`repro.lint`.

Each rule gets three fixtures: a positive (the rule fires), a suppressed
variant (a justified inline comment silences it), and a clean variant (the
sanctioned way to write the same code).  Fixture trees live in a temp
directory literally named ``repro`` because the analyzer derives module
names from the scanned root, which is what makes the package-scoped rules
(guarded packages, ``repro.contracts``, ``repro.core``) apply.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_paths


@pytest.fixture
def tree(tmp_path):
    root = tmp_path / "repro"

    def write(relative: str, source: str) -> Path:
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    write.root = root  # type: ignore[attr-defined]
    return write


def rules_of(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# DET001 — runtime entropy imports in guarded packages
# ----------------------------------------------------------------------
def test_det001_fires_on_runtime_import(tree):
    tree("core/x.py", "import random\n")
    assert rules_of(lint_paths([tree.root])) == ["DET001"]


def test_det001_allows_type_checking_gate(tree):
    tree(
        "core/x.py",
        """
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            import random
        """,
    )
    assert lint_paths([tree.root]) == []


def test_det001_not_applied_outside_guarded_packages(tree):
    tree("sim/x.py", "import random\n")
    assert lint_paths([tree.root]) == []


def test_det001_suppressed_with_reason(tree):
    tree(
        "core/x.py",
        "import random  # lint: disable=DET001 — fixture exercising the suppression path\n",
    )
    assert lint_paths([tree.root]) == []


# ----------------------------------------------------------------------
# DET002 — ambient nondeterminism calls (every package)
# ----------------------------------------------------------------------
def test_det002_fires_even_outside_guarded_packages(tree):
    tree(
        "sim/latencyish.py",
        """
        import random
        import time

        def sample():
            return random.random() + time.time()
        """,
    )
    assert rules_of(lint_paths([tree.root])) == ["DET002", "DET002"]


def test_det002_allows_seeded_random_stream(tree):
    tree(
        "sim/latencyish.py",
        """
        import random

        def stream(seed):
            return random.Random(seed)
        """,
    )
    assert lint_paths([tree.root]) == []


def test_det002_flags_unseeded_random_and_environment(tree):
    tree(
        "client/cfg.py",
        """
        import os
        import random

        def build():
            return random.Random(), os.environ.get("LANES")
        """,
    )
    assert rules_of(lint_paths([tree.root])) == ["DET002", "DET002"]


# ----------------------------------------------------------------------
# DET003 — order-unstable iteration in order-sensitive places
# ----------------------------------------------------------------------
def test_det003_fires_on_set_iteration_in_guarded_package(tree):
    tree(
        "core/y.py",
        """
        def collect(items):
            return [x for x in {1, 2, 3}]
        """,
    )
    assert rules_of(lint_paths([tree.root])) == ["DET003"]


def test_det003_fires_on_dict_views_in_sink_functions_only(tree):
    tree(
        "core/y.py",
        """
        def to_wire(self):
            return [k for k in self.data.items()]

        def helper(self):
            return [k for k in self.data.items()]
        """,
    )
    findings = lint_paths([tree.root])
    assert rules_of(findings) == ["DET003"]
    assert "to_wire" in findings[0].message


def test_det003_clean_when_sorted(tree):
    tree(
        "core/y.py",
        """
        def to_wire(self):
            return [k for k in sorted(self.data.items())]
        """,
    )
    assert lint_paths([tree.root]) == []


def test_det003_suppressed_with_reason(tree):
    tree(
        "core/y.py",
        """
        def fingerprint(self):
            # lint: disable=DET003 — XOR accumulation is order-independent
            return [k for k in self.data.items()]
        """,
    )
    assert lint_paths([tree.root]) == []


# ----------------------------------------------------------------------
# DET004 — salted / address-based identity in guarded packages
# ----------------------------------------------------------------------
def test_det004_fires_on_builtin_hash_and_id(tree):
    tree(
        "messages/z.py",
        """
        def key_of(obj):
            return hash(obj), id(obj)
        """,
    )
    assert rules_of(lint_paths([tree.root])) == ["DET004", "DET004"]


def test_det004_not_applied_outside_guarded_packages(tree):
    tree(
        "baselines/z.py",
        """
        def key_of(obj):
            return hash(obj)
        """,
    )
    assert lint_paths([tree.root]) == []


# ----------------------------------------------------------------------
# PLAN rules — access-plan conformance
# ----------------------------------------------------------------------
PLAN_CONTRACT = """
    from ..state_store import AccessSet


    class Thing:
        def _k(self, a):
            return f"k/{a}"

        @bcontract_method
        def put_it(self, ctx, a):
            self.store.put(self._k(a), 1)
            self.store.increment("count")
            %(extra)s
            return {}

        %(orphan)s

        def access_plan(self, method, args, *, sender, tx_id):
            if method == "put_it":
                return AccessSet(
                    writes=frozenset({self._k(args["a"])}),
                    deltas=frozenset(%(deltas)s),
                )
            return None
"""


def plan_contract(extra="pass", orphan="", deltas='{"count"}'):
    return textwrap.dedent(PLAN_CONTRACT) % {
        "extra": extra,
        "orphan": textwrap.indent(textwrap.dedent(orphan), " " * 4).lstrip(),
        "deltas": deltas,
    }


def test_plan_clean_contract(tree):
    tree("contracts/community/thing.py", plan_contract())
    assert lint_paths([tree.root]) == []


def test_plan001_fires_on_undeclared_mutation(tree):
    tree(
        "contracts/community/thing.py",
        plan_contract(extra='self.store.put("extra", 2)'),
    )
    findings = lint_paths([tree.root])
    assert rules_of(findings) == ["PLAN001"]
    assert "'extra'" in findings[0].message


def test_plan002_fires_on_dead_declaration(tree):
    tree(
        "contracts/community/thing.py",
        plan_contract(deltas='{"count", "dead"}'),
    )
    findings = lint_paths([tree.root])
    assert rules_of(findings) == ["PLAN002"]
    assert "'dead'" in findings[0].message


def test_plan003_fires_on_unplanned_mutating_method(tree):
    orphan = """
    @bcontract_method
    def orphan(self, ctx):
        self.store.put("solo", 1)
        return {}
    """
    tree("contracts/community/thing.py", plan_contract(orphan=orphan))
    findings = lint_paths([tree.root])
    assert rules_of(findings) == ["PLAN003"]
    assert "orphan" in findings[0].message


def test_plan003_suppressed_with_reason(tree):
    orphan = """
    @bcontract_method
    # lint: disable=PLAN003 — whole-store sweep stays exclusive on purpose
    def orphan(self, ctx):
        self.store.put("solo", 1)
        return {}
    """
    tree("contracts/community/thing.py", plan_contract(orphan=orphan))
    assert lint_paths([tree.root]) == []


def test_plan_rules_skip_planless_contracts(tree):
    # A contract with no access_plan at all is outside the PLAN rules
    # (it runs exclusively; nothing was declared to conform to).
    tree(
        "contracts/community/thing.py",
        """
        class Thing:
            @bcontract_method
            def put_it(self, ctx):
                self.store.put("solo", 1)
                return {}
        """,
    )
    assert lint_paths([tree.root]) == []


# ----------------------------------------------------------------------
# PROTO rules — opcode / registry / verify-order wiring
# ----------------------------------------------------------------------
OPCODES = """
    from enum import Enum


    class Opcode(str, Enum):
        TX_SUBMIT = "tx_submit"
        CELL_SYNC = "cell_sync"
"""

REGISTRY = """
    OPCODE_BODIES = {
        Opcode.CELL_SYNC: "repro.messages.bodies:SyncRequest",
    }
"""

BODIES = """
    class SyncRequest:
        pass
"""

DISPATCH = """
    def dispatch(self, envelope):
        if envelope.operation == Opcode.TX_SUBMIT:
            return self._serve_submit(envelope)
        if envelope.operation == Opcode.CELL_SYNC:
            return None
"""


def write_protocol_tree(tree, opcodes=OPCODES, registry=REGISTRY, dispatch=DISPATCH):
    tree("messages/opcodes.py", opcodes)
    tree("messages/registry.py", registry)
    tree("messages/bodies.py", BODIES)
    tree("core/cell.py", dispatch)


def test_proto_clean_wiring(tree):
    write_protocol_tree(tree)
    assert lint_paths([tree.root]) == []


def test_proto001_fires_on_undispatched_opcode(tree):
    write_protocol_tree(
        tree,
        opcodes=OPCODES + '        PING = "ping"\n',
    )
    findings = lint_paths([tree.root])
    assert rules_of(findings) == ["PROTO001"]
    assert "PING" in findings[0].message


def test_proto002_fires_on_unregistered_structured_opcode(tree):
    write_protocol_tree(
        tree,
        opcodes=OPCODES + '        XSHARD_VOTE = "xshard_vote"\n',
        dispatch=DISPATCH + "        if envelope.operation == Opcode.XSHARD_VOTE:\n            return None\n",
    )
    findings = lint_paths([tree.root])
    assert rules_of(findings) == ["PROTO002"]
    assert "XSHARD_VOTE" in findings[0].message


def test_proto002_fires_on_stale_and_dangling_registry_entries(tree):
    write_protocol_tree(
        tree,
        registry="""
        OPCODE_BODIES = {
            Opcode.CELL_SYNC: "repro.messages.bodies:NoSuchClass",
            Opcode.GHOST: "repro.messages.bodies:SyncRequest",
        }
        """,
    )
    findings = lint_paths([tree.root])
    assert sorted(rules_of(findings)) == ["PROTO002", "PROTO002"]
    messages = " / ".join(finding.message for finding in findings)
    assert "NoSuchClass" in messages and "GHOST" in messages


def test_proto003_fires_on_data_before_verify(tree):
    write_protocol_tree(
        tree,
        dispatch=DISPATCH
        + """
        def _serve_submit(self, envelope: Envelope):
            cycle = envelope.data["cycle"]
            if not envelope.verify():
                return None
            return cycle
        """,
    )
    findings = lint_paths([tree.root])
    assert rules_of(findings) == ["PROTO003"]
    assert "_serve_submit" in findings[0].message


def test_proto003_clean_when_verify_comes_first(tree):
    write_protocol_tree(
        tree,
        dispatch=DISPATCH
        + """
        def _serve_submit(self, envelope: Envelope):
            if not envelope.verify():
                return None
            return envelope.data["cycle"]
        """,
    )
    assert lint_paths([tree.root]) == []


def test_proto003_fires_when_handler_never_verifies(tree):
    write_protocol_tree(
        tree,
        dispatch=DISPATCH
        + """
        def handle_thing(self, envelope: Envelope):
            return envelope.payload
        """,
    )
    findings = lint_paths([tree.root])
    assert rules_of(findings) == ["PROTO003"]
    assert "never verifies" in findings[0].message


# ----------------------------------------------------------------------
# LINT001 — suppression hygiene
# ----------------------------------------------------------------------
def test_lint001_fires_on_unjustified_suppression(tree):
    tree("core/x.py", "import random  # lint: disable=DET001\n")
    findings = lint_paths([tree.root])
    # The suppression still silences DET001, but is itself flagged.
    assert rules_of(findings) == ["LINT001"]
