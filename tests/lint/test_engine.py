"""Engine mechanics: baselines, stable keys, CLI exit codes, annotations."""

from __future__ import annotations

import json

import pytest

from repro.lint import LintError, form_github_annotation, lint_paths, load_baseline
from repro.lint.__main__ import main
from repro.lint.engine import split_by_baseline, write_baseline


@pytest.fixture
def dirty_tree(tmp_path):
    root = tmp_path / "repro"
    (root / "core").mkdir(parents=True)
    (root / "core" / "x.py").write_text("import random\n")
    return root


def test_finding_keys_are_line_independent(dirty_tree):
    before = lint_paths([dirty_tree])[0]
    source = dirty_tree / "core" / "x.py"
    source.write_text('"""Docstring pushing the import down."""\n\n\nimport random\n')
    after = lint_paths([dirty_tree])[0]
    assert before.line != after.line
    assert before.key == after.key


def test_baseline_roundtrip_and_split(dirty_tree, tmp_path):
    findings = lint_paths([dirty_tree])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    new, old = split_by_baseline(findings, baseline)
    assert new == [] and old == findings


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_malformed_baseline_is_an_error(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{truncated")
    with pytest.raises(LintError):
        load_baseline(path)
    path.write_text('"a bare string"')
    with pytest.raises(LintError):
        load_baseline(path)


def test_baseline_accepts_list_and_dict_forms(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(["repro.core.x:DET001:import:random"]))
    assert load_baseline(path) == {"repro.core.x:DET001:import:random": ""}
    path.write_text(json.dumps({"findings": {"k": "why"}}))
    assert load_baseline(path) == {"k": "why"}


def test_github_annotation_form(dirty_tree):
    finding = lint_paths([dirty_tree])[0]
    annotation = form_github_annotation(finding)
    assert annotation.startswith("::error file=")
    assert "title=repro.lint DET001" in annotation
    assert "\n" not in annotation


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    root = tmp_path / "repro"
    (root / "core").mkdir(parents=True)
    (root / "core" / "x.py").write_text("VALUE = 1\n")
    assert main([str(root), "--baseline", str(tmp_path / "none.json")]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_new_findings_exit_one_with_github_annotations(dirty_tree, tmp_path, capsys):
    code = main(
        [str(dirty_tree), "--baseline", str(tmp_path / "none.json"), "--github"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "::error file=" in out


def test_cli_baselined_findings_exit_zero(dirty_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([str(dirty_tree), "--baseline", str(baseline), "--write-baseline"]) == 1
    assert main([str(dirty_tree), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_usage_error_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "missing-dir")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_malformed_baseline_exits_two(dirty_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{oops")
    assert main([str(dirty_tree), "--baseline", str(baseline)]) == 2
    assert "malformed" in capsys.readouterr().err


def test_cli_no_baseline_flag_ignores_baseline(dirty_tree, tmp_path):
    baseline = tmp_path / "baseline.json"
    main([str(dirty_tree), "--baseline", str(baseline), "--write-baseline"])
    assert main([str(dirty_tree), "--baseline", str(baseline), "--no-baseline"]) == 1


def test_unparsable_source_is_a_lint_error(tmp_path):
    root = tmp_path / "repro"
    root.mkdir()
    (root / "bad.py").write_text("def broken(:\n")
    with pytest.raises(LintError):
        lint_paths([root])
