"""The committed tree must lint clean, and seeded mutations must be caught.

These are the acceptance tests for the suite itself: the real ``src/repro``
tree produces no findings beyond the committed baseline, and reintroducing
two historical bug classes (an ambient ``import random`` and a silently
narrowed access plan) each produce exactly one finding with the expected
rule id.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.lint import lint_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "tools" / "lint_baseline.json"


def test_committed_tree_is_baseline_clean():
    findings = lint_paths([SRC_REPRO])
    baseline = load_baseline(BASELINE)
    new = [finding for finding in findings if finding.key not in baseline]
    assert new == [], "new lint findings:\n" + "\n".join(f.render() for f in new)


def test_committed_baseline_is_empty():
    # The ratchet target: the baseline never grows, and today it is empty.
    assert load_baseline(BASELINE) == {}


@pytest.fixture
def tree_copy(tmp_path):
    # The copy must be literally named "repro" so module names (and the
    # package-scoped rules keyed on them) come out identical to the real tree.
    copy = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, copy)
    return copy


def mutate(path: Path, old: str, new: str) -> None:
    text = path.read_text(encoding="utf-8")
    assert old in text, f"mutation anchor not found in {path}: {old!r}"
    path.write_text(text.replace(old, new, 1), encoding="utf-8")


def test_mutation_ambient_random_import_is_one_det001(tree_copy):
    mutate(
        tree_copy / "ethchain" / "node.py",
        "from __future__ import annotations\n",
        "from __future__ import annotations\n\nimport random\n",
    )
    findings = lint_paths([tree_copy])
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].module == "repro.ethchain.node"
    assert "random" in findings[0].message


def test_mutation_dropped_plan_delta_is_one_plan001(tree_copy):
    mutate(
        tree_copy / "contracts" / "community" / "fastmoney.py",
        'deltas=frozenset({recipient_key, "stats/transfers"}),',
        "deltas=frozenset({recipient_key}),",
    )
    findings = lint_paths([tree_copy])
    assert [f.rule for f in findings] == ["PLAN001"]
    assert "stats/transfers" in findings[0].message
    assert "transfer" in findings[0].symbol
