"""Simulated network: delivery, latency, byte accounting, fault states."""

import pytest

from repro.sim import ConstantLatency, Environment, Network, SeedSequence, SimulationError
from repro.sim.network import HTTP_FRAMING_BYTES


@pytest.fixture
def network(env, seeds):
    return Network(env, seeds.stream("net"), default_latency=ConstantLatency(0.1))


def test_delivery_invokes_handler_with_source(env, network):
    received = []
    network.register("cell", handler=lambda src, payload, size: received.append((src, payload, size)))
    network.register("client")
    network.send("client", "cell", {"op": "ping"}, payload_bytes=100)
    env.run()
    assert len(received) == 1
    src, payload, size = received[0]
    assert src == "client" and payload == {"op": "ping"}
    assert size == 100 + HTTP_FRAMING_BYTES


def test_delivery_delay_includes_latency_and_transmission(env, network):
    times = []
    network.register("cell", handler=lambda *_: times.append(env.now))
    network.register("client", uplink_bps=8_000)  # 1 kilobyte/s uplink
    network.send("client", "cell", "payload", payload_bytes=1_000 - HTTP_FRAMING_BYTES)
    env.run()
    # 0.1 s propagation + 1 s serialization on the slow uplink (plus fast downlink).
    assert times[0] == pytest.approx(1.1, rel=0.01)


def test_unknown_node_rejected(env, network):
    network.register("a")
    with pytest.raises(SimulationError):
        network.send("a", "ghost", {}, 10)


def test_traffic_accounting_per_direction(env, network):
    network.register("a", handler=lambda *_: None)
    network.register("b", handler=lambda *_: None)
    network.send("a", "b", "x", 100)
    network.send("a", "b", "y", 200)
    network.send("b", "a", "z", 50)
    env.run()
    assert network.bytes_between("a", "b") == 300 + 2 * HTTP_FRAMING_BYTES
    assert network.bytes_between("b", "a") == 50 + HTTP_FRAMING_BYTES
    assert network.total_messages() == 3
    network.reset_traffic()
    assert network.total_bytes() == 0


def test_offline_destination_drops_message(env, network):
    received = []
    network.register("cell", handler=lambda *_: received.append(1))
    network.register("client")
    network.set_online("cell", False)
    assert not network.send("client", "cell", {}, 10)
    env.run()
    assert received == [] and network.dropped_messages == 1


def test_crash_while_in_flight_drops_message(env, network):
    received = []
    network.register("cell", handler=lambda *_: received.append(1))
    network.register("client")
    network.send("client", "cell", {}, 10)
    network.set_online("cell", False)
    env.run()
    assert received == []


def test_per_link_latency_override(env, network):
    times = {}
    network.register("fast", handler=lambda *_: times.setdefault("fast", env.now))
    network.register("slow", handler=lambda *_: times.setdefault("slow", env.now))
    network.register("src")
    network.set_link("src", "fast", ConstantLatency(0.01))
    network.set_link("src", "slow", ConstantLatency(2.0))
    network.send("src", "fast", {}, 10)
    network.send("src", "slow", {}, 10)
    env.run()
    assert times["fast"] < 0.1 < times["slow"]


def test_bandwidth_must_be_positive(env, network):
    with pytest.raises(SimulationError):
        network.register("bad", uplink_bps=0)
