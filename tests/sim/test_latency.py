"""Latency models and cell service profiles."""

import random

import pytest

from repro.sim.latency import (
    CellServiceModel,
    ConstantLatency,
    LogNormalLatency,
    UniformLatency,
    azure_b1ms_service_model,
    fast_test_service_model,
    wan_cell_to_cell,
    wan_client_to_cell,
)


@pytest.fixture
def rng():
    return random.Random(7)


def test_constant_latency(rng):
    model = ConstantLatency(0.25)
    assert model.sample(rng) == 0.25
    assert model.mean() == 0.25


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1)


def test_uniform_latency_bounds(rng):
    model = UniformLatency(0.1, 0.2)
    samples = [model.sample(rng) for _ in range(200)]
    assert all(0.1 <= value <= 0.2 for value in samples)
    assert model.mean() == pytest.approx(0.15)


def test_uniform_latency_validation():
    with pytest.raises(ValueError):
        UniformLatency(0.5, 0.1)


def test_lognormal_floor_and_median(rng):
    model = LogNormalLatency(median=0.1, sigma=0.5, floor=0.05)
    samples = sorted(model.sample(rng) for _ in range(2000))
    assert all(value >= 0.05 for value in samples)
    median = samples[len(samples) // 2]
    assert median == pytest.approx(0.1, rel=0.2)
    assert model.mean() >= 0.1


def test_lognormal_validation():
    with pytest.raises(ValueError):
        LogNormalLatency(median=0)


def test_service_model_cpu_accounting():
    model = CellServiceModel()
    assert model.remote_cpu_per_transaction() == model.invoke_cpu
    assert model.service_cpu_per_transaction(1) == model.invoke_cpu
    extra = model.service_cpu_per_transaction(8) - model.service_cpu_per_transaction(2)
    assert extra == pytest.approx(6 * model.forward_cpu_per_cell)


def test_service_model_validation():
    with pytest.raises(ValueError):
        CellServiceModel(cpu_workers=0)
    with pytest.raises(ValueError):
        CellServiceModel(invoke_cpu=-1)
    with pytest.raises(ValueError):
        CellServiceModel().service_cpu_per_transaction(0)


def test_profiles_are_reasonable(rng):
    assert wan_client_to_cell().mean() > wan_cell_to_cell().mean() / 10
    fast = fast_test_service_model()
    azure = azure_b1ms_service_model()
    assert fast.invoke_overhead.sample(rng) < azure.invoke_overhead.sample(rng)
    assert fast.invoke_cpu < azure.invoke_cpu
