"""Event and process semantics of the simulation kernel."""

import pytest

from repro.sim import Environment, SimulationError


def test_event_succeed_delivers_value(env):
    event = env.event()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.succeed(42)
    env.run()
    assert seen == [42]


def test_event_cannot_trigger_twice(env):
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_requires_exception(env):
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")


def test_unhandled_failure_propagates(env):
    event = env.event()
    event.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError):
        env.run()


def test_process_returns_value(env):
    def worker():
        yield env.timeout(1)
        return "done"

    process = env.process(worker())
    assert env.run(process) == "done"
    assert env.now == 1


def test_process_receives_timeout_values(env):
    def worker():
        value = yield env.timeout(2, value="tick")
        return value

    assert env.run(env.process(worker())) == "tick"


def test_process_exception_propagates_to_waiter(env):
    def failing():
        yield env.timeout(1)
        raise ValueError("inner failure")

    def outer():
        try:
            yield env.process(failing())
        except ValueError as exc:
            return f"caught {exc}"

    assert env.run(env.process(outer())) == "caught inner failure"


def test_process_yielding_non_event_fails(env):
    def bad():
        yield 42

    with pytest.raises(SimulationError):
        env.run(env.process(bad()))


def test_all_of_waits_for_every_event(env):
    def worker(delay):
        yield env.timeout(delay)
        return delay

    processes = [env.process(worker(d)) for d in (3, 1, 2)]
    env.run(env.all_of(processes))
    assert env.now == 3
    assert all(p.processed or p.triggered for p in processes)


def test_any_of_fires_on_first_event(env):
    slow = env.timeout(10)
    fast = env.timeout(2)
    env.run(env.any_of([slow, fast]))
    assert env.now == 2


def test_all_of_empty_fires_immediately(env):
    event = env.all_of([])
    assert event.triggered


def test_negative_timeout_rejected(env):
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_waiting_on_already_fired_event(env):
    def worker():
        fired = env.timeout(0)
        yield env.timeout(1)
        # fired has already been processed by now; waiting must still work.
        yield fired
        return env.now

    assert env.run(env.process(worker())) == 1
