"""Capacity-constrained resources."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.resources import Resource


def test_capacity_must_be_positive(env):
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_serialization_under_capacity_one(env):
    resource = Resource(env, capacity=1)
    finished = []

    def job(name, duration):
        yield from resource.use(duration)
        finished.append((env.now, name))

    env.process(job("a", 3))
    env.process(job("b", 2))
    env.run()
    assert finished == [(3, "a"), (5, "b")]


def test_parallelism_matches_capacity(env):
    resource = Resource(env, capacity=2)
    finished = []

    def job(name):
        yield from resource.use(4)
        finished.append((env.now, name))

    for name in ("a", "b", "c"):
        env.process(job(name))
    env.run()
    # Two jobs run in parallel, the third starts when one slot frees.
    assert finished == [(4, "a"), (4, "b"), (8, "c")]


def test_queue_length_and_peak(env):
    resource = Resource(env, capacity=1)

    def job():
        yield from resource.use(1)

    for _ in range(4):
        env.process(job())
    env.run(until=0.5)
    assert resource.in_use == 1
    assert resource.queue_length == 3
    env.run()
    assert resource.peak_queue_length == 3
    assert resource.queue_length == 0


def test_release_without_request_raises(env):
    resource = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_utilization_accounting(env):
    resource = Resource(env, capacity=1)

    def job():
        yield from resource.use(5)

    env.process(job())
    env.run(until=10)
    assert resource.utilization() == pytest.approx(0.5)


def test_busy_time_accumulates_across_jobs(env):
    resource = Resource(env, capacity=2)

    def job(duration):
        yield from resource.use(duration)

    env.process(job(2))
    env.process(job(3))
    env.run()
    assert resource.busy_time == pytest.approx(5)
