"""Metrics: sample series, percentiles, throughput, rendering."""

import pytest

from repro.sim.metrics import (
    MetricsError,
    MetricsRegistry,
    SampleSeries,
    ThroughputResult,
    ascii_bars,
    ascii_cdf,
    format_seconds,
)


def test_summary_statistics():
    series = SampleSeries("s")
    series.extend([1, 2, 3, 4, 5])
    assert series.min() == 1 and series.max() == 5
    assert series.mean() == 3
    assert series.p50() == 3
    assert series.percentile(1.0) == 5


def test_percentile_interpolates():
    series = SampleSeries()
    series.extend([0, 10])
    assert series.percentile(0.25) == pytest.approx(2.5)


def test_p90_matches_definition():
    series = SampleSeries()
    series.extend(range(1, 101))
    assert series.p90() == pytest.approx(90.1)


def test_empty_series_raises():
    with pytest.raises(MetricsError):
        SampleSeries().mean()


def test_fraction_below():
    series = SampleSeries()
    series.extend([1, 2, 3, 4])
    assert series.fraction_below(2.5) == 0.5
    assert series.fraction_below(100) == 1.0


def test_empty_series_raises_on_every_statistic():
    series = SampleSeries()
    for query in (
        series.min,
        series.max,
        series.mean,
        series.stdev,
        series.p50,
        lambda: series.percentile(0.5),
        lambda: series.fraction_below(1.0),
        lambda: series.cdf(),
    ):
        with pytest.raises(MetricsError):
            query()
    assert len(series) == 0 and series.values == []


def test_single_sample_answers_every_percentile_with_itself():
    series = SampleSeries()
    series.add(7.5)
    assert series.percentile(0.0) == 7.5
    assert series.percentile(0.5) == 7.5
    assert series.percentile(1.0) == 7.5
    assert series.min() == series.max() == series.mean() == 7.5
    assert series.stdev() == 0.0
    # Strictly-below semantics hold even for the lone sample.
    assert series.fraction_below(7.5) == 0.0
    assert series.fraction_below(7.5000001) == 1.0


def test_percentile_boundaries_and_exact_sample_positions():
    series = SampleSeries()
    series.extend([30, 0, 10, 20])
    assert series.percentile(0.0) == series.min() == 0
    assert series.percentile(1.0) == series.max() == 30
    # fraction 1/3 lands exactly on the second order statistic — no
    # interpolation; 0.5 falls between samples and interpolates.
    assert series.percentile(1 / 3) == pytest.approx(10.0)
    assert series.percentile(0.5) == pytest.approx(15.0)


def test_percentile_rejects_out_of_range_fractions():
    series = SampleSeries()
    series.extend([1, 2, 3])
    with pytest.raises(MetricsError):
        series.percentile(-0.01)
    with pytest.raises(MetricsError):
        series.percentile(1.01)


def test_fraction_below_at_the_extremes_is_strict():
    series = SampleSeries()
    series.extend([2, 4, 6])
    assert series.fraction_below(1.99) == 0.0
    assert series.fraction_below(2) == 0.0  # equal-to-min does not count
    assert series.fraction_below(6) == pytest.approx(2 / 3)  # max excluded
    assert series.fraction_below(6.01) == 1.0


def test_fraction_below_is_strict_at_duplicate_boundary_values():
    series = SampleSeries()
    series.extend([1, 2, 2, 2, 3])
    # "Strictly below 2" counts only the single 1, not the three 2s.
    assert series.fraction_below(2) == pytest.approx(0.2)
    assert series.fraction_below(1) == 0.0
    assert series.fraction_below(3.0001) == 1.0


def test_sorted_cache_starts_empty_and_invalidates():
    series = SampleSeries()
    assert series._sorted is None  # the empty-series invariant
    with pytest.raises(MetricsError):
        series.min()
    series.add(2)
    assert series.min() == 2
    series.add(1)
    assert series._sorted is None  # add() invalidates the cache
    assert series.min() == 1


def test_cdf_is_monotonic():
    series = SampleSeries()
    series.extend([5, 1, 3, 2, 4, 9, 7])
    cdf = series.cdf(points=10)
    values = [value for value, _fraction in cdf]
    fractions = [fraction for _value, fraction in cdf]
    assert values == sorted(values)
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0


def test_throughput_result():
    result = ThroughputResult(operations=100, first_start=0.0, last_end=20.0)
    assert result.makespan == 20
    assert result.throughput == pytest.approx(5.0)


def test_registry_counters_and_latencies():
    registry = MetricsRegistry()
    registry.increment("tx", 2)
    registry.increment("tx")
    assert registry.counter("tx") == 3
    assert registry.counter("missing") == 0
    registry.record_latency("op", 1.0, 3.0)
    registry.record_latency("op", 2.0, 2.5)
    assert len(registry.series("op")) == 2
    throughput = registry.throughput("op")
    assert throughput.operations == 2 and throughput.makespan == pytest.approx(2.0)
    assert registry.series_names() == ["op"]


def test_latency_cannot_be_negative():
    registry = MetricsRegistry()
    with pytest.raises(MetricsError):
        registry.record_latency("op", 5.0, 4.0)


def test_format_seconds_scales():
    assert format_seconds(0.0000005).endswith("us")
    assert format_seconds(0.005).endswith("ms")
    assert format_seconds(2.5).endswith("s")


def test_ascii_renderings_do_not_crash():
    series = SampleSeries()
    series.extend([0.5, 1.0, 1.5, 2.0, 4.0])
    assert "#" in ascii_cdf(series)
    assert "tps" in ascii_bars([("2 cells", 700.0), ("8 cells", 400.0)], unit=" tps")
