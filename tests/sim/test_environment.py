"""Environment scheduling and clock behaviour."""

import pytest

from repro.sim import EmptySchedule, Environment, SimulationError


def test_time_starts_at_initial_value():
    assert Environment().now == 0.0
    assert Environment(initial_time=100.0).now == 100.0


def test_run_until_time(env):
    env.timeout(5)
    env.run(until=3)
    assert env.now == 3


def test_run_until_event(env):
    marker = env.timeout(4, value="x")
    assert env.run(marker) == "x"
    assert env.now == 4


def test_events_fire_in_time_order(env):
    order = []
    for delay in (5, 1, 3):
        env.timeout(delay, value=delay).add_callback(lambda e: order.append(e.value))
    env.run()
    assert order == [1, 3, 5]


def test_same_time_events_fire_in_schedule_order(env):
    order = []
    for tag in ("first", "second", "third"):
        env.timeout(1, value=tag).add_callback(lambda e: order.append(e.value))
    env.run()
    assert order == ["first", "second", "third"]


def test_step_on_empty_schedule_raises(env):
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_to_past_rejected(env):
    env.timeout(10)
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_peek_reports_next_event_time(env):
    assert env.peek() == float("inf")
    env.timeout(7)
    assert env.peek() == 7


def test_call_at_runs_callback(env):
    seen = []
    env.call_at(2.5, lambda: seen.append(env.now))
    env.run()
    assert seen == [2.5]


def test_call_at_in_past_rejected(env):
    env.timeout(1)
    env.run()
    with pytest.raises(SimulationError):
        env.call_at(0.5, lambda: None)


def test_run_all_counts_steps(env):
    for delay in range(5):
        env.timeout(delay)
    assert env.run_all() == 5


def test_nested_process_scheduling(env):
    results = []

    def child(tag, delay):
        yield env.timeout(delay)
        results.append((env.now, tag))
        return tag

    def parent():
        first = yield env.process(child("a", 1))
        second = yield env.process(child("b", 2))
        return [first, second]

    assert env.run(env.process(parent())) == ["a", "b"]
    assert results == [(1, "a"), (3, "b")]
