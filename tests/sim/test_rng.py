"""Seeded random streams."""

from repro.sim.rng import SeedSequence


def test_same_master_same_stream():
    a = SeedSequence(1).stream("latency")
    b = SeedSequence(1).stream("latency")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    seq = SeedSequence(1)
    assert seq.seed_for("a") != seq.seed_for("b")


def test_different_masters_differ():
    assert SeedSequence(1).seed_for("x") != SeedSequence(2).seed_for("x")


def test_string_and_bytes_masters():
    assert SeedSequence("exp").seed_for("x") == SeedSequence(b"exp").seed_for("x")


def test_streams_iterator():
    seq = SeedSequence(3)
    streams = list(seq.streams("a", "b", "c"))
    assert len(streams) == 3
    assert streams[0].random() != streams[1].random()
