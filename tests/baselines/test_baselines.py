"""The Ethereum L1 and gossip-P2P baselines used by experiment E9."""

import pytest

from repro.baselines import run_ethereum_payment_baseline, run_p2p_baseline


@pytest.fixture(scope="module")
def eth_result():
    return run_ethereum_payment_baseline(transactions=120, senders=4, block_interval=5.0)


def test_ethereum_baseline_confirms_all_transfers(eth_result):
    assert eth_result.transactions == 120
    assert eth_result.failures == 0


def test_ethereum_baseline_latency_is_block_bound(eth_result):
    # Confirmation latency is bounded below by waiting for a block.
    assert eth_result.latencies.p50() > 1.0


def test_ethereum_baseline_fee_accounting(eth_result):
    assert eth_result.gas_per_transfer > 21_000
    assert eth_result.total_gas >= eth_result.gas_per_transfer * eth_result.transactions * 0.5
    assert eth_result.fee_per_transaction_usd > 0
    summary = eth_result.summary()
    assert summary["throughput_tps"] > 0


def test_p2p_baseline_summary_shape():
    result = run_p2p_baseline(network_size=400, degree=8)
    summary = result.summary()
    assert summary["propagation_p90"] >= summary["propagation_p50"] > 0
    assert 0 < summary["stale_rate"] < 1
    assert summary["effective_throughput_tps"] <= summary["throughput_tps"]
    assert result.confirmation_latency > 60


def test_baselines_are_orders_of_magnitude_behind_blockumulus(eth_result):
    p2p = run_p2p_baseline(network_size=400)
    # The paper's Blockumulus prototype sustains hundreds of TPS; both
    # public-chain baselines sit around or below a dozen TPS.
    assert p2p.effective_throughput_tps < 50
    assert eth_result.throughput_tps < 50
