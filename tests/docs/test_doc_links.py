"""The documentation tree must not contain broken intra-repo links."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "tools" / "check_links.py"


def test_readme_and_docs_links_resolve():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_checker_flags_broken_links_and_anchors(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "# Title\n"
        "[missing](./does-not-exist.md)\n"
        "[bad anchor](#nope)\n"
        "[escape](../../../../../etc/passwd)\n"
        "[ok external](https://example.com/)\n"
    )
    result = subprocess.run(
        [sys.executable, str(CHECKER), str(bad)], capture_output=True, text=True
    )
    assert result.returncode == 1
    assert "broken link" in result.stderr
    assert "broken anchor" in result.stderr
    assert "escapes the repository" in result.stderr


def test_checker_accepts_valid_anchors(tmp_path):
    good = tmp_path / "good.md"
    other = tmp_path / "other.md"
    other.write_text("# Some Heading!\n")
    good.write_text("# A `Code` Heading\n[self](#a-code-heading)\n")
    # Anchors across files only work inside the repo root; self-anchors and
    # plain file links are checked anywhere.
    result = subprocess.run(
        [sys.executable, str(CHECKER), str(good)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
