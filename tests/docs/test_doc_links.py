"""The documentation tree must not contain broken intra-repo links."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "tools" / "check_links.py"


def test_readme_and_docs_links_resolve():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_checker_flags_broken_links_and_anchors(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "# Title\n"
        "[missing](./does-not-exist.md)\n"
        "[bad anchor](#nope)\n"
        "[escape](../../../../../etc/passwd)\n"
        "[ok external](https://example.com/)\n"
    )
    result = subprocess.run(
        [sys.executable, str(CHECKER), str(bad)], capture_output=True, text=True
    )
    assert result.returncode == 1
    assert "broken link" in result.stderr
    assert "broken anchor" in result.stderr
    assert "escapes the repository" in result.stderr


def test_checker_flags_rotted_module_and_file_references(tmp_path):
    bad = tmp_path / "rot.md"
    bad.write_text(
        "# Title\n"
        "The `repro.core.telepathy` module does not exist.\n"
        "Neither does `core/telepathy.py` nor `benchmarks/test_nothing.py`.\n"
        "And `imaginary-dir/` is not a directory.\n"
    )
    result = subprocess.run(
        [sys.executable, str(CHECKER), str(bad)], capture_output=True, text=True
    )
    assert result.returncode == 1
    assert "broken module reference" in result.stderr
    assert "telepathy" in result.stderr
    assert "broken file reference" in result.stderr
    assert "test_nothing.py" in result.stderr
    assert "broken directory reference" in result.stderr


def test_checker_accepts_real_module_and_file_references(tmp_path):
    good = tmp_path / "fresh.md"
    good.write_text(
        "# Title\n"
        "`repro.core.sharding` routes; `repro.core.sharding.ShardMap` maps;\n"
        "`repro.client` is a package and `repro.core.faults.FaultPlan` an attribute.\n"
        "`core/lanes.py` and `benchmarks/test_sharding.py` exist,\n"
        "`check_links.py` is found by bare name, and `docs/` is a directory.\n"
    )
    result = subprocess.run(
        [sys.executable, str(CHECKER), str(good)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_checker_accepts_valid_anchors(tmp_path):
    good = tmp_path / "good.md"
    other = tmp_path / "other.md"
    other.write_text("# Some Heading!\n")
    good.write_text("# A `Code` Heading\n[self](#a-code-heading)\n")
    # Anchors across files only work inside the repo root; self-anchors and
    # plain file links are checked anywhere.
    result = subprocess.run(
        [sys.executable, str(CHECKER), str(good)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
