"""ShardedAuditor tamper localization: name the offending group and cycle.

Two attack shapes against the deployment-level shard digest:

* a cell of one group rewrites part of its execution history (its cells
  stop agreeing) — the audit must say *which group* and *which cycle*;
* the per-group fingerprint history published alongside a digest is
  forged at one link — the audit must pin the forged (cycle, group)
  coordinate, not merely observe that the end-of-chain digest differs.
"""

import pytest

from repro.audit import AuditError, ShardedAuditor
from repro.client import run_sharded_burst_transfers
from tests.conftest import make_sharded_deployment

COUNT = 12
POOLS = 4


@pytest.fixture(scope="module")
def audited_deployment():
    deployment = make_sharded_deployment(2)
    run_sharded_burst_transfers(deployment, count=COUNT, pools=POOLS)
    deployment.run_cycles(1)
    return deployment


def _tamper_ledger(cell, cycle):
    """Rewrite the result of one executed entry of ``cycle`` on one cell."""
    for entry in cell.ledger:
        if entry.cycle == cycle and entry.status == "executed":
            entry.result = {"forged": True}
            return entry
    raise AssertionError(f"no executed entry in cycle {cycle} to tamper with")


def test_corrupted_group_history_names_group_and_cycle(audited_deployment):
    auditor = ShardedAuditor(audited_deployment)
    baseline = auditor.collect_group_fingerprints(0)
    assert len(baseline) == 1 and len(baseline[0]) == 2

    victim = audited_deployment.group(1).cells[1]
    tampered = _tamper_ledger(victim, cycle=0)
    with pytest.raises(AuditError) as caught:
        auditor.collect_group_fingerprints(0)
    message = str(caught.value)
    assert "group 1" in message
    assert "cycle 0" in message

    # Heal the ledger so the module-scoped deployment stays usable.
    tampered.result = None
    for entry in audited_deployment.group(1).cells[0].ledger:
        if entry.tx_id == tampered.tx_id:
            tampered.result = entry.result
    assert auditor.collect_group_fingerprints(0) == baseline


def test_forged_digest_link_is_localized_to_group_and_cycle(audited_deployment):
    auditor = ShardedAuditor(audited_deployment)
    published = auditor.collect_group_fingerprints(0)
    digest = audited_deployment.shard_digest(0)

    # The honest publication verifies, with no localized findings.
    honest = auditor.verify_shard_digest(
        0, published=digest, published_fingerprints=published
    )
    assert honest.passed and honest.details == digest

    # Forge group 0's cycle-0 link of the published history.
    forged = [list(row) for row in published]
    forged[0][0] = "0x" + "ab" * 32
    report = auditor.verify_shard_digest(0, published_fingerprints=forged)
    assert not report.passed
    assert [finding.kind for finding in report.findings] == [
        "shard_fingerprint_mismatch"
    ]
    assert "group 0" in report.findings[0].details
    assert "cycle 0" in report.findings[0].details


def test_published_history_of_wrong_shape_is_unverifiable(audited_deployment):
    auditor = ShardedAuditor(audited_deployment)
    report = auditor.verify_shard_digest(0, published_fingerprints=[])
    assert not report.passed
    assert report.findings[0].kind == "shard_digest_unverifiable"
