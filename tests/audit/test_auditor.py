"""Independent auditing: honest deployments pass, tampering is detected."""

import pytest

from repro.audit import Auditor
from repro.client import BlockumulusClient, FastMoneyClient
from tests.conftest import make_deployment


def prepared_deployment(**overrides):
    """A deployment with some transactions and several completed report cycles."""
    deployment = make_deployment(report_period=15.0, eth_block_interval=2.0, **overrides)
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    deployment.env.run(fastmoney.transfer("0x" + "ab" * 20, 30))
    deployment.run(until=60.0)
    return deployment


def auditable_cycle(deployment):
    """A cycle whose reports have certainly been mined already."""
    return min(cell.snapshots.latest_cycle for cell in deployment.cells) - 1


def test_honest_deployment_passes_audit():
    deployment = prepared_deployment()
    auditor = Auditor(deployment)
    report = auditor.run_audit(cell_index=0, cycle=auditable_cycle(deployment))
    assert report.passed, [f.details for f in report.findings]
    assert report.cell == "cell-0"


def test_cross_audit_covers_every_cell():
    deployment = prepared_deployment()
    auditor = Auditor(deployment)
    reports = auditor.cross_audit(auditable_cycle(deployment))
    assert len(reports) == deployment.consortium_size
    assert all(report.passed for report in reports)


def test_succession_audit_replays_transactions():
    deployment = make_deployment(report_period=15.0, eth_block_interval=2.0)
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    # Land a transfer inside cycle 1 so the succession audit of cycle 1 has
    # both a previous snapshot (cycle 0) and transactions to replay.
    deployment.run(until=16.0)
    deployment.env.run(fastmoney.transfer("0x" + "ab" * 20, 30))
    deployment.run(until=45.0)
    auditor = Auditor(deployment)
    report = auditor.run_audit(cell_index=0, cycle=1)
    assert report.passed, [f.details for f in report.findings]
    assert report.checked_transactions >= 1


def test_tampered_anchor_fingerprint_detected():
    deployment = make_deployment(report_period=15.0, eth_block_interval=2.0)
    deployment.cell(1).fault.tamper_fingerprint = True
    client = BlockumulusClient(deployment)
    deployment.env.run(FastMoneyClient(client).faucet(50))
    deployment.run(until=60.0)
    auditor = Auditor(deployment)
    cycle = auditable_cycle(deployment)
    honest = auditor.run_audit(cell_index=0, cycle=cycle)
    cheating = auditor.run_audit(cell_index=1, cycle=cycle)
    assert honest.passed
    assert not cheating.passed
    assert any(finding.kind == "fingerprint_mismatch" for finding in cheating.findings)


def test_state_tampering_detected_by_audit():
    deployment = prepared_deployment()
    # Corrupt the state a cell serves after the snapshot was anchored.
    cell = deployment.cell(0)
    cell.contracts.get("fastmoney").store.put("balance/0x" + "ff" * 20, 10_000)
    cycle = cell.snapshots.latest_cycle
    # Advance time so the first snapshot taken over the tampered state gets
    # anchored, then audit exactly that cycle: its succession from the last
    # honest snapshot cannot be explained by any replayed transaction.
    deployment.run(until=deployment.env.now + 20.0)
    auditor = Auditor(deployment)
    new_cycle = cycle + 1
    assert cell.snapshots.latest_cycle >= new_cycle
    report = auditor.run_audit(cell_index=0, cycle=new_cycle)
    assert not report.passed
    kinds = {finding.kind for finding in report.findings}
    assert "succession_mismatch" in kinds or "state_fingerprint_mismatch" in kinds


def test_missing_report_detected():
    deployment = make_deployment(report_period=15.0, auto_report=False)
    deployment.run(until=40.0)
    auditor = Auditor(deployment)
    cycle = deployment.cell(0).snapshots.latest_cycle - 1
    report = auditor.run_audit(cell_index=0, cycle=cycle)
    assert not report.passed
    assert any(finding.kind == "missing_report" for finding in report.findings)


def test_audit_of_unavailable_snapshot_reports_finding():
    deployment = prepared_deployment()
    auditor = Auditor(deployment)
    report = auditor.run_audit(cell_index=0, cycle=999)
    assert not report.passed
    assert any(finding.kind == "snapshot_unavailable" for finding in report.findings)
