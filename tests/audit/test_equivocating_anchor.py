"""An equivocating anchor against the sharded audit (satellite of PR 9).

The attack: at a report boundary one cell signs *two different* shard
digests for the same cycle — the honest one on-chain, a forged one to a
chosen peer (or vice versa).  Catching it takes two pieces working
together, and this module pins both:

* :class:`~repro.messages.EquivocationEvidence` proves the *act* — the
  pair of same-cell, same-cycle signed digests is self-certifying;
* :meth:`ShardedAuditor.localize_fingerprint_mismatch` and
  :meth:`ShardedAuditor.verify_shard_digest` prove *which half lies*:
  replayed history agrees with exactly one of the two publications, and
  the mismatch is pinned to a (cycle, group) coordinate rather than
  merely failing the end-of-chain digest comparison.
"""

import pytest

from repro.audit import AuditError, ShardedAuditor
from repro.client import run_sharded_burst_transfers
from repro.core.receipts import Confirmation
from repro.messages import EquivocationEvidence
from tests.conftest import make_sharded_deployment

FORGED_FP = "0x" + "ab" * 32


@pytest.fixture(scope="module")
def audited_deployment():
    deployment = make_sharded_deployment(2)
    run_sharded_burst_transfers(deployment, count=12, pools=4)
    deployment.run_cycles(1)
    return deployment


@pytest.fixture(scope="module")
def publications(audited_deployment):
    """The anchor's two same-cycle publications: honest and forged."""
    auditor = ShardedAuditor(audited_deployment)
    honest = auditor.collect_group_fingerprints(0)
    forged = [list(row) for row in honest]
    forged[0][1] = FORGED_FP  # cycle 0, group 1
    return honest, forged


def _signed_digest(cell, cycle, fingerprint):
    """One signed shard-digest statement from ``cell`` for ``cycle``."""
    return Confirmation.create(
        cell.signer,
        tx_id=f"shard-digest/cycle-{cycle}",
        contract="__audit__",
        fingerprint_hex=fingerprint,
        status="anchored",
        timestamp=30.0,
    )


def test_two_signed_digests_for_one_cycle_are_self_certifying(
    audited_deployment, publications
):
    honest, forged = publications
    anchor = audited_deployment.group(1).cells[0]
    evidence = EquivocationEvidence(
        first=_signed_digest(anchor, 0, honest[0][1]),
        second=_signed_digest(anchor, 0, forged[0][1]),
    )
    assert evidence.verify()
    assert evidence.cell() == anchor.address
    # The pair alone proves misbehaviour; no reporter signature needed —
    # round-tripping through wire data preserves that.
    assert EquivocationEvidence.from_data(evidence.to_data()).verify()


def test_localization_pins_the_lying_publication_to_its_coordinate(
    audited_deployment, publications
):
    honest, forged = publications
    auditor = ShardedAuditor(audited_deployment)
    current = auditor.collect_group_fingerprints(0)
    # Replayed history sides with exactly one of the two publications:
    # the honest half matches everywhere, the forged half mismatches at
    # precisely the coordinate the anchor lied about.
    assert auditor.localize_fingerprint_mismatch(0, honest, current=current) == []
    assert auditor.localize_fingerprint_mismatch(0, forged, current=current) == [
        (0, 1)
    ]


def test_digest_verification_rejects_the_forged_publication(
    audited_deployment, publications
):
    honest, forged = publications
    auditor = ShardedAuditor(audited_deployment)
    report = auditor.verify_shard_digest(0, published_fingerprints=honest)
    assert report.passed

    report = auditor.verify_shard_digest(0, published_fingerprints=forged)
    assert not report.passed
    (finding,) = report.findings
    assert finding.kind == "shard_fingerprint_mismatch"
    assert "group 1" in finding.details
    assert "cycle 0" in finding.details


def test_malformed_publications_are_unverifiable_not_silently_ok(
    audited_deployment, publications
):
    honest, _forged = publications
    auditor = ShardedAuditor(audited_deployment)
    with pytest.raises(AuditError, match="covers 0 cycles"):
        auditor.localize_fingerprint_mismatch(0, [])
    with pytest.raises(AuditError, match="group fingerprints"):
        auditor.localize_fingerprint_mismatch(0, [honest[0][:1]])
