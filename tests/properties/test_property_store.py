"""Property-based tests for the KeyValueStore invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts.state_store import KeyValueStore

keys = st.text(alphabet="abcdef/0123456789", min_size=1, max_size=10)
values = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.text(max_size=16),
    st.lists(st.integers(min_value=0, max_value=100), max_size=4),
)
operations = st.lists(
    st.tuples(st.sampled_from(["put", "delete"]), keys, values), max_size=60
)


def apply_operations(store, ops):
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
        else:
            store.delete(key)


@settings(max_examples=120, deadline=None)
@given(operations)
def test_incremental_fingerprint_matches_full_recomputation(ops):
    store = KeyValueStore()
    apply_operations(store, ops)
    assert store.fingerprint() == store.recompute_fingerprint()


@settings(max_examples=120, deadline=None)
@given(operations)
def test_fingerprint_depends_only_on_final_content(ops):
    history_store = KeyValueStore()
    apply_operations(history_store, ops)
    fresh_store = KeyValueStore()
    for key, value in history_store.items():
        fresh_store.put(key, value)
    assert history_store.fingerprint() == fresh_store.fingerprint()


@settings(max_examples=100, deadline=None)
@given(operations, operations)
def test_rollback_restores_exact_state_and_fingerprint(initial_ops, txn_ops):
    store = KeyValueStore()
    apply_operations(store, initial_ops)
    content_before = dict(store.items())
    fingerprint_before = store.fingerprint()
    store.begin()
    apply_operations(store, txn_ops)
    store.rollback()
    assert dict(store.items()) == content_before
    assert store.fingerprint() == fingerprint_before


@settings(max_examples=100, deadline=None)
@given(operations)
def test_export_restore_preserves_fingerprint(ops):
    store = KeyValueStore()
    apply_operations(store, ops)
    clone = KeyValueStore()
    clone.restore_state(store.export_state())
    assert clone.fingerprint() == store.fingerprint()
    assert dict(clone.items()) == dict(store.items())
