"""Property-based tests for protocol-level invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemInvariants
from repro.core.consensus import OverlayConsensus
from repro.crypto.keys import PrivateKey
from repro.crypto.merkle import MerkleTree
from repro.crypto.hashing import fast_hash
from repro.messages import EcdsaSigner, Envelope, Opcode, SimulatedSigner

CELLS = tuple(PrivateKey.from_seed(f"prop-cell-{i}").address for i in range(3))
ECDSA_SIGNER = EcdsaSigner.from_seed("prop-ecdsa")
SIM_SIGNER = SimulatedSigner("prop-sim")


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=10_000.0),
    st.floats(min_value=0.0, max_value=10_000.0),
    st.floats(min_value=0.0, max_value=10**6),
)
def test_cycle_arithmetic_invariants(period, t0, offset):
    invariants = SystemInvariants(
        deployment_id="prop", cell_addresses=CELLS, report_period=period, initial_timestamp=t0
    )
    consensus = OverlayConsensus(invariants)
    timestamp = t0 + offset
    cycle = consensus.cycle_of(timestamp)
    assert consensus.cycle_start(cycle) <= timestamp
    assert timestamp < consensus.cycle_start(cycle) + period * (1 + 1e-9)
    assert consensus.next_deadline(timestamp) > timestamp - 1e-6
    assert consensus.report_due_by(cycle) >= consensus.cycle_deadline(cycle)
    assert consensus.valid_from_cycle(cycle) == cycle + 2


@settings(max_examples=40, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=24))
def test_merkle_proofs_verify_for_all_leaves(leaves):
    tree = MerkleTree(leaves, hash_function=fast_hash)
    for index, leaf in enumerate(leaves):
        assert tree.proof(index).verify(leaf, tree.root, fast_hash)


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(st.text(max_size=6), st.integers(min_value=0, max_value=10**6), max_size=5),
    st.floats(min_value=0, max_value=10**6),
)
def test_envelope_roundtrip_verifies_for_both_schemes(data, timestamp):
    for signer in (ECDSA_SIGNER, SIM_SIGNER):
        envelope = Envelope.create(
            signer=signer, recipient=CELLS[0], operation=Opcode.TX_SUBMIT,
            data={"args": data}, timestamp=timestamp, nonce="0x01",
        )
        restored = Envelope.from_wire(envelope.wire_bytes())
        assert restored.verify()
        assert restored.payload.hash() == envelope.payload.hash()


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=100), st.binary(min_size=1, max_size=100))
def test_simulated_signatures_do_not_transfer_between_messages(a, b):
    signature = SIM_SIGNER.sign(a)
    from repro.messages.signer import verify_signature

    assert verify_signature("sim", SIM_SIGNER.address, a, signature)
    if a != b:
        assert not verify_signature("sim", SIM_SIGNER.address, b, signature)
