"""Property-based tests for the encoding layers (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.fingerprint import canonical_bytes, fingerprint_state
from repro.encoding import canonical_json, rlp

# JSON-like values with string keys, bounded depth.
json_values = st.recursive(
    st.none() | st.booleans() | st.integers(min_value=-10**12, max_value=10**12)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)

rlp_values = st.recursive(
    st.binary(max_size=80) | st.integers(min_value=0, max_value=2**128),
    lambda children: st.lists(children, max_size=5),
    max_leaves=15,
)


def _normalize_rlp(value):
    """What RLP decoding is expected to give back (everything is bytes)."""
    if isinstance(value, int):
        if value == 0:
            return b""
        return value.to_bytes((value.bit_length() + 7) // 8, "big")
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    return [_normalize_rlp(item) for item in value]


@settings(max_examples=150, deadline=None)
@given(rlp_values)
def test_rlp_roundtrip(value):
    assert rlp.decode(rlp.encode(value)) == _normalize_rlp(value)


@settings(max_examples=100, deadline=None)
@given(json_values)
def test_canonical_json_roundtrip(value):
    assert canonical_json.loads(canonical_json.dumps(value)) == value


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.text(max_size=8), json_values, max_size=5))
def test_canonical_json_is_insertion_order_independent(mapping):
    reordered = dict(reversed(list(mapping.items())))
    assert canonical_json.dumps(mapping) == canonical_json.dumps(reordered)


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.text(max_size=8), json_values, max_size=5))
def test_fingerprint_is_insertion_order_independent(mapping):
    reordered = dict(reversed(list(mapping.items())))
    assert fingerprint_state(mapping) == fingerprint_state(reordered)


@settings(max_examples=100, deadline=None)
@given(json_values, json_values)
def test_canonical_bytes_injective_enough(a, b):
    # Distinct values must not collide in their canonical encoding.
    if a != b:
        assert canonical_bytes(a) != canonical_bytes(b)
