"""Property-based tests for the lane partition (hypothesis).

Transactions are modeled abstractly as small programs over a shared
key-value store — reads, order-sensitive puts, and commutative increments.
From each program we derive the access footprint the scheduler would see,
partition the batch into lanes/waves, and check the scheduler's two core
guarantees on random workloads:

* soundness — no two conflicting transactions ever share a parallel wave,
  conflicting transactions keep their canonical order across waves, and
  waves never exceed the lane width;
* determinism — replaying any lane schedule serially in commit
  (wave-major) order reproduces the serial store fingerprint.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts.state_store import AccessSet, KeyValueStore
from repro.core.lanes import AccessFootprint, partition_footprints

keys = st.sampled_from([f"k{i}" for i in range(6)])
ops = st.lists(
    st.one_of(
        st.tuples(st.just("get"), keys),
        st.tuples(st.just("put"), keys),
        st.tuples(st.just("increment"), keys),
    ),
    min_size=1,
    max_size=5,
)
programs = st.lists(ops, min_size=1, max_size=24)
lane_counts = st.integers(min_value=1, max_value=8)


def footprint(index, program):
    """The pre-execution footprint of one abstract transaction."""
    reads, writes, deltas = set(), set(), set()
    for op, key in program:
        if op == "get":
            reads.add(("store", key))
        elif op == "put":
            writes.add(("store", key))
        else:
            deltas.add(("store", key))
    return AccessFootprint(
        reads=frozenset(reads), writes=frozenset(writes), deltas=frozenset(deltas)
    )


def run_program(store, index, program):
    """Execute one abstract transaction; put values depend on the tx only."""
    for position, (op, key) in enumerate(program):
        if op == "get":
            store.get(key)
        elif op == "put":
            # The written value is a pure function of the transaction, not
            # of store state — like a contract writing computed results.
            # Kept numeric so a later increment of the same key is valid.
            store.put(key, (index + 1) * 1_000 + position)
        else:
            store.increment(key, index + 1)


def naive_partition(footprints, lanes):
    """Reference partition: quadratic scan of all conflicting predecessors."""
    waves, wave_of = [], []
    for index, fp in enumerate(footprints):
        earliest = 0
        for previous in range(index):
            if footprints[previous].conflicts_with(fp):
                earliest = max(earliest, wave_of[previous] + 1)
        wave = earliest
        while wave < len(waves) and len(waves[wave]) >= lanes:
            wave += 1
        while wave >= len(waves):
            waves.append([])
        waves[wave].append(index)
        wave_of.append(wave)
    return waves


@settings(max_examples=150, deadline=None)
@given(programs, lane_counts, st.booleans())
def test_partition_matches_naive_reference(txs, lanes, with_exclusive):
    """The per-key list scheduler equals the pairwise reference partition."""
    footprints = [footprint(i, program) for i, program in enumerate(txs)]
    if with_exclusive and footprints:
        # Sprinkle exclusive fallbacks deterministically among the batch.
        footprints = [
            AccessFootprint.exclusive_footprint() if i % 3 == 2 else fp
            for i, fp in enumerate(footprints)
        ]
    assert partition_footprints(footprints, lanes) == naive_partition(footprints, lanes)


@settings(max_examples=150, deadline=None)
@given(programs, lane_counts)
def test_partition_is_sound(txs, lanes):
    footprints = [footprint(i, program) for i, program in enumerate(txs)]
    waves = partition_footprints(footprints, lanes)

    # Every transaction is scheduled exactly once.
    scheduled = [index for wave in waves for index in wave]
    assert sorted(scheduled) == list(range(len(txs)))
    # Wave width never exceeds the lane count.
    assert all(len(wave) <= lanes for wave in waves)

    wave_of = {index: n for n, wave in enumerate(waves) for index in wave}
    for i in range(len(txs)):
        for j in range(i + 1, len(txs)):
            if footprints[i].conflicts_with(footprints[j]):
                # Conflicting pairs never share a wave and never reorder.
                assert wave_of[i] < wave_of[j]


@settings(max_examples=150, deadline=None)
@given(programs, lane_counts)
def test_serial_replay_of_any_schedule_matches_serial_fingerprint(txs, lanes):
    footprints = [footprint(i, program) for i, program in enumerate(txs)]
    waves = partition_footprints(footprints, lanes)

    serial = KeyValueStore()
    for index, program in enumerate(txs):
        run_program(serial, index, program)

    replayed = KeyValueStore()
    for wave in waves:
        for index in wave:
            run_program(replayed, index, txs[index])

    assert replayed.fingerprint() == serial.fingerprint()
    assert replayed.fingerprint() == replayed.recompute_fingerprint()


@settings(max_examples=100, deadline=None)
@given(programs)
def test_single_lane_partition_is_the_serial_schedule(txs):
    footprints = [footprint(i, program) for i, program in enumerate(txs)]
    waves = partition_footprints(footprints, lanes=1)
    assert all(len(wave) == 1 for wave in waves)
    assert [wave[0] for wave in waves] == list(range(len(txs)))


@settings(max_examples=100, deadline=None)
@given(programs)
def test_exclusive_footprints_serialize_everything(txs):
    footprints = [AccessFootprint.exclusive_footprint() for _ in txs]
    waves = partition_footprints(footprints, lanes=8)
    assert len(waves) == len(txs)
    assert [wave[0] for wave in waves] == list(range(len(txs)))


@settings(max_examples=150, deadline=None)
@given(ops, ops)
def test_observed_access_sets_predict_commutativity(program_a, program_b):
    """If the derived footprints don't conflict, execution order commutes."""
    fa, fb = footprint(0, program_a), footprint(1, program_b)
    if fa.conflicts_with(fb):
        return
    ab, ba = KeyValueStore(), KeyValueStore()
    run_program(ab, 0, program_a)
    run_program(ab, 1, program_b)
    run_program(ba, 1, program_b)
    run_program(ba, 0, program_a)
    assert ab.fingerprint() == ba.fingerprint()


@settings(max_examples=120, deadline=None)
@given(ops)
def test_journal_observes_declared_access_classes(program):
    """The mutation journal's observed sets mirror the abstract footprint."""
    store = KeyValueStore()
    store.begin()
    run_program(store, 0, program)
    observed = store.commit().access_set()
    predicted = footprint(0, program)
    predicted_local = AccessSet(
        reads=frozenset(k for _, k in predicted.reads),
        writes=frozenset(k for _, k in predicted.writes),
        deltas=frozenset(k for _, k in predicted.deltas),
    )
    # Every observed mutation is covered by the prediction.
    assert predicted_local.covers_mutations_of(observed)
    # And reads were recorded (gets may overlap puts/increments, which
    # record their own classes).
    assert predicted_local.reads <= observed.reads | observed.writes | observed.deltas