"""End-to-end transaction flows through a deployment (Fig. 7)."""

import pytest

from repro.client import BallotClient, BlockumulusClient, CasClient, FastMoneyClient
from repro.client import deploy_contract_source
from tests.conftest import make_deployment


def run(deployment, event):
    deployment.env.run(event)
    return event.value


def test_transfer_produces_verifiable_receipt(deployment):
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    assert run(deployment, fastmoney.faucet(100)).ok
    result = run(deployment, fastmoney.transfer("0x" + "ab" * 20, 40))
    assert result.ok
    receipt = result.receipt
    assert receipt.verify(expected_cells=[cell.address for cell in deployment.cells])
    assert len(receipt.confirmations) == deployment.consortium_size
    assert result.latency > 0


def test_state_replicated_identically_on_all_cells(deployment):
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    run(deployment, fastmoney.faucet(100))
    run(deployment, fastmoney.transfer("0x" + "ab" * 20, 25))
    fingerprints = {
        cell.contracts.get("fastmoney").fingerprint_hex() for cell in deployment.cells
    }
    assert len(fingerprints) == 1
    for cell in deployment.cells:
        contract = cell.contracts.get("fastmoney")
        assert contract.query("balance_of", {"account": client.address.hex()}) == 75


def test_rejected_transaction_reported_to_client(deployment):
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    result = run(deployment, fastmoney.transfer("0x" + "ab" * 20, 40))
    assert not result.ok
    assert "insufficient" in result.error
    # No cell applied the transfer.
    for cell in deployment.cells:
        assert cell.contracts.get("fastmoney").query(
            "balance_of", {"account": "0x" + "ab" * 20}) == 0


def test_query_served_by_service_cell(deployment):
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    run(deployment, fastmoney.faucet(10))
    assert run(deployment, fastmoney.balance_of(client.address)) == 10
    assert run(deployment, fastmoney.total_supply()) == 10


def test_cas_upload_and_download(deployment):
    client = BlockumulusClient(deployment)
    cas = CasClient(client)
    result = run(deployment, cas.put(b"hello blockumulus"))
    assert result.ok
    digest = result.receipt.result["hash"]
    assert run(deployment, cas.reference_count(digest)) == 1
    downloaded = run(deployment, cas.get(digest))
    assert downloaded["content_hex"] == "0x" + b"hello blockumulus".hex()


def test_ballot_flow_across_cells(deployment):
    chair = BlockumulusClient(deployment)
    ballot = BallotClient(chair)
    closes = deployment.env.now + 1_000
    assert run(deployment, ballot.create_election(
        "e1", "adopt overlay consensus?", ["yes", "no"], closes)).ok
    voters = [BlockumulusClient(deployment, service_cell_index=i % deployment.consortium_size)
              for i in range(3)]
    for index, voter in enumerate(voters):
        choice = "yes" if index != 2 else "no"
        assert run(deployment, BallotClient(voter).vote("e1", choice)).ok
    tally = run(deployment, ballot.tally("e1"))
    assert tally == {"yes": 2, "no": 1}
    for cell in deployment.cells:
        assert cell.contracts.get("ballot").query("tally", {"election_id": "e1"}) == tally


def test_community_contract_deployment_via_deployer(deployment):
    client = BlockumulusClient(deployment)
    source = '''
class KVStore(BContract):
    TYPE = "community/kv"

    @bcontract_method
    def set(self, ctx, key, value):
        self.store.put("kv/" + key, value)
        return {"key": key}

    @bcontract_view
    def get(self, key):
        return self.store.get("kv/" + key)
'''
    result = run(deployment, deploy_contract_source(client, "kvstore", source))
    assert result.ok
    set_result = run(deployment, client.submit("kvstore", "set", {"key": "a", "value": 42}))
    assert set_result.ok
    assert run(deployment, client.query("kvstore", "get", {"key": "a"})) == 42
    for cell in deployment.cells:
        assert cell.contracts.contains("kvstore")


def test_subscription_enforcement():
    deployment = make_deployment(enforce_subscriptions=True)
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    denied = run(deployment, fastmoney.faucet(10))
    assert not denied.ok and "subscription" in denied.error
    deployment.env.run(client.subscribe())
    allowed = run(deployment, fastmoney.faucet(10))
    assert allowed.ok
    cell = deployment.cell(0)
    assert cell.subscriptions.is_subscribed(client.address)
    assert cell.subscriptions.bill(client.address, deployment.env.now) >= 0


def test_four_cell_deployment_receipt_covers_all_cells(four_cell_deployment):
    deployment = four_cell_deployment
    client = BlockumulusClient(deployment, service_cell_index=2)
    fastmoney = FastMoneyClient(client)
    run(deployment, fastmoney.faucet(50))
    result = run(deployment, fastmoney.transfer("0x" + "cd" * 20, 20))
    assert result.ok
    assert len(result.receipt.confirmations) == 4
    assert result.receipt.service_cell == deployment.cell(2).address


def test_duplicate_submission_rejected(deployment):
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    run(deployment, fastmoney.faucet(100))
    # Submitting the exact same signed envelope twice: the second admission
    # fails at the ledger (duplicate tx id).
    from repro.messages import Envelope, Opcode

    envelope = Envelope.create(
        signer=client.signer, recipient=client.service_cell.address,
        operation=Opcode.TX_SUBMIT,
        data={"contract": "fastmoney", "method": "transfer",
              "args": {"to": "0x" + "ab" * 20, "amount": 1}},
        timestamp=deployment.env.now, nonce=client.nonces.next(),
    )
    network = deployment.network
    network.send(client.node_name, client.service_cell.node_name, envelope, envelope.byte_size())
    network.send(client.node_name, client.service_cell.node_name, envelope, envelope.byte_size())
    deployment.env.run(until=deployment.env.now + 5)
    ledger_stats = deployment.cell(0).ledger.statistics()
    assert ledger_stats["executed"] >= 1
    balances = {
        cell.contracts.get("fastmoney").query("balance_of", {"account": "0x" + "ab" * 20})
        for cell in deployment.cells
    }
    assert balances == {1}
