"""The shard map, sharded deployment construction, and the shard digest."""

import pytest

from repro.contracts.community import FastMoney
from repro.core import DeploymentConfig, ShardMap, ShardingError, chain_shard_digest
from repro.core.lanes import AccessFootprint
from repro.core.sharding import NAMESPACE_SHARDED_CONTRACTS, _stable_shard
from tests.conftest import make_sharded_deployment


# ----------------------------------------------------------------------
# ShardMap
# ----------------------------------------------------------------------
def test_every_contract_maps_to_exactly_one_group():
    shard_map = ShardMap(4)
    for name in ("fastmoney", "ballot", "dividendpool", "anything.else", "x"):
        groups = {shard_map.shard_of_contract(name) for _ in range(5)}
        assert len(groups) == 1
        assert 0 <= groups.pop() < 4


def test_shard_assignment_is_stable_across_maps():
    assert ShardMap(8).shard_of_contract("fastmoney") == ShardMap(8).shard_of_contract(
        "fastmoney"
    )
    assert _stable_shard("contract/fastmoney", 8) == ShardMap(8).shard_of_contract("fastmoney")


def test_pins_override_the_hash_assignment():
    shard_map = ShardMap(4)
    hashed = shard_map.shard_of_contract("fastmoney@s2")
    shard_map.pin("fastmoney@s2", (hashed + 1) % 4)
    assert shard_map.shard_of_contract("fastmoney@s2") == (hashed + 1) % 4
    with pytest.raises(ShardingError):
        shard_map.pin("fastmoney@s2", 4)
    with pytest.raises(ShardingError):
        shard_map.pin("", 0)


def test_invalid_maps_and_names_are_rejected():
    with pytest.raises(ShardingError):
        ShardMap(0)
    with pytest.raises(ShardingError):
        ShardMap(2).shard_of_contract("")
    with pytest.raises(ShardingError):
        ShardMap(2).shard_of_cas_key("")


def test_cas_calls_route_by_blob_digest():
    shard_map = ShardMap(4)
    content = b"hello sharding"
    from repro.contracts.system.cas import ContentAddressableStorage

    digest = ContentAddressableStorage.content_hash(content)
    by_put = shard_map.route_call(
        "system.cas", "put", {"content_hex": "0x" + content.hex()}
    )
    by_digest = shard_map.route_call("system.cas", "release", {"digest": digest})
    assert by_put == by_digest == shard_map.shard_of_cas_key(digest)
    with pytest.raises(ShardingError):
        shard_map.route_call("system.cas", "release", {})
    with pytest.raises(ShardingError):
        shard_map.route_call("system.cas", "put", {"content_hex": "0xzz"})


def test_deployer_routes_by_the_deployed_contract_name():
    shard_map = ShardMap(4)
    assert shard_map.route_call(
        "system.deployer", "deploy", {"name": "mytoken"}
    ) == shard_map.shard_of_contract("mytoken")
    with pytest.raises(ShardingError):
        shard_map.route_call("system.deployer", "deploy", {})


def test_groups_for_footprint_spans_and_exclusive():
    shard_map = ShardMap(4)
    footprint = AccessFootprint(
        reads=frozenset({("a", "k1")}),
        writes=frozenset({("b", "k2")}),
        deltas=frozenset({("c", "k3")}),
    )
    groups = shard_map.groups_for_footprint(footprint)
    assert groups == frozenset(
        shard_map.shard_of_contract(name) for name in ("a", "b", "c")
    )
    assert shard_map.groups_for_footprint(AccessFootprint.exclusive_footprint()) is None


# ----------------------------------------------------------------------
# chain_shard_digest
# ----------------------------------------------------------------------
def test_shard_digest_chains_and_detects_any_change():
    history = [["0xaa", "0xbb"], ["0xcc", "0xdd"]]
    digest = chain_shard_digest("dep", 2, history)
    assert digest.startswith("0x") and len(digest) == 66
    assert chain_shard_digest("dep", 2, history) == digest
    # Any perturbation — a fingerprint, the order, the cycle count, the
    # deployment id — changes the digest.
    assert chain_shard_digest("dep", 2, [["0xaa", "0xbb"], ["0xcc", "0xee"]]) != digest
    assert chain_shard_digest("dep", 2, [["0xbb", "0xaa"], ["0xcc", "0xdd"]]) != digest
    assert chain_shard_digest("dep", 2, history[:1]) != digest
    assert chain_shard_digest("other", 2, history) != digest


def test_shard_digest_requires_one_fingerprint_per_group():
    with pytest.raises(ShardingError):
        chain_shard_digest("dep", 2, [["0xaa"]])


# ----------------------------------------------------------------------
# ShardedDeployment construction
# ----------------------------------------------------------------------
def test_single_shard_reuses_the_plain_deployment_untouched():
    deployment = make_sharded_deployment(1)
    assert deployment.shard_count == 1
    group = deployment.group(0)
    assert group.deployment.config.node_namespace == ""
    assert group.deployment.config.deployment_id == deployment.config.deployment_id
    assert [cell.node_name for cell in group.cells] == ["cell-0", "cell-1"]
    # The default contracts are all recorded as owned by group 0.
    assert set(deployment.contract_locations) == {"fastmoney", "ballot", "dividendpool"}
    assert set(deployment.contract_locations.values()) == {0}


def test_multi_shard_groups_are_namespaced_and_disjoint():
    deployment = make_sharded_deployment(3)
    assert deployment.shard_count == 3
    names = [cell.node_name for group in deployment.groups for cell in group.cells]
    assert len(names) == len(set(names)) == 6
    assert all(name.startswith(f"g{g}/") for g in range(3)
               for name in (deployment.group(g).cells[0].node_name,))
    ids = {group.deployment.config.deployment_id for group in deployment.groups}
    assert len(ids) == 3
    # Every default community contract lives on exactly one group, where
    # it is actually deployed; the other groups do not carry it.
    for name, owner in deployment.contract_locations.items():
        for group in deployment.groups:
            deployed = group.cells[0].contracts.contains(name)
            assert deployed == (group.index == owner)
    # All groups share one environment, network, and anchor chain.
    assert len({id(group.deployment.env) for group in deployment.groups}) == 1
    assert len({id(group.deployment.network) for group in deployment.groups}) == 1
    assert len({id(group.deployment.eth_node) for group in deployment.groups}) == 1


def test_shard_directory_is_installed_on_every_cell():
    deployment = make_sharded_deployment(2)
    for group in deployment.groups:
        for cell in group.cells:
            assert cell.shard_group == group.index


def test_group_of_contract_errors():
    deployment = make_sharded_deployment(2)
    with pytest.raises(ShardingError):
        deployment.group_of_contract("nope")
    for name in NAMESPACE_SHARDED_CONTRACTS:
        with pytest.raises(ShardingError):
            deployment.group_of_contract(name)


def test_deploy_contract_instances_pins_explicit_groups():
    deployment = make_sharded_deployment(2)
    placements = deployment.deploy_contract_instances(
        [FastMoney("fastmoney@s1")], group=1
    )
    assert placements == {"fastmoney@s1": 1}
    assert deployment.group(1).cells[0].contracts.contains("fastmoney@s1")
    assert not deployment.group(0).cells[0].contracts.contains("fastmoney@s1")
    assert deployment.shard_map.shard_of_contract("fastmoney@s1") == 1


def test_shard_count_validation():
    with pytest.raises(Exception):
        DeploymentConfig(shard_count=0)


def test_group_fingerprints_and_digest_agree_after_a_quiet_cycle():
    deployment = make_sharded_deployment(2)
    deployment.run_cycles(1)
    fingerprints = deployment.group_cycle_fingerprints(0)
    assert len(fingerprints) == 2
    digest = deployment.shard_digest(0)
    assert digest == chain_shard_digest(
        deployment.config.deployment_id, 2, [fingerprints]
    )
    with pytest.raises(ShardingError):
        deployment.shard_digest(-1)


def test_sharded_auditor_verifies_against_a_published_digest():
    from repro.audit import ShardedAuditor

    deployment = make_sharded_deployment(2)
    deployment.run_cycles(1)
    auditor = ShardedAuditor(deployment)
    published = deployment.shard_digest(0)
    report = auditor.verify_shard_digest(0, published=published)
    assert report.passed and report.details == published
    mismatch = auditor.verify_shard_digest(0, published="0x" + "00" * 32)
    assert not mismatch.passed
    assert mismatch.findings[0].kind == "shard_digest_mismatch"
