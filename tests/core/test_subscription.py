"""Client subscriptions and pricing."""

import pytest

from repro.core.subscription import (
    PricingPolicy,
    SubscriptionError,
    SubscriptionManager,
)
from repro.crypto.keys import PrivateKey

CLIENT = PrivateKey.from_seed("sub-client").address
OTHER = PrivateKey.from_seed("sub-other").address


def test_pricing_policy_costs():
    policy = PricingPolicy(price_per_mbyte=0.10, price_per_hour=0.5, activation_fee=1.0)
    assert policy.traffic_cost(2_000_000) == pytest.approx(0.2)
    assert policy.time_cost(1_800) == pytest.approx(0.25)


def test_subscribe_and_access():
    manager = SubscriptionManager(enforce=True)
    with pytest.raises(SubscriptionError):
        manager.check_access(CLIENT)
    manager.subscribe(CLIENT, now=0.0)
    manager.check_access(CLIENT)
    assert manager.is_subscribed(CLIENT)
    assert manager.subscribers() == [CLIENT]


def test_subscribe_is_idempotent():
    manager = SubscriptionManager()
    first = manager.subscribe(CLIENT, now=0.0)
    second = manager.subscribe(CLIENT, now=5.0)
    assert first is second


def test_enforcement_can_be_disabled():
    manager = SubscriptionManager(enforce=False)
    manager.check_access(CLIENT)  # must not raise


def test_unsubscribe_closes_access():
    manager = SubscriptionManager(enforce=True)
    manager.subscribe(CLIENT, now=0.0)
    manager.unsubscribe(CLIENT, now=10.0)
    assert not manager.is_subscribed(CLIENT)
    with pytest.raises(SubscriptionError):
        manager.check_access(CLIENT)


def test_unsubscribe_unknown_client_rejected():
    with pytest.raises(SubscriptionError):
        SubscriptionManager().unsubscribe(CLIENT, now=1.0)


def test_billing_accumulates_traffic_and_time():
    policy = PricingPolicy(price_per_mbyte=1.0, price_per_hour=3.6, activation_fee=2.0)
    manager = SubscriptionManager(policy=policy, enforce=True)
    manager.subscribe(CLIENT, now=0.0)
    manager.record_traffic(CLIENT, 500_000)
    manager.record_traffic(CLIENT, 500_000)
    manager.record_transaction(CLIENT)
    bill = manager.bill(CLIENT, now=3_600.0)
    # 2.0 activation + 1.0 traffic + 3.6 for one hour.
    assert bill == pytest.approx(6.6)
    assert manager.total_revenue(now=3_600.0) == pytest.approx(6.6)


def test_traffic_for_unknown_client_is_ignored():
    manager = SubscriptionManager()
    manager.record_traffic(OTHER, 1_000)
    manager.record_transaction(OTHER)
    with pytest.raises(SubscriptionError):
        manager.bill(OTHER, now=1.0)


def test_billing_stops_at_close_time():
    policy = PricingPolicy(price_per_hour=1.0)
    manager = SubscriptionManager(policy=policy)
    manager.subscribe(CLIENT, now=0.0)
    manager.unsubscribe(CLIENT, now=3_600.0)
    assert manager.bill(CLIENT, now=7_200.0) == pytest.approx(1.0)
