"""Unit coverage for the recovery plumbing: ledger sync, snapshot adoption,
membership quorums, and evidence verification on membership updates."""

import pytest

from repro.core import DataSnapshot, LedgerError, SnapshotError, TransactionLedger
from repro.core.consensus import ConsensusError, OverlayConsensus
from repro.core.config import SystemInvariants
from repro.crypto import PrivateKey
from repro.messages import EcdsaSigner, Envelope, ExclusionVote, Opcode
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def _signed_envelope(seed: str, timestamp: float = 0.0) -> Envelope:
    signer = EcdsaSigner.from_seed(f"recovery-unit/{seed}")
    return Envelope.create(
        signer=signer,
        recipient=PrivateKey.from_seed("recovery-unit/cell").address,
        operation=Opcode.TX_SUBMIT,
        data={"contract": "fastmoney", "method": "faucet", "args": {"amount": 1}},
        timestamp=timestamp,
        nonce=f"0x{abs(hash(seed)) % 10**12:012d}",
    )


def _invariants(addresses) -> SystemInvariants:
    return SystemInvariants(
        deployment_id="unit",
        cell_addresses=tuple(addresses),
        report_period=60.0,
        initial_timestamp=0.0,
    )


# ----------------------------------------------------------------------
# Ledger sync support
# ----------------------------------------------------------------------
def test_sync_segment_carries_summary_envelope_and_result(env):
    ledger = TransactionLedger(env, "cell-a")
    envelope = _signed_envelope("tx1")
    entry = ledger.admit(envelope, cycle=0)
    ledger.mark_executed(entry.tx_id, "fastmoney", {"minted": 1}, b"\x11" * 32)
    segment = ledger.sync_segment(0)
    assert len(segment) == 1
    item = segment[0]
    assert item["summary"]["tx_id"] == entry.tx_id
    assert item["summary"]["fingerprint"] == "0x" + "11" * 32
    assert item["result"] == {"minted": 1}
    assert Envelope.from_wire(item["envelope"]).payload.hash_hex() == entry.tx_id
    # since_sequence past the head yields nothing.
    assert ledger.sync_segment(1) == []


def test_backfill_reconstructs_a_peer_entry(env):
    donor = TransactionLedger(env, "donor")
    envelope = _signed_envelope("tx2")
    entry = donor.admit(envelope, cycle=3)
    donor.mark_executed(entry.tx_id, "fastmoney", {"ok": True}, b"\x22" * 32)
    item = donor.sync_segment(0)[0]

    rejoiner = TransactionLedger(env, "rejoiner")
    restored = rejoiner.backfill(
        Envelope.from_wire(item["envelope"]), item["summary"], item["result"]
    )
    assert restored.status == "executed"
    assert restored.cycle == 3
    assert restored.fingerprint == b"\x22" * 32
    assert rejoiner.sync_digest() == donor.sync_digest()


def test_backfill_rejects_sequence_gaps_and_forged_tx_ids(env):
    donor = TransactionLedger(env, "donor")
    first = donor.admit(_signed_envelope("tx3"), cycle=0)
    second = donor.admit(_signed_envelope("tx4"), cycle=0)
    items = donor.sync_segment(0)

    rejoiner = TransactionLedger(env, "rejoiner")
    with pytest.raises(LedgerError):
        # Skipping sequence 0 must be detected as divergence.
        rejoiner.backfill(
            Envelope.from_wire(items[1]["envelope"]), items[1]["summary"], None
        )
    mismatched = dict(items[0]["summary"])
    mismatched["tx_id"] = second.tx_id
    with pytest.raises(LedgerError):
        rejoiner.backfill(Envelope.from_wire(items[0]["envelope"]), mismatched, None)
    assert first.tx_id != second.tx_id


def test_entry_at_bounds(env):
    ledger = TransactionLedger(env, "cell-a")
    with pytest.raises(LedgerError):
        ledger.entry_at(0)
    entry = ledger.admit(_signed_envelope("tx5"), cycle=0)
    assert ledger.entry_at(0) is entry
    with pytest.raises(LedgerError):
        ledger.entry_at(-1)


# ----------------------------------------------------------------------
# Snapshot wire round-trip and adoption
# ----------------------------------------------------------------------
def _snapshot(cycle: int) -> DataSnapshot:
    return DataSnapshot(
        cycle=cycle,
        taken_at=float(cycle * 60),
        cell_id="donor",
        contract_fingerprints={"fastmoney": b"\x33" * 32},
        excluded_contracts=(),
        fingerprint=b"\x44" * 32,
        state_export={"fastmoney": {"balances/alice": 7}},
        first_sequence=0,
        last_sequence=4,
    )


def test_snapshot_from_wire_round_trip():
    original = _snapshot(2)
    rebuilt = DataSnapshot.from_wire(original.to_wire(include_state=True), cell_id="rejoiner")
    assert rebuilt.cycle == 2
    assert rebuilt.cell_id == "rejoiner"
    assert rebuilt.contract_fingerprints == original.contract_fingerprints
    assert rebuilt.fingerprint == original.fingerprint
    assert rebuilt.last_sequence == 4
    assert rebuilt.materialized_state() == {"fastmoney": {"balances/alice": 7}}
    with pytest.raises(SnapshotError):
        DataSnapshot.from_wire({"cycle": "x"})


def test_snapshot_engine_adopt_reanchors_the_cycle_sequence():
    from repro.contracts.registry import ContractRegistry
    from repro.core import SnapshotEngine

    engine = SnapshotEngine("rejoiner", ContractRegistry())
    engine.adopt(_snapshot(5))
    assert engine.latest_cycle == 5
    assert engine.has(5)
    # Taking the next snapshot after adoption works; re-adopting stale ones fails.
    engine.take_snapshot(cycle=6, timestamp=360.0, first_sequence=5, last_sequence=5)
    assert engine.latest_cycle == 6
    with pytest.raises(SnapshotError):
        engine.adopt(_snapshot(6))


# ----------------------------------------------------------------------
# Consensus quorum arithmetic
# ----------------------------------------------------------------------
def test_quorum_sizes():
    assert OverlayConsensus.quorum_size(1) == 1
    assert OverlayConsensus.quorum_size(2) == 2
    assert OverlayConsensus.quorum_size(3) == 2
    assert OverlayConsensus.quorum_size(4) == 3
    with pytest.raises(ConsensusError):
        OverlayConsensus.quorum_size(0)


def test_exclusion_and_readmission_quorums_ignore_the_subject():
    addresses = [PrivateKey.from_seed(f"q/{i}").address for i in range(4)]
    consensus = OverlayConsensus(_invariants(addresses))
    suspect = addresses[3]
    # 3 voters besides the suspect -> strict majority is 2.
    assert consensus.exclusion_quorum(suspect) == 2
    consensus.exclude(suspect, cycle=0)
    assert not consensus.is_active(suspect)
    # Electorate unchanged after the exclusion (suspect was never a voter).
    assert consensus.readmission_quorum(suspect) == 2
    consensus.readmit(suspect)
    assert consensus.is_active(suspect)


def test_vote_evidence_signature_flip_is_rejected():
    signer = EcdsaSigner.from_seed("q/evidence")
    suspect = PrivateKey.from_seed("q/suspect").address
    vote = ExclusionVote.create(signer, suspect=suspect, cycle=9, agree=True)
    assert vote.verify()
    tampered = ExclusionVote(
        voter=vote.voter,
        suspect=vote.suspect,
        cycle=vote.cycle + 1,  # replay into a different cycle
        agree=vote.agree,
        signature=vote.signature,
        scheme=vote.scheme,
    )
    assert not tampered.verify()
