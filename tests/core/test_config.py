"""System invariants and deployment configuration validation."""

import pytest

from repro.core.config import ConfigError, DeploymentConfig, SystemInvariants
from repro.crypto.keys import PrivateKey

CELLS = tuple(PrivateKey.from_seed(f"cfg-cell-{i}").address for i in range(3))


def make_invariants(**overrides):
    fields = dict(
        deployment_id="dep",
        cell_addresses=CELLS,
        report_period=600.0,
        initial_timestamp=0.0,
    )
    fields.update(overrides)
    return SystemInvariants(**fields)


def test_valid_invariants():
    invariants = make_invariants()
    assert invariants.consortium_size == 3
    assert invariants.is_cell(CELLS[0])
    assert not invariants.is_cell(PrivateKey.from_seed("outsider").address)


def test_invariants_validation():
    with pytest.raises(ConfigError):
        make_invariants(deployment_id="")
    with pytest.raises(ConfigError):
        make_invariants(cell_addresses=())
    with pytest.raises(ConfigError):
        make_invariants(cell_addresses=(CELLS[0], CELLS[0]))
    with pytest.raises(ConfigError):
        make_invariants(report_period=0)
    with pytest.raises(ConfigError):
        make_invariants(forwarding_deadline=0)
    with pytest.raises(ConfigError):
        make_invariants(miss_threshold=0)


def test_deployment_config_defaults_are_valid():
    config = DeploymentConfig()
    assert config.consortium_size == 2
    assert config.cell_name(3) == "cell-3"


def test_deployment_config_validation():
    with pytest.raises(ConfigError):
        DeploymentConfig(consortium_size=0)
    with pytest.raises(ConfigError):
        DeploymentConfig(signature_scheme="rsa")
    with pytest.raises(ConfigError):
        DeploymentConfig(report_period=-5)
    with pytest.raises(ConfigError):
        DeploymentConfig(snapshots_retained=1)


def test_make_invariants_freezes_cells():
    config = DeploymentConfig(consortium_size=3, report_period=120.0)
    invariants = config.make_invariants(list(CELLS), t0=10.0)
    assert invariants.cell_addresses == CELLS
    assert invariants.report_period == 120.0
    assert invariants.initial_timestamp == 10.0
