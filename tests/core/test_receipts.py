"""Confirmations and aggregated multi-signature receipts."""

import dataclasses

import pytest

from repro.core.receipts import AggregatedReceipt, Confirmation, ReceiptError
from repro.messages import EcdsaSigner, SimulatedSigner

CELL_A = EcdsaSigner.from_seed("receipt-cell-a")
CELL_B = EcdsaSigner.from_seed("receipt-cell-b")
TX_ID = "0x" + "11" * 32
FP = "0x" + "22" * 32


def make_confirmation(signer=CELL_A, status="executed", fingerprint=FP):
    return Confirmation.create(
        signer, tx_id=TX_ID, contract="fastmoney", fingerprint_hex=fingerprint,
        status=status, timestamp=3.0,
    )


def make_receipt(confirmations):
    return AggregatedReceipt(
        tx_id=TX_ID, contract="fastmoney", method="transfer", result={"amount": 5},
        service_cell=CELL_A.address, fingerprint_hex=FP, cycle=1,
        submitted_at=1.0, completed_at=3.5, confirmations=confirmations,
    )


def test_confirmation_signature_verifies():
    confirmation = make_confirmation()
    assert confirmation.verify()


def test_confirmation_wire_roundtrip():
    confirmation = make_confirmation()
    restored = Confirmation.from_wire(confirmation.to_wire())
    assert restored.verify()
    assert restored == confirmation


def test_tampered_confirmation_fails():
    confirmation = make_confirmation()
    tampered = dataclasses.replace(confirmation, fingerprint_hex="0x" + "33" * 32)
    assert not tampered.verify()


def test_simulated_scheme_confirmation():
    signer = SimulatedSigner("receipt-sim-cell")
    confirmation = Confirmation.create(
        signer, tx_id=TX_ID, contract="cas", fingerprint_hex=FP, status="executed", timestamp=1.0
    )
    assert confirmation.scheme == "sim" and confirmation.verify()


def test_malformed_confirmation_wire_rejected():
    with pytest.raises(ReceiptError):
        Confirmation.from_wire({"cell": "0x00"})


def test_receipt_verifies_with_matching_confirmations():
    receipt = make_receipt([make_confirmation(CELL_A), make_confirmation(CELL_B)])
    assert receipt.verify()
    assert receipt.verify(expected_cells=[CELL_A.address, CELL_B.address])
    assert receipt.latency == pytest.approx(2.5)
    assert set(receipt.cells()) == {CELL_A.address.hex(), CELL_B.address.hex()}


def test_receipt_rejects_missing_expected_cell():
    receipt = make_receipt([make_confirmation(CELL_A)])
    assert not receipt.verify(expected_cells=[CELL_A.address, CELL_B.address])


def test_receipt_rejects_mismatched_fingerprint():
    bad = make_confirmation(CELL_B, fingerprint="0x" + "99" * 32)
    receipt = make_receipt([make_confirmation(CELL_A), bad])
    assert not receipt.verify()


def test_receipt_rejects_rejected_confirmation():
    receipt = make_receipt([make_confirmation(CELL_A, status="rejected")])
    assert not receipt.verify()


def test_empty_receipt_does_not_verify():
    assert not make_receipt([]).verify()


def test_receipt_wire_roundtrip_and_size():
    receipt = make_receipt([make_confirmation(CELL_A), make_confirmation(CELL_B)])
    restored = AggregatedReceipt.from_wire(receipt.to_wire())
    assert restored.verify()
    assert restored.tx_id == receipt.tx_id
    assert receipt.byte_size() > 500


def test_malformed_receipt_wire_rejected():
    with pytest.raises(ReceiptError):
        AggregatedReceipt.from_wire({"tx_id": TX_ID})
