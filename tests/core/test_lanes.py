"""The conflict-aware lane engine: footprints, partition, schedule, gate."""

import pytest

from repro.contracts import AccessSet, ContractRegistry, FastMoney
from repro.contracts.community.ballot import Ballot
from repro.contracts.system.cas import ContentAddressableStorage
from repro.core.executor import TransactionExecutor
from repro.core.lanes import (
    AccessFootprint,
    LaneError,
    LaneSchedule,
    footprint_for_entry,
    partition_footprints,
)
from repro.core.ledger import TransactionLedger
from repro.crypto.keys import PrivateKey
from repro.messages import EcdsaSigner, Envelope, Opcode
from repro.sim import ConflictGate, Environment

CELL = PrivateKey.from_seed("lanes-cell").address
ALICE = EcdsaSigner.from_seed("lanes-alice")
BOB = EcdsaSigner.from_seed("lanes-bob")


def build_registry(balance=1_000):
    registry = ContractRegistry()
    registry.register(ContentAddressableStorage(ContentAddressableStorage.DEFAULT_NAME))
    registry.register(
        FastMoney(
            "fastmoney",
            params={
                "genesis_balances": {
                    ALICE.address.hex(): balance,
                    BOB.address.hex(): balance,
                }
            },
        )
    )
    registry.register(Ballot(Ballot.DEFAULT_NAME))
    return registry


def admit(ledger, signer, data, nonce):
    envelope = Envelope.create(
        signer=signer, recipient=CELL, operation=Opcode.TX_SUBMIT,
        data=data, timestamp=1.0, nonce=nonce,
    )
    return ledger.admit(envelope, cycle=0)


def transfer(to, amount):
    return {"contract": "fastmoney", "method": "transfer",
            "args": {"to": to, "amount": amount}}


@pytest.fixture
def setup():
    registry = build_registry()
    ledger = TransactionLedger(Environment(), "cell-0")
    executor = TransactionExecutor("cell-0", registry)
    return registry, ledger, executor


# ----------------------------------------------------------------------
# Footprints
# ----------------------------------------------------------------------
def test_same_sender_transfers_conflict(setup):
    registry, ledger, _ = setup
    a = admit(ledger, ALICE, transfer("0x" + "aa" * 20, 1), "0x1")
    b = admit(ledger, ALICE, transfer("0x" + "bb" * 20, 1), "0x2")
    fa, fb = (footprint_for_entry(entry, registry) for entry in (a, b))
    assert not fa.exclusive and not fb.exclusive
    assert fa.conflicts_with(fb)


def test_disjoint_transfers_do_not_conflict(setup):
    registry, ledger, _ = setup
    a = admit(ledger, ALICE, transfer("0x" + "aa" * 20, 1), "0x1")
    b = admit(ledger, BOB, transfer("0x" + "bb" * 20, 1), "0x2")
    fa, fb = (footprint_for_entry(entry, registry) for entry in (a, b))
    assert not fa.conflicts_with(fb)
    # The shared stats/transfers counter is a delta on both sides — the
    # only sanctioned overlap.
    shared = ("fastmoney", "stats/transfers")
    assert shared in fa.deltas and shared in fb.deltas


def test_writer_conflicts_with_delta_recipient(setup):
    registry, ledger, _ = setup
    hot = "0x" + "cc" * 20
    # BOB pays the hot account (delta on its balance); a transfer *from*
    # the hot account would write the same key.  Model it via ALICE paying
    # hot too — delta/delta, no conflict — then check write-vs-delta using
    # hand-built footprints.
    a = admit(ledger, ALICE, transfer(hot, 1), "0x1")
    b = admit(ledger, BOB, transfer(hot, 1), "0x2")
    fa, fb = (footprint_for_entry(entry, registry) for entry in (a, b))
    assert not fa.conflicts_with(fb)
    writer = AccessFootprint(writes=frozenset({("fastmoney", f"balance/{hot}")}))
    assert writer.conflicts_with(fa) and writer.conflicts_with(fb)


def test_unplanned_method_falls_back_to_exclusive(setup):
    registry, ledger, _ = setup
    # Ballot declares plans for its methods now; votes get a precise
    # footprint and votes for distinct choices do not conflict.
    a = admit(
        ledger, ALICE,
        {"contract": Ballot.DEFAULT_NAME, "method": "vote",
         "args": {"election_id": "e", "choice": "x"}},
        "0x1",
    )
    b = admit(
        ledger, BOB,
        {"contract": Ballot.DEFAULT_NAME, "method": "vote",
         "args": {"election_id": "e", "choice": "y"}},
        "0x2",
    )
    fa, fb = (footprint_for_entry(entry, registry) for entry in (a, b))
    assert not fa.exclusive and not fb.exclusive
    assert not fa.conflicts_with(fb)
    # A method without a plan branch still degrades to exclusive: the
    # dividend pool's whole-store sweep is the deliberate example.
    sweep = admit(
        ledger, ALICE,
        {"contract": "dividendpool", "method": "declare_dividend",
         "args": {"rate_percent": 10, "claim_deadline": 100.0}},
        "0x3",
    )
    footprint = footprint_for_entry(sweep, registry)
    assert footprint.exclusive
    assert footprint.conflicts_with(AccessFootprint())


def test_malformed_and_unknown_calls_are_exclusive(setup):
    registry, ledger, _ = setup
    missing = admit(ledger, ALICE, {"method": "x", "args": {}}, "0x1")
    unknown = admit(ledger, ALICE, {"contract": "ghost", "method": "x", "args": {}}, "0x2")
    assert footprint_for_entry(missing, registry).exclusive
    assert footprint_for_entry(unknown, registry).exclusive


def test_access_set_conflict_semantics():
    read = AccessSet(reads=frozenset({"k"}))
    write = AccessSet(writes=frozenset({"k"}))
    delta = AccessSet(deltas=frozenset({"k"}))
    assert not read.conflicts_with(read)
    assert write.conflicts_with(read) and read.conflicts_with(write)
    assert write.conflicts_with(write)
    assert write.conflicts_with(delta) and delta.conflicts_with(write)
    assert delta.conflicts_with(read) and read.conflicts_with(delta)
    assert not delta.conflicts_with(delta)
    assert AccessSet(writes=frozenset({"a"})).covers_mutations_of(delta) is False
    assert AccessSet(writes=frozenset({"k"})).covers_mutations_of(delta)


# ----------------------------------------------------------------------
# Wave partition
# ----------------------------------------------------------------------
def test_partition_respects_lane_width():
    free = [AccessFootprint(writes=frozenset({("c", str(i))})) for i in range(10)]
    waves = partition_footprints(free, lanes=4)
    assert all(len(wave) <= 4 for wave in waves)
    assert sorted(index for wave in waves for index in wave) == list(range(10))


def test_partition_orders_conflicting_entries_across_waves():
    hot = AccessFootprint(
        reads=frozenset({("c", "hot")}), writes=frozenset({("c", "hot")})
    )
    cold = AccessFootprint(writes=frozenset({("c", "cold")}))
    waves = partition_footprints([hot, cold, hot, hot], lanes=8)
    wave_of = {index: n for n, wave in enumerate(waves) for index in wave}
    # The three hot transactions land in three distinct, increasing waves.
    assert wave_of[0] < wave_of[2] < wave_of[3]
    # The cold one shares the first wave with the first hot one.
    assert wave_of[1] == wave_of[0]


def test_partition_rejects_zero_lanes():
    with pytest.raises(LaneError):
        partition_footprints([], lanes=0)


# ----------------------------------------------------------------------
# Schedule execution (offline drain)
# ----------------------------------------------------------------------
def run_workload_entries(ledger):
    hot = "0x" + "dd" * 20
    entries = [
        admit(ledger, ALICE, transfer("0x" + "aa" * 20, 5), "0xa1"),
        admit(ledger, BOB, transfer("0x" + "bb" * 20, 7), "0xb1"),
        admit(ledger, ALICE, transfer(hot, 3), "0xa2"),
        admit(ledger, BOB, transfer(hot, 2), "0xb2"),
        admit(ledger, ALICE, {"contract": "fastmoney", "method": "burn",
                              "args": {"amount": 1}}, "0xa3"),
        admit(ledger, BOB, {"contract": "system.cas", "method": "put",
                            "args": {"content_hex": "0x" + b"blob".hex()}}, "0xb3"),
    ]
    return entries


def serial_fingerprints(entries):
    registry = build_registry()
    executor = TransactionExecutor("cell-s", registry)
    outcomes = [executor.execute_safely(entry) for entry in entries]
    return {
        name: registry.get(name).fingerprint_hex() for name in registry.names()
    }, [(o.tx_id, o.status, o.execution_fingerprint_hex()) for o in outcomes]


@pytest.mark.parametrize("threads", [None, 4])
def test_schedule_execution_matches_serial(setup, threads):
    _registry, ledger, _ = setup
    entries = run_workload_entries(ledger)
    expected_state, expected_outcomes = serial_fingerprints(entries)

    registry = build_registry()
    executor = TransactionExecutor("cell-p", registry)
    schedule = LaneSchedule.plan(entries, registry, lanes=4)
    assert schedule.wave_count >= 2          # same-sender chains force waves
    assert schedule.max_wave_width > 1       # and some parallelism survives
    outcomes = schedule.execute(executor, ledger=ledger, threads=threads)

    got_state = {name: registry.get(name).fingerprint_hex() for name in registry.names()}
    assert got_state == expected_state
    assert [(o.tx_id, o.status, o.execution_fingerprint_hex()) for o in outcomes] \
        == expected_outcomes
    # Commit order: the ledger was marked in canonical sequence order.
    for entry, outcome in zip(sorted(entries, key=lambda e: e.sequence), outcomes):
        assert entry.tx_id == outcome.tx_id
        assert entry.status == outcome.status


def test_schedule_replay_order_reproduces_serial_state(setup):
    _registry, ledger, _ = setup
    entries = run_workload_entries(ledger)
    expected_state, _ = serial_fingerprints(entries)
    registry = build_registry()
    schedule = LaneSchedule.plan(entries, registry, lanes=3)
    executor = TransactionExecutor("cell-r", registry)
    for entry in schedule.replay_order():
        executor.execute_safely(entry)
    got = {name: registry.get(name).fingerprint_hex() for name in registry.names()}
    assert got == expected_state


def test_schedule_statistics(setup):
    registry, ledger, _ = setup
    entries = run_workload_entries(ledger)
    schedule = LaneSchedule.plan(entries, registry, lanes=4)
    stats = schedule.statistics()
    assert stats["transactions"] == len(entries)
    assert stats["lanes"] == 4
    assert stats["waves"] == schedule.wave_count
    assert stats["exclusive_fallbacks"] == 0
    assert schedule.conflict_pairs() >= 2


# ----------------------------------------------------------------------
# ConflictGate (the simulated-lane primitive)
# ----------------------------------------------------------------------
def test_conflict_gate_blocks_conflicting_tokens():
    env = Environment()
    gate = ConflictGate(env, capacity=4, compatible=lambda a, b: a[1] != b[1],
                        order_key=lambda token: token[0])
    log = []

    def holder(token, hold):
        yield gate.request(token)
        log.append(("grant", token[0], env.now))
        yield env.timeout(hold)
        gate.release(token)

    env.process(holder((0, "x"), 5.0))
    env.process(holder((1, "x"), 1.0))   # conflicts with 0: waits for it
    env.process(holder((2, "y"), 1.0))   # compatible: overtakes the waiter
    env.run(until=20.0)
    grants = {seq: at for _, seq, at in log}
    assert grants[0] == 0.0 and grants[2] == 0.0
    assert grants[1] == pytest.approx(5.0)
    assert gate.conflict_deferrals > 0
    assert gate.in_use == 0 and gate.queue_length == 0


def test_conflict_gate_capacity_and_order():
    env = Environment()
    gate = ConflictGate(env, capacity=1, compatible=lambda a, b: True,
                        order_key=lambda token: token)
    order = []

    def holder(token):
        yield gate.request(token)
        order.append(token)
        yield env.timeout(1.0)
        gate.release(token)

    # Submitted out of order at t=0; the gate grants by order key.
    for token in (3, 1, 2):
        env.process(holder(token))
    env.run(until=10.0)
    assert order[0] == 3                 # first request grabs the free slot
    assert order[1:] == [1, 2]           # waiters drain in key order
    assert gate.capacity_deferrals > 0


def test_conflict_gate_rejects_bad_release():
    env = Environment()
    gate = ConflictGate(env, capacity=1, compatible=lambda a, b: True)
    from repro.sim import SimulationError

    with pytest.raises(SimulationError):
        gate.release("never-held")


def test_lane_scheduler_lane_indices_are_unique_while_held(setup):
    from repro.core.lanes import LaneScheduler

    registry, ledger, _ = setup
    env = Environment()
    scheduler = LaneScheduler(env, lanes=3, registry=registry)
    entries = [
        admit(ledger, EcdsaSigner.from_seed(f"unique-{i}"), transfer("0x" + "ee" * 20, 1), f"0xe{i}")
        for i in range(4)
    ]
    held = {}
    first = entries[0]
    grant = scheduler.acquire(first)
    env.run(until=0.0)
    assert grant.triggered
    held[first.sequence] = scheduler.granted(first)
    # Release and re-grant cycles must never hand out a lane index that is
    # still held by a running invocation (the old round-robin counter did).
    for entry in entries[1:]:
        grant = scheduler.acquire(entry)
        env.run(until=env.now)
        assert grant.triggered
        lane = scheduler.granted(entry)
        assert lane not in held.values(), "lane index collided with a held lane"
        scheduler.release(entry)
    assert held[first.sequence] == 0
    scheduler.release(first)
    assert scheduler.statistics()["in_flight"] == 0
