"""Data snapshots and the snapshot engine."""

import pytest

from repro.contracts import ContractRegistry, FastMoney, InvocationContext
from repro.core.snapshot import SnapshotEngine, SnapshotError
from repro.crypto.fingerprint import snapshot_fingerprint
from repro.crypto.keys import PrivateKey

ALICE = PrivateKey.from_seed("snap-alice").address


@pytest.fixture
def registry():
    reg = ContractRegistry()
    reg.register(FastMoney("fastmoney"))
    return reg


@pytest.fixture
def engine(registry):
    return SnapshotEngine("cell-0", registry, retain=3)


def mutate(registry, tx_id="0x1"):
    contract = registry.get("fastmoney")
    ctx = InvocationContext(sender=ALICE, tx_id=tx_id, timestamp=1.0, cell_id="cell-0", cycle=0)
    contract.invoke(ctx, "faucet", {"amount": 10})


def test_snapshot_contains_contract_fingerprints(engine, registry):
    snapshot = engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=5)
    assert "fastmoney" in snapshot.contract_fingerprints
    assert snapshot.fingerprint == snapshot_fingerprint(snapshot.contract_fingerprints)
    assert snapshot.fingerprint_hex().startswith("0x")
    assert snapshot.contract_fingerprint_hex("fastmoney").startswith("0x")
    assert "fastmoney" in snapshot.state_export


def test_snapshot_changes_with_state(engine, registry):
    first = engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    mutate(registry)
    second = engine.take_snapshot(cycle=1, timestamp=20.0, first_sequence=1, last_sequence=1)
    assert first.fingerprint != second.fingerprint


def test_snapshot_identical_for_identical_state(registry):
    engine_a = SnapshotEngine("cell-0", registry, retain=3)
    other_registry = ContractRegistry()
    other_registry.register(FastMoney("fastmoney"))
    engine_b = SnapshotEngine("cell-1", other_registry, retain=3)
    mutate(registry, "0xsame")
    mutate(other_registry, "0xsame")
    a = engine_a.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    b = engine_b.take_snapshot(cycle=0, timestamp=11.0, first_sequence=0, last_sequence=0)
    assert a.fingerprint == b.fingerprint


def test_excluded_contract_left_out(engine, registry):
    registry.exclude("fastmoney")
    snapshot = engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    assert "fastmoney" not in snapshot.contract_fingerprints
    assert snapshot.excluded_contracts == ("fastmoney",)


def test_out_of_order_cycles_rejected(engine):
    engine.take_snapshot(cycle=1, timestamp=10.0, first_sequence=0, last_sequence=0)
    with pytest.raises(SnapshotError):
        engine.take_snapshot(cycle=1, timestamp=20.0, first_sequence=0, last_sequence=0)
    with pytest.raises(SnapshotError):
        engine.take_snapshot(cycle=0, timestamp=30.0, first_sequence=0, last_sequence=0)


def test_retention_pruning(engine):
    for cycle in range(5):
        engine.take_snapshot(cycle=cycle, timestamp=float(cycle), first_sequence=0, last_sequence=0)
    assert engine.retained_cycles() == [2, 3, 4]
    assert engine.latest_cycle == 4
    assert engine.has(4) and not engine.has(0)
    with pytest.raises(SnapshotError):
        engine.get(0)


def test_latest_requires_a_snapshot(registry):
    engine = SnapshotEngine("cell-0", registry)
    with pytest.raises(SnapshotError):
        engine.latest()
    assert engine.latest_cycle is None


def test_minimum_retention_enforced(registry):
    with pytest.raises(SnapshotError):
        SnapshotEngine("cell-0", registry, retain=1)


def test_wire_form_and_storage_accounting(engine, registry):
    mutate(registry)
    engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    wire = engine.latest().to_wire()
    assert wire["cycle"] == 0 and "state_export" in wire
    slim = engine.latest().to_wire(include_state=False)
    assert "state_export" not in slim
    assert engine.storage_bytes() > 0
