"""Data snapshots and the snapshot engine."""

import pytest

from repro.contracts import ContractRegistry, FastMoney, InvocationContext
from repro.core.snapshot import SnapshotEngine, SnapshotError
from repro.crypto.fingerprint import snapshot_fingerprint
from repro.crypto.keys import PrivateKey

ALICE = PrivateKey.from_seed("snap-alice").address


@pytest.fixture
def registry():
    reg = ContractRegistry()
    reg.register(FastMoney("fastmoney"))
    return reg


@pytest.fixture
def engine(registry):
    return SnapshotEngine("cell-0", registry, retain=3)


def mutate(registry, tx_id="0x1"):
    contract = registry.get("fastmoney")
    ctx = InvocationContext(sender=ALICE, tx_id=tx_id, timestamp=1.0, cell_id="cell-0", cycle=0)
    contract.invoke(ctx, "faucet", {"amount": 10})


def test_snapshot_contains_contract_fingerprints(engine, registry):
    snapshot = engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=5)
    assert "fastmoney" in snapshot.contract_fingerprints
    assert snapshot.fingerprint == snapshot_fingerprint(snapshot.contract_fingerprints)
    assert snapshot.fingerprint_hex().startswith("0x")
    assert snapshot.contract_fingerprint_hex("fastmoney").startswith("0x")
    assert "fastmoney" in snapshot.state_export


def test_snapshot_changes_with_state(engine, registry):
    first = engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    mutate(registry)
    second = engine.take_snapshot(cycle=1, timestamp=20.0, first_sequence=1, last_sequence=1)
    assert first.fingerprint != second.fingerprint


def test_snapshot_identical_for_identical_state(registry):
    engine_a = SnapshotEngine("cell-0", registry, retain=3)
    other_registry = ContractRegistry()
    other_registry.register(FastMoney("fastmoney"))
    engine_b = SnapshotEngine("cell-1", other_registry, retain=3)
    mutate(registry, "0xsame")
    mutate(other_registry, "0xsame")
    a = engine_a.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    b = engine_b.take_snapshot(cycle=0, timestamp=11.0, first_sequence=0, last_sequence=0)
    assert a.fingerprint == b.fingerprint


def test_excluded_contract_left_out(engine, registry):
    registry.exclude("fastmoney")
    snapshot = engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    assert "fastmoney" not in snapshot.contract_fingerprints
    assert snapshot.excluded_contracts == ("fastmoney",)


def test_out_of_order_cycles_rejected(engine):
    engine.take_snapshot(cycle=1, timestamp=10.0, first_sequence=0, last_sequence=0)
    with pytest.raises(SnapshotError):
        engine.take_snapshot(cycle=1, timestamp=20.0, first_sequence=0, last_sequence=0)
    with pytest.raises(SnapshotError):
        engine.take_snapshot(cycle=0, timestamp=30.0, first_sequence=0, last_sequence=0)


def test_retention_pruning(engine):
    for cycle in range(5):
        engine.take_snapshot(cycle=cycle, timestamp=float(cycle), first_sequence=0, last_sequence=0)
    assert engine.retained_cycles() == [2, 3, 4]
    assert engine.latest_cycle == 4
    assert engine.has(4) and not engine.has(0)
    with pytest.raises(SnapshotError):
        engine.get(0)


def test_latest_requires_a_snapshot(registry):
    engine = SnapshotEngine("cell-0", registry)
    with pytest.raises(SnapshotError):
        engine.latest()
    assert engine.latest_cycle is None


def test_minimum_retention_enforced(registry):
    with pytest.raises(SnapshotError):
        SnapshotEngine("cell-0", registry, retain=1)


def test_wire_form_and_storage_accounting(engine, registry):
    mutate(registry)
    engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    wire = engine.latest().to_wire()
    assert wire["cycle"] == 0 and "state_export" in wire
    slim = engine.latest().to_wire(include_state=False)
    assert "state_export" not in slim
    assert engine.storage_bytes() > 0


# ----------------------------------------------------------------------
# Copy-on-write state exports
# ----------------------------------------------------------------------
def test_snapshot_export_is_lazy_until_downloaded(engine, registry):
    mutate(registry)
    snapshot = engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    assert not snapshot.state_export.materialized
    # Membership checks do not force a copy either.
    assert "fastmoney" in snapshot.state_export
    assert not snapshot.state_export.materialized
    # The download (wire form) materializes the frozen export.
    wire = snapshot.to_wire()
    assert snapshot.state_export.materialized
    assert wire["state_export"]["fastmoney"]


def test_mutation_after_snapshot_does_not_change_the_export(engine, registry):
    mutate(registry, "0xbefore")
    snapshot = engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    # An auditor downloading before and after later mutations must see the
    # same frozen state; mutate *before* the first download to exercise the
    # copy-on-write path rather than the cached-materialization path.
    mutate(registry, "0xafter")
    exported = snapshot.to_wire()["state_export"]["fastmoney"]
    fresh = FastMoney("fastmoney")
    fresh.restore_state(exported)
    assert fresh.fingerprint() == snapshot.contract_fingerprints["fastmoney"]
    assert fresh.query("balance_of", {"account": ALICE.hex()}) == 10
    # The live contract has moved on.
    assert registry.get("fastmoney").query("balance_of", {"account": ALICE.hex()}) == 20


def test_pruned_snapshot_releases_its_export(engine, registry):
    store = registry.get("fastmoney").store
    for cycle in range(5):
        engine.take_snapshot(cycle=cycle, timestamp=float(cycle), first_sequence=0, last_sequence=0)
    # Only the retained snapshots still track the store.
    assert store.pending_export_count == 3
    assert engine.retained_cycles() == [2, 3, 4]


def test_storage_bytes_cached_per_snapshot(engine, registry, monkeypatch):
    from repro.encoding import canonical_json

    mutate(registry)
    engine.take_snapshot(cycle=0, timestamp=10.0, first_sequence=0, last_sequence=0)
    engine.take_snapshot(cycle=1, timestamp=20.0, first_sequence=1, last_sequence=1)
    calls = {"count": 0}
    original = canonical_json.dump_bytes

    def counting_dump(obj):
        calls["count"] += 1
        return original(obj)

    monkeypatch.setattr(canonical_json, "dump_bytes", counting_dump)
    first = engine.storage_bytes()
    serializations_first_pass = calls["count"]
    second = engine.storage_bytes()
    assert first == second > 0
    # The second call served every size from the cache.
    assert calls["count"] == serializations_first_pass
