"""The deterministic transaction executor."""

import pytest

from repro.contracts import BContractError, ContractRegistry, FastMoney, bcontract_view
from repro.contracts.system.cas import ContentAddressableStorage
from repro.core.executor import TransactionExecutor
from repro.core.ledger import TransactionLedger
from repro.crypto.keys import PrivateKey
from repro.messages import EcdsaSigner, Envelope, Opcode
from repro.sim import Environment

CLIENT = EcdsaSigner.from_seed("exec-client")
CELL = PrivateKey.from_seed("exec-cell").address


@pytest.fixture
def setup():
    registry = ContractRegistry()
    registry.register(ContentAddressableStorage(ContentAddressableStorage.DEFAULT_NAME))
    fastmoney = FastMoney("fastmoney", params={"genesis_balances": {CLIENT.address.hex(): 100}})
    registry.register(fastmoney)
    ledger = TransactionLedger(Environment(), "cell-0")
    executor = TransactionExecutor("cell-0", registry)
    return registry, ledger, executor


def admit(ledger, data, nonce="0x1", timestamp=2.0):
    envelope = Envelope.create(
        signer=CLIENT, recipient=CELL, operation=Opcode.TX_SUBMIT,
        data=data, timestamp=timestamp, nonce=nonce,
    )
    return ledger.admit(envelope, cycle=0)


def test_successful_execution(setup):
    registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 25}})
    outcome = executor.execute(entry)
    assert outcome.ok and outcome.status == "executed"
    assert outcome.result["amount"] == 25
    assert outcome.fingerprint == registry.get("fastmoney").fingerprint()
    assert outcome.fingerprint_hex().startswith("0x")


def test_contract_rejection_is_an_outcome_not_an_exception(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 10_000}})
    outcome = executor.execute(entry)
    assert not outcome.ok and "insufficient" in outcome.error


def test_unknown_contract_raises(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "ghost", "method": "x", "args": {}})
    with pytest.raises(BContractError):
        executor.execute(entry)


def test_malformed_call_rejected(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"method": "transfer", "args": {}})
    with pytest.raises(BContractError):
        executor.execute(entry)
    entry2 = admit(ledger, {"contract": "fastmoney", "args": {}}, nonce="0x2")
    with pytest.raises(BContractError):
        executor.execute(entry2)


def test_execution_fingerprint_is_order_independent_identifier(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 5}})
    outcome = executor.execute(entry)
    assert outcome.execution_fingerprint() != outcome.fingerprint
    assert outcome.execution_fingerprint_hex().startswith("0x")


def test_identical_transactions_produce_identical_execution_fingerprints(setup):
    registry, ledger, executor = setup
    other_registry = ContractRegistry()
    other_registry.register(ContentAddressableStorage(ContentAddressableStorage.DEFAULT_NAME))
    other_registry.register(
        FastMoney("fastmoney", params={"genesis_balances": {CLIENT.address.hex(): 100}})
    )
    other_ledger = TransactionLedger(Environment(), "cell-1")
    other_executor = TransactionExecutor("cell-1", other_registry)

    data = {"contract": "fastmoney", "method": "transfer",
            "args": {"to": "0x" + "aa" * 20, "amount": 5}}
    entry_a = admit(ledger, data)
    entry_b = admit(other_ledger, data)
    assert (
        executor.execute(entry_a).execution_fingerprint()
        == other_executor.execute(entry_b).execution_fingerprint()
    )


def test_context_uses_signed_timestamp(setup):
    registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 1}}, timestamp=42.0)
    executor.execute(entry)
    stored = registry.get("fastmoney").store.get(f"processed/{entry.tx_id}")
    assert stored == pytest.approx(42.0)


def test_query_view(setup):
    _registry, _ledger, executor = setup
    assert executor.query("fastmoney", "balance_of", {"account": CLIENT.address.hex()}) == 100


# ----------------------------------------------------------------------
# View read-set tracking (execution lanes regression)
# ----------------------------------------------------------------------
class LeakyViews(FastMoney):
    """A contract whose views misbehave, for the read-only guard tests."""

    TYPE = "test/leaky"

    @bcontract_view
    def polluting_view(self) -> int:
        # Regression target: before the read-only guard, this silently
        # mutated contract state (and its fingerprint) from the read path.
        self.store.put("polluted", True)
        return 1

    @bcontract_view
    def deleting_view(self) -> int:
        self.store.delete("supply")
        return 1

    @bcontract_view
    def counting_view(self) -> int:
        self.store.increment("stats/view_calls")
        return 1


@pytest.fixture
def leaky():
    registry = ContractRegistry()
    contract = LeakyViews("leaky", params={"genesis_balances": {CLIENT.address.hex(): 9}})
    registry.register(contract)
    return contract, TransactionExecutor("cell-0", registry)


def test_view_writes_are_rejected_and_do_not_pollute_state(leaky):
    contract, executor = leaky
    before = contract.fingerprint()
    for view in ("polluting_view", "deleting_view", "counting_view"):
        with pytest.raises(BContractError, match="read-only during a view"):
            executor.query("leaky", view, {})
        assert contract.fingerprint() == before
        assert not contract.store.contains("polluted")
        assert not contract.store.in_transaction
        assert not contract.store.in_view


def test_view_reads_are_tracked_and_writes_stay_empty(leaky):
    contract, executor = leaky
    assert executor.query("leaky", "balance_of", {"account": CLIENT.address.hex()}) == 9
    assert executor.last_view_reads == {f"balance/{CLIENT.address.hex()}"}
    assert contract.last_view_reads == executor.last_view_reads
    # A failed view still closes the guard and reports the keys it read.
    with pytest.raises(BContractError):
        executor.query("leaky", "deleting_view", {})
    assert not contract.store.in_view


def test_invocation_access_sets_differentiate_reads_writes_deltas(setup):
    registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 5}})
    outcome = executor.execute(entry)
    access = outcome.access
    assert access is not None
    sender_key = f"balance/{CLIENT.address.hex()}"
    assert sender_key in access.reads and sender_key in access.writes
    # Recipient credit and the transfer counter are commutative deltas.
    assert f"balance/0x{'aa' * 20}" in access.deltas
    assert "stats/transfers" in access.deltas
    assert "stats/transfers" not in access.writes
    # The declared plan covers every observed mutation.
    plan = registry.get("fastmoney").access_plan(
        "transfer", {"to": "0x" + "aa" * 20, "amount": 5},
        sender=CLIENT.address.hex(), tx_id=entry.tx_id,
    )
    assert plan is not None and plan.covers_mutations_of(access)


def test_rejected_invocation_still_reports_access(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 10_000}})
    outcome = executor.execute(entry)
    assert not outcome.ok
    assert outcome.access is not None
    assert f"balance/{CLIENT.address.hex()}" in outcome.access.reads


def test_execute_safely_rejects_instead_of_raising(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "ghost", "method": "x", "args": {}})
    outcome = executor.execute_safely(entry)
    assert not outcome.ok and "ghost" in (outcome.error or "")
    assert outcome.fingerprint == b"\x00" * 32
