"""The deterministic transaction executor."""

import pytest

from repro.contracts import BContractError, ContractRegistry, FastMoney
from repro.contracts.system.cas import ContentAddressableStorage
from repro.core.executor import TransactionExecutor
from repro.core.ledger import TransactionLedger
from repro.crypto.keys import PrivateKey
from repro.messages import EcdsaSigner, Envelope, Opcode
from repro.sim import Environment

CLIENT = EcdsaSigner.from_seed("exec-client")
CELL = PrivateKey.from_seed("exec-cell").address


@pytest.fixture
def setup():
    registry = ContractRegistry()
    registry.register(ContentAddressableStorage(ContentAddressableStorage.DEFAULT_NAME))
    fastmoney = FastMoney("fastmoney", params={"genesis_balances": {CLIENT.address.hex(): 100}})
    registry.register(fastmoney)
    ledger = TransactionLedger(Environment(), "cell-0")
    executor = TransactionExecutor("cell-0", registry)
    return registry, ledger, executor


def admit(ledger, data, nonce="0x1", timestamp=2.0):
    envelope = Envelope.create(
        signer=CLIENT, recipient=CELL, operation=Opcode.TX_SUBMIT,
        data=data, timestamp=timestamp, nonce=nonce,
    )
    return ledger.admit(envelope, cycle=0)


def test_successful_execution(setup):
    registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 25}})
    outcome = executor.execute(entry)
    assert outcome.ok and outcome.status == "executed"
    assert outcome.result["amount"] == 25
    assert outcome.fingerprint == registry.get("fastmoney").fingerprint()
    assert outcome.fingerprint_hex().startswith("0x")


def test_contract_rejection_is_an_outcome_not_an_exception(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 10_000}})
    outcome = executor.execute(entry)
    assert not outcome.ok and "insufficient" in outcome.error


def test_unknown_contract_raises(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "ghost", "method": "x", "args": {}})
    with pytest.raises(BContractError):
        executor.execute(entry)


def test_malformed_call_rejected(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"method": "transfer", "args": {}})
    with pytest.raises(BContractError):
        executor.execute(entry)
    entry2 = admit(ledger, {"contract": "fastmoney", "args": {}}, nonce="0x2")
    with pytest.raises(BContractError):
        executor.execute(entry2)


def test_execution_fingerprint_is_order_independent_identifier(setup):
    _registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 5}})
    outcome = executor.execute(entry)
    assert outcome.execution_fingerprint() != outcome.fingerprint
    assert outcome.execution_fingerprint_hex().startswith("0x")


def test_identical_transactions_produce_identical_execution_fingerprints(setup):
    registry, ledger, executor = setup
    other_registry = ContractRegistry()
    other_registry.register(ContentAddressableStorage(ContentAddressableStorage.DEFAULT_NAME))
    other_registry.register(
        FastMoney("fastmoney", params={"genesis_balances": {CLIENT.address.hex(): 100}})
    )
    other_ledger = TransactionLedger(Environment(), "cell-1")
    other_executor = TransactionExecutor("cell-1", other_registry)

    data = {"contract": "fastmoney", "method": "transfer",
            "args": {"to": "0x" + "aa" * 20, "amount": 5}}
    entry_a = admit(ledger, data)
    entry_b = admit(other_ledger, data)
    assert (
        executor.execute(entry_a).execution_fingerprint()
        == other_executor.execute(entry_b).execution_fingerprint()
    )


def test_context_uses_signed_timestamp(setup):
    registry, ledger, executor = setup
    entry = admit(ledger, {"contract": "fastmoney", "method": "transfer",
                           "args": {"to": "0x" + "aa" * 20, "amount": 1}}, timestamp=42.0)
    executor.execute(entry)
    stored = registry.get("fastmoney").store.get(f"processed/{entry.tx_id}")
    assert stored == pytest.approx(42.0)


def test_query_view(setup):
    _registry, _ledger, executor = setup
    assert executor.query("fastmoney", "balance_of", {"account": CLIENT.address.hex()}) == 100
