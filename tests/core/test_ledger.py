"""The mutex-protected transaction ledger."""

import pytest

from repro.core.ledger import LedgerError, TransactionLedger
from repro.crypto.keys import PrivateKey
from repro.messages import EcdsaSigner, Envelope, Opcode
from repro.sim import Environment

SIGNER = EcdsaSigner.from_seed("ledger-client")
CELL = PrivateKey.from_seed("ledger-cell").address


def make_envelope(nonce, amount=1):
    return Envelope.create(
        signer=SIGNER, recipient=CELL, operation=Opcode.TX_SUBMIT,
        data={"contract": "fastmoney", "method": "transfer", "args": {"amount": amount}},
        timestamp=1.0, nonce=nonce,
    )


@pytest.fixture
def ledger():
    return TransactionLedger(Environment(), "cell-0")


def test_admit_assigns_sequence_and_cycle(ledger):
    first = ledger.admit(make_envelope("0x1"), cycle=0)
    second = ledger.admit(make_envelope("0x2"), cycle=1)
    assert first.sequence == 0 and second.sequence == 1
    assert len(ledger) == 2
    assert ledger.contains(first.tx_id)
    assert ledger.get(first.tx_id).cycle == 0


def test_duplicate_admission_rejected(ledger):
    envelope = make_envelope("0x1")
    ledger.admit(envelope, cycle=0)
    with pytest.raises(LedgerError):
        ledger.admit(envelope, cycle=0)


def test_unknown_tx_rejected(ledger):
    with pytest.raises(LedgerError):
        ledger.get("0x" + "00" * 32)


def test_execution_bookkeeping(ledger):
    entry = ledger.admit(make_envelope("0x1"), cycle=0)
    ledger.mark_executed(entry.tx_id, "fastmoney", {"ok": True}, b"\x01" * 32)
    assert entry.status == "executed" and entry.contract == "fastmoney"
    rejected = ledger.admit(make_envelope("0x2"), cycle=0)
    ledger.mark_rejected(rejected.tx_id, "fastmoney", "insufficient funds")
    assert rejected.status == "rejected" and rejected.error == "insufficient funds"
    stats = ledger.statistics()
    assert stats["executed"] == 1 and stats["rejected"] == 1 and stats["total"] == 2


def test_cycle_queries(ledger):
    entries = [ledger.admit(make_envelope(f"0x{i}"), cycle=i % 2) for i in range(6)]
    ledger.mark_executed(entries[0].tx_id, "fastmoney", None, b"\x00" * 32)
    assert len(ledger.entries_for_cycle(0)) == 3
    assert len(ledger.executed_for_cycle(0)) == 1
    assert len(ledger.executed_for_cycle(1)) == 0


def test_segment_export_roundtrips_envelopes(ledger):
    ledger.admit(make_envelope("0x1"), cycle=0)
    ledger.admit(make_envelope("0x2"), cycle=1, contingency=True)
    segment = ledger.segment(0, 1)
    assert len(segment) == 2
    restored = Envelope.from_wire(segment[0]["envelope"])
    assert restored.verify()
    assert segment[1]["summary"]["contingency"] is True


def test_mutex_serializes_admission(ledger):
    env = ledger.env
    order = []

    def admitter(tag, hold):
        yield ledger.mutex.request()
        try:
            yield env.timeout(hold)
            ledger.admit(make_envelope(f"0x{tag}"), cycle=0)
            order.append((env.now, tag))
        finally:
            ledger.mutex.release()

    env.process(admitter("a", 2))
    env.process(admitter("b", 1))
    env.run()
    assert order == [(2, "a"), (3, "b")]
