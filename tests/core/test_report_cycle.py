"""Report-cycle lifecycle: snapshots, anchoring, gas accounting."""

from repro.client import BlockumulusClient, FastMoneyClient
from tests.conftest import make_deployment


def test_cells_anchor_identical_fingerprints_each_cycle():
    deployment = make_deployment(consortium_size=3, report_period=20.0, eth_block_interval=2.0)
    client = BlockumulusClient(deployment)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))
    deployment.env.run(fastmoney.transfer("0x" + "ab" * 20, 10))
    # Run past two report deadlines plus block-inclusion time.
    deployment.run(until=70.0)
    anchored = [deployment.anchored_report(1, index) for index in range(3)]
    assert all(value is not None for value in anchored)
    assert len({value.hex() for value in anchored}) == 1


def test_snapshot_retention_matches_configuration():
    deployment = make_deployment(report_period=10.0, snapshots_retained=3)
    deployment.run(until=65.0)
    for cell in deployment.cells:
        assert len(cell.snapshots.retained_cycles()) <= 3
        assert cell.snapshots.latest_cycle is not None


def test_report_gas_matches_table3_figure():
    deployment = make_deployment(report_period=15.0, eth_block_interval=2.0)
    deployment.run(until=60.0)
    gas_values = [report["gas_used"] for cell in deployment.cells for report in cell.reports_submitted]
    assert gas_values
    for gas in gas_values:
        assert abs(gas - 49_193) / 49_193 < 0.10


def test_reports_marked_successful_and_counted():
    deployment = make_deployment(report_period=15.0, eth_block_interval=2.0)
    deployment.run(until=60.0)
    cell = deployment.cell(0)
    assert cell.reports_submitted
    assert all(report["success"] for report in cell.reports_submitted)
    stats = cell.statistics()
    assert stats["reports_submitted"] == len(cell.reports_submitted)


def test_auto_report_can_be_disabled():
    deployment = make_deployment(auto_report=False, report_period=10.0)
    deployment.run(until=45.0)
    for cell in deployment.cells:
        assert cell.reports_submitted == []
        # Snapshots are still taken locally for auditors.
        assert cell.snapshots.latest_cycle is not None
    assert deployment.anchored_report(1, 0) is None


def test_fingerprints_stable_when_no_transactions_flow():
    deployment = make_deployment(report_period=10.0)
    deployment.run(until=45.0)
    cell = deployment.cell(0)
    cycles = cell.snapshots.retained_cycles()
    fingerprints = {cell.snapshots.get(cycle).fingerprint for cycle in cycles}
    assert len(fingerprints) == 1
