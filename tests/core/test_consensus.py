"""Overlay consensus timing rules, cell standing, and Theorem 1."""

import pytest

from repro.core.config import SystemInvariants
from repro.core.consensus import ConsensusError, OverlayConsensus
from repro.crypto.keys import PrivateKey

CELLS = tuple(PrivateKey.from_seed(f"oc-cell-{i}").address for i in range(4))


@pytest.fixture
def consensus():
    invariants = SystemInvariants(
        deployment_id="oc", cell_addresses=CELLS, report_period=600.0,
        initial_timestamp=1_000.0, miss_threshold=3,
    )
    return OverlayConsensus(invariants)


def test_cycle_arithmetic(consensus):
    assert consensus.cycle_of(1_000.0) == 0
    assert consensus.cycle_of(1_599.9) == 0
    assert consensus.cycle_of(1_600.0) == 1
    assert consensus.cycle_start(2) == 2_200.0
    assert consensus.cycle_deadline(0) == 1_600.0
    assert consensus.next_deadline(1_700.0) == 2_200.0


def test_timestamp_before_t0_rejected(consensus):
    with pytest.raises(ConsensusError):
        consensus.cycle_of(500.0)
    with pytest.raises(ConsensusError):
        consensus.cycle_start(-1)


def test_report_deadline_rule(consensus):
    # Snapshot i must be reported by the end of cycle i+1 and counts from i+2.
    assert consensus.report_due_by(0) == consensus.cycle_deadline(1)
    assert consensus.valid_from_cycle(0) == 2
    assert consensus.is_report_timely(0, reported_at=2_199.0)
    assert not consensus.is_report_timely(0, reported_at=2_201.0)


def test_miss_tracking_and_exclusion(consensus):
    cell = CELLS[1]
    assert not consensus.record_miss(cell, cycle=0)
    assert not consensus.record_miss(cell, cycle=0)
    assert consensus.record_miss(cell, cycle=1)  # third consecutive miss excludes
    assert consensus.standing(cell).is_excluded
    assert cell in consensus.excluded_cells()
    assert cell not in consensus.active_cells()
    consensus.readmit(cell)
    assert not consensus.standing(cell).is_excluded
    assert consensus.standing(cell).consecutive_misses == 0


def test_success_resets_consecutive_misses(consensus):
    cell = CELLS[2]
    consensus.record_miss(cell, 0)
    consensus.record_miss(cell, 0)
    consensus.record_success(cell)
    assert consensus.standing(cell).consecutive_misses == 0
    assert consensus.standing(cell).total_misses == 2
    assert not consensus.standing(cell).is_excluded


def test_explicit_exclusion(consensus):
    consensus.exclude(CELLS[3], cycle=5)
    assert consensus.standing(CELLS[3]).excluded_since_cycle == 5


def test_unknown_cell_rejected(consensus):
    with pytest.raises(ConsensusError):
        consensus.standing(PrivateKey.from_seed("ghost").address)


@pytest.mark.parametrize("size", [2, 3, 5, 10, 100])
def test_theorem1_minimum_valid_cells_is_one(size):
    assert OverlayConsensus.minimum_valid_cells(size) == 1


def test_theorem1_rejects_empty_consortium():
    with pytest.raises(ConsensusError):
        OverlayConsensus.minimum_valid_cells(0)
