"""The batched overlay pipeline: codec, equivalence with singletons, savings."""

import pytest

from repro.client import BlockumulusClient, CasClient
from repro.core.receipts import Confirmation, ConfirmationBatch, ReceiptError
from repro.encoding import canonical_json
from repro.messages.signer import EcdsaSigner
from tests.conftest import make_deployment


# ----------------------------------------------------------------------
# ConfirmationBatch codec
# ----------------------------------------------------------------------
def test_confirmation_batch_round_trip_preserves_signatures():
    signer = EcdsaSigner.from_seed("confirm-batch-cell")
    confirmations = [
        Confirmation.create(
            signer,
            tx_id=f"0x{index:064x}",
            contract="fastmoney",
            fingerprint_hex="0x" + "11" * 32,
            status="executed" if index % 2 == 0 else "rejected",
            timestamp=2.5,
            error=None if index % 2 == 0 else "insufficient balance",
        )
        for index in range(3)
    ]
    batch = ConfirmationBatch.of(confirmations)
    # Full canonical-JSON round trip, as the envelope data field travels.
    raw = canonical_json.loads(canonical_json.dump_bytes(batch.to_data()))
    parsed = ConfirmationBatch.from_data(raw)
    assert len(parsed) == 3
    for original, round_tripped in zip(confirmations, parsed.confirmations):
        assert round_tripped.verify()
        assert round_tripped.tx_id == original.tx_id
        assert round_tripped.status == original.status
        assert round_tripped.error == original.error


def test_malformed_confirmation_batches_rejected():
    with pytest.raises(ReceiptError):
        ConfirmationBatch(confirmations=())
    with pytest.raises(ReceiptError):
        ConfirmationBatch.from_data({})
    with pytest.raises(ReceiptError):
        ConfirmationBatch.from_data({"confirmations": [{"cell": "0x00"}]})


# ----------------------------------------------------------------------
# Batched vs. singleton runs are observably identical (except cheaper)
# ----------------------------------------------------------------------
BLOBS = [f"pipeline-blob-{index}".encode() for index in range(8)]


def run_cas_burst(batched: bool):
    """Submit the same 8 simultaneous CAS uploads through one deployment."""
    deployment = make_deployment(message_batching=batched)
    client = BlockumulusClient(
        deployment,
        signer=deployment.make_client_signer("pipeline-client"),
        node_name="pipeline-client",
    )
    cas = CasClient(client)
    events = []
    for index, blob in enumerate(BLOBS):
        signer = deployment.make_client_signer(f"pipeline-account/{index}")
        events.append(cas.put(blob, signer=signer))
    deployment.env.run(deployment.env.all_of(events))
    return deployment, [event.value for event in events]


@pytest.fixture(scope="module")
def burst_runs():
    return {batched: run_cas_burst(batched) for batched in (False, True)}


def test_both_modes_confirm_every_transaction(burst_runs):
    for batched, (_deployment, results) in burst_runs.items():
        assert all(result.ok for result in results), f"failures with batched={batched}"


def test_ledgers_identical_across_modes(burst_runs):
    def ledger_digest(deployment):
        digests = []
        for cell in deployment.cells:
            entries = sorted(
                (entry.tx_id, entry.status, entry.contract, repr(entry.result))
                for entry in cell.ledger
            )
            digests.append(entries)
        return digests

    singleton, batched = burst_runs[False][0], burst_runs[True][0]
    assert ledger_digest(singleton) == ledger_digest(batched)


def test_receipts_identical_across_modes(burst_runs):
    def receipt_digest(results):
        return sorted(
            (
                result.receipt.tx_id,
                result.receipt.contract,
                result.receipt.fingerprint_hex,
                repr(result.receipt.result),
                tuple(sorted(result.receipt.cells())),
            )
            for result in results
        )

    assert receipt_digest(burst_runs[False][1]) == receipt_digest(burst_runs[True][1])
    for result in burst_runs[True][1]:
        assert result.receipt.verify()


def test_contract_fingerprints_identical_across_modes(burst_runs):
    def fingerprints(deployment):
        return {
            cell.node_name: {
                name: cell.contracts.get(name).fingerprint_hex()
                for name in cell.contracts.names()
            }
            for cell in deployment.cells
        }

    assert fingerprints(burst_runs[False][0]) == fingerprints(burst_runs[True][0])


def test_batching_at_least_halves_inter_cell_messages(burst_runs):
    def inter_cell_messages(deployment):
        nodes = [cell.node_name for cell in deployment.cells]
        return deployment.network.messages_among(nodes)

    singleton = inter_cell_messages(burst_runs[False][0])
    batched = inter_cell_messages(burst_runs[True][0])
    # 8 simultaneous transactions: 8 forwards + 8 confirmations per-tx, a
    # handful of batch envelopes when coalesced.
    assert singleton == 2 * len(BLOBS)
    assert batched * 2 <= singleton

    service_cell = burst_runs[True][0].cell(0)
    stats = service_cell.batcher.statistics()
    assert stats["items_coalesced"] >= len(BLOBS)
    assert stats["mean_batch_size"] > 1.0


def test_singleton_deployment_has_no_batcher(burst_runs):
    deployment = burst_runs[False][0]
    assert all(cell.batcher is None for cell in deployment.cells)
    stats = deployment.cell(0).statistics()
    assert stats["batching"] is None
