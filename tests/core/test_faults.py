"""Direct coverage of the FaultPlan switches (Section V attack models).

The integration suite exercises these paths end to end; the tests here pin
down the per-switch behaviour — predicate semantics, event recording, and
the observable divergence each fault produces — independently of the
recovery machinery.
"""

import pytest

from repro.client import BlockumulusClient, FastMoneyClient
from repro.core.faults import (
    BYZANTINE_FAULT_KINDS,
    FAULT_KINDS,
    LYING_GATEWAY_MODES,
    RECOVERABLE_FAULT_KINDS,
    FaultError,
    FaultPlan,
    FaultSchedule,
    ScheduledFault,
    censor_method,
    censor_sender,
)
from repro.messages import EcdsaSigner, Envelope, Opcode
from tests.conftest import make_deployment


def _envelope(signer, contract="fastmoney", method="transfer"):
    return Envelope.create(
        signer=signer,
        recipient=EcdsaSigner.from_seed("faults/cell").address,
        operation=Opcode.TX_SUBMIT,
        data={"contract": contract, "method": method, "args": {}},
        timestamp=0.0,
        nonce="0x000000000001",
    )


# ----------------------------------------------------------------------
# Construction validation (FaultPlan and the scheduled-fault vocabulary)
# ----------------------------------------------------------------------
def test_fault_plan_rejects_invalid_arguments_at_construction():
    with pytest.raises(FaultError, match="negative"):
        FaultPlan(extra_confirm_delay=-1.0)
    with pytest.raises(FaultError, match="number of seconds"):
        FaultPlan(extra_confirm_delay="slow")
    with pytest.raises(FaultError, match="callable"):
        FaultPlan(censor="0xabc")
    # The valid shapes still construct.
    assert FaultPlan(extra_confirm_delay=0.5).extra_confirm_delay == 0.5
    assert FaultPlan(censor=censor_sender("0x" + "11" * 20)).censor is not None


def test_scheduled_fault_validates_kind_time_and_window():
    with pytest.raises(FaultError, match="unknown fault kind"):
        ScheduledFault(kind="meteor_strike", group=0, cell=0, at=1.0)
    with pytest.raises(FaultError, match="non-negative"):
        ScheduledFault(kind="crash_recover", group=0, cell=0, at=-2.0, until=3.0)
    with pytest.raises(FaultError, match="end time"):
        ScheduledFault(kind="crash_recover", group=0, cell=0, at=5.0)
    with pytest.raises(FaultError, match="end after it starts"):
        ScheduledFault(kind="censor_window", group=0, cell=0, at=5.0, until=5.0)
    with pytest.raises(FaultError, match="does not take an end time"):
        ScheduledFault(kind="tamper_state", group=0, cell=0, at=5.0, until=9.0)
    with pytest.raises(FaultError, match="seconds"):
        ScheduledFault(kind="delay_window", group=0, cell=0, at=1.0, until=2.0)
    with pytest.raises(FaultError, match="account"):
        ScheduledFault(kind="censor_window", group=0, cell=0, at=1.0, until=2.0)
    with pytest.raises(FaultError, match="account"):
        ScheduledFault(kind="censor_window", group=0, cell=0, at=1.0, until=2.0,
                       params={"account": -3})


def test_fault_kind_taxonomy_is_partitioned():
    """Every kind is recoverable, Byzantine, or a voucher delivery fault —
    never more than one — samplers and the attribution oracle branch on
    this split."""
    from repro.core.faults import VOUCHER_FAULT_KINDS

    strata = (
        set(RECOVERABLE_FAULT_KINDS),
        set(BYZANTINE_FAULT_KINDS),
        set(VOUCHER_FAULT_KINDS),
    )
    assert set(FAULT_KINDS) == strata[0] | strata[1] | strata[2]
    for i, left in enumerate(strata):
        for right in strata[i + 1:]:
            assert not left & right
    assert {"partition_window", "skew_window"} <= set(RECOVERABLE_FAULT_KINDS)
    assert {"equivocate", "lying_gateway"} <= set(BYZANTINE_FAULT_KINDS)
    assert {"voucher_loss", "voucher_duplication"} == set(VOUCHER_FAULT_KINDS)
    # The voucher kinds ride as extra draws on top of the lead-fault
    # stratification, so the lead tuple keeps its length (seed % 7).
    assert len(RECOVERABLE_FAULT_KINDS) == 7


def test_scheduled_fault_validates_the_byzantine_and_windowed_kinds():
    # Clock skew needs a positive magnitude and a window.
    with pytest.raises(FaultError, match="seconds"):
        ScheduledFault(kind="skew_window", group=0, cell=0, at=1.0, until=2.0)
    with pytest.raises(FaultError, match="seconds"):
        ScheduledFault(kind="skew_window", group=0, cell=0, at=1.0, until=2.0,
                       params={"seconds": -0.5})
    with pytest.raises(FaultError, match="end time"):
        ScheduledFault(kind="skew_window", group=0, cell=0, at=1.0,
                       params={"seconds": 0.2})
    # Partitions are windowed: they must heal.
    with pytest.raises(FaultError, match="end time"):
        ScheduledFault(kind="partition_window", group=0, cell=0, at=1.0)
    # A lying gateway needs a recognised lying mode and no window.
    with pytest.raises(FaultError, match="mode"):
        ScheduledFault(kind="lying_gateway", group=0, cell=0, at=1.0,
                       params={"mode": "stall"})
    with pytest.raises(FaultError, match="does not take an end time"):
        ScheduledFault(kind="lying_gateway", group=0, cell=0, at=1.0, until=5.0,
                       params={"mode": "forge"})
    for mode in LYING_GATEWAY_MODES:
        fault = ScheduledFault(kind="lying_gateway", group=0, cell=0, at=1.0,
                               params={"mode": mode})
        assert fault.params["mode"] == mode
    # Equivocation and partitions survive the wire round-trip.
    schedule = FaultSchedule((
        ScheduledFault(kind="equivocate", group=0, cell=1, at=6.0),
        ScheduledFault(kind="partition_window", group=0, cell=1, at=6.0,
                       until=11.0),
        ScheduledFault(kind="skew_window", group=0, cell=0, at=6.0, until=12.0,
                       params={"seconds": 0.25}),
    ))
    assert FaultSchedule.from_data(schedule.to_data()) == schedule
    assert schedule.kinds() == {"equivocate", "partition_window", "skew_window"}


def test_fault_plan_validates_the_byzantine_switches():
    with pytest.raises(FaultError, match="forge"):
        FaultPlan(lying_gateway="stall")
    plan = FaultPlan(equivocate=True, lying_gateway="withhold")
    assert plan.equivocate
    assert plan.lying_gateway == "withhold"
    plan.record("lying_gateway", mode="withhold", xtx="x-1", honest_ok=True)
    assert plan.events == [
        {"kind": "lying_gateway", "mode": "withhold", "xtx": "x-1",
         "honest_ok": True}
    ]


def test_fault_schedule_rejects_unknown_cells_instead_of_never_firing():
    crash = ScheduledFault(kind="crash_recover", group=0, cell=3, at=5.0, until=9.0)
    schedule = FaultSchedule((crash,))
    with pytest.raises(FaultError, match="unknown cell 3 of group 0"):
        schedule.validate_for(shard_count=1, cells_per_group=2)
    with pytest.raises(FaultError, match="cell group 1"):
        FaultSchedule(
            (ScheduledFault(kind="delay_window", group=1, cell=0, at=1.0, until=2.0,
                            params={"seconds": 0.1}),)
        ).validate_for(shard_count=1, cells_per_group=2)
    # Standby activation must target a standby index, and vice versa.
    activate = ScheduledFault(kind="standby_activate", group=0, cell=1, at=5.0)
    with pytest.raises(FaultError, match="not a standby"):
        FaultSchedule((activate,)).validate_for(
            shard_count=1, cells_per_group=2, standby_cells=1
        )
    FaultSchedule(
        (ScheduledFault(kind="standby_activate", group=0, cell=2, at=5.0),)
    ).validate_for(shard_count=1, cells_per_group=2, standby_cells=1)


def test_fault_schedule_round_trips_and_shrinks():
    schedule = FaultSchedule(
        (
            ScheduledFault(kind="censor_window", group=0, cell=1, at=5.0, until=9.0,
                           params={"account": 2}),
            ScheduledFault(kind="tamper_state", group=0, cell=0, at=7.0),
        )
    )
    assert FaultSchedule.from_data(schedule.to_data()) == schedule
    assert schedule.kinds() == {"censor_window", "tamper_state"}
    assert schedule.without(0).faults == schedule.faults[1:]
    with pytest.raises(FaultError, match="no fault with index"):
        schedule.without(5)


# ----------------------------------------------------------------------
# Censor predicates
# ----------------------------------------------------------------------
def test_censor_sender_matches_case_insensitively():
    alice = EcdsaSigner.from_seed("faults/alice")
    bob = EcdsaSigner.from_seed("faults/bob")
    predicate = censor_sender(alice.address.hex().upper())
    assert predicate(_envelope(alice))
    assert not predicate(_envelope(bob))


def test_censor_method_targets_one_call_only():
    alice = EcdsaSigner.from_seed("faults/alice")
    predicate = censor_method("dividendpool", "withdraw_dividend")
    assert predicate(_envelope(alice, "dividendpool", "withdraw_dividend"))
    assert not predicate(_envelope(alice, "dividendpool", "invest"))
    assert not predicate(_envelope(alice, "fastmoney", "withdraw_dividend"))


def test_fault_plan_records_censor_events():
    alice = EcdsaSigner.from_seed("faults/alice")
    plan = FaultPlan(censor=censor_sender(alice.address.hex()))
    envelope = _envelope(alice)
    assert plan.is_censored(envelope)
    assert plan.events == [{"kind": "censor", "tx_id": envelope.payload.hash_hex()}]
    # Non-matching traffic is passed through and not recorded.
    assert not plan.is_censored(_envelope(EcdsaSigner.from_seed("faults/bob")))
    assert len(plan.events) == 1


def test_censoring_cell_silently_drops_the_transaction():
    deployment = make_deployment(consortium_size=2)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    cell = deployment.cell(0)
    cell.fault.censor = censor_sender(client.address.hex())
    attempt = fastmoney.transfer("0x" + "aa" * 20, 1)
    deployment.run(until=deployment.env.now + 5.0)
    # Silence, not an error: the client never hears back (Section V-B).
    assert not attempt.triggered
    assert cell.fault.events and cell.fault.events[0]["kind"] == "censor"
    assert cell.metrics.counter(f"{cell.node_name}/censored") == 1
    assert len(cell.ledger) == 1  # only the pre-censorship faucet


# ----------------------------------------------------------------------
# State tampering
# ----------------------------------------------------------------------
def test_tamper_state_diverges_fingerprints_and_records_the_event():
    deployment = make_deployment(consortium_size=2)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    tampering = deployment.cell(1)
    tampering.fault.tamper_state = True
    result = fastmoney.transfer("0x" + "bb" * 20, 5)
    deployment.env.run(result)
    # The transaction still confirms: execution fingerprints (tx-level)
    # agree, and the corruption only shows up in the *state* fingerprints
    # compared at snapshot time.
    assert result.value.ok
    honest = deployment.cell(0).contracts.get("fastmoney")
    dirty = tampering.contracts.get("fastmoney")
    assert honest.fingerprint_hex() != dirty.fingerprint_hex()
    assert dirty.store.get("__tampered__") is not None
    kinds = {event["kind"] for event in tampering.fault.events}
    assert "tamper_state" in kinds


# ----------------------------------------------------------------------
# Confirmation delay
# ----------------------------------------------------------------------
def test_extra_confirm_delay_below_deadline_only_slows_the_receipt():
    deployment = make_deployment(consortium_size=2, forwarding_deadline=5.0)
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    deployment.cell(1).fault.extra_confirm_delay = 1.0
    result = fastmoney.transfer("0x" + "cc" * 20, 1)
    deployment.env.run(result)
    assert result.value.ok
    assert result.value.latency > 1.0
    assert {"kind": "delay", "seconds": 1.0} in deployment.cell(1).fault.events


def test_extra_confirm_delay_beyond_deadline_counts_as_a_miss():
    deployment = make_deployment(
        consortium_size=2, forwarding_deadline=0.5, miss_threshold=3
    )
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    slow = deployment.cell(1)
    slow.fault.extra_confirm_delay = 2.0
    result = fastmoney.transfer("0x" + "dd" * 20, 1)
    deployment.env.run(result)
    assert not result.value.ok
    assert "deadline" in result.value.error
    standing = deployment.cell(0).consensus.standing(slow.address)
    assert standing.consecutive_misses == 1
    assert not standing.is_excluded  # below the threshold, not yet excluded
