"""Per-cell admission control: bounded inflight and deterministic shedding.

The endurance benchmark proves the overload story at scale; these tests
pin the mechanism at unit scale — configuration validation, the ingress
gate itself, the client-visible ``OVERLOADED`` contract, the statistics
block, and that a shed burst replays bit-identically under the same seed.
"""

import pytest

from repro.client.workload import run_burst_transfers
from repro.core.cell import OVERLOADED_ERROR
from repro.core.config import ConfigError
from repro.sim import CellServiceModel, ConstantLatency
from tests.conftest import fast_config, make_deployment


def slow_serial_model() -> CellServiceModel:
    """One transaction at a time, 50 ms each — easy to overload."""
    return CellServiceModel(
        invoke_overhead=ConstantLatency(0.05),
        auth_overhead=ConstantLatency(0.002),
        aggregate_overhead_per_cell=0.001,
        max_parallel_invocations=1,
    )


def test_max_inflight_config_validation():
    assert fast_config().max_inflight is None  # unbounded by default
    assert fast_config(max_inflight=1).max_inflight == 1
    for bad in (0, -5):
        with pytest.raises(ConfigError, match="max_inflight"):
            fast_config(max_inflight=bad)


def test_admission_gate_takes_slots_and_sheds_at_the_bound():
    deployment = make_deployment(max_inflight=2)
    cell = deployment.cell(0)
    assert cell._admit_ingress() and cell._admit_ingress()
    assert not cell._admit_ingress(), "the third arrival must be shed"
    cell._inflight -= 1  # one service completes
    assert cell._admit_ingress(), "a freed slot admits again"

    stats = cell.statistics()["admission"]
    assert stats == {
        "max_inflight": 2,
        "inflight": 2,
        "peak_inflight": 2,
        "shed": 1,
        "shed_recovering": 0,
    }


def test_unbounded_cell_never_sheds():
    deployment = make_deployment(service_model=slow_serial_model())
    report = run_burst_transfers(deployment, count=20, pools=4)
    assert report.failure_count == 0
    assert all(not result.shed for result in report.results)
    for cell in deployment.cells:
        stats = cell.statistics()["admission"]
        assert stats["max_inflight"] is None and stats["shed"] == 0


def test_overloaded_burst_sheds_with_the_client_visible_error():
    deployment = make_deployment(
        max_inflight=4, service_model=slow_serial_model(), signature_scheme="sim"
    )
    report = run_burst_transfers(deployment, count=30, pools=4)

    shed = [result for result in report.results if result.shed]
    committed = [result for result in report.results if result.ok]
    assert shed, "a 30-tx instant burst must overflow max_inflight=4"
    assert committed, "admitted transactions must still commit"
    assert len(shed) + len(committed) == 30, "no third outcome under overload"
    for result in shed:
        assert not result.ok and result.error == OVERLOADED_ERROR

    total_shed = 0
    for cell in deployment.cells:
        stats = cell.statistics()["admission"]
        assert stats["peak_inflight"] <= 4
        assert stats["inflight"] == 0, "inflight must drain to zero"
        total_shed += stats["shed"]
    assert total_shed == len(shed)


def test_shedding_is_deterministic_under_the_same_seed():
    def outcomes():
        deployment = make_deployment(
            max_inflight=4, service_model=slow_serial_model(), signature_scheme="sim"
        )
        report = run_burst_transfers(deployment, count=30, pools=4)
        return [(result.ok, result.shed, result.error) for result in report.results]

    first, second = outcomes(), outcomes()
    assert first == second
    assert any(shed for _ok, shed, _error in first)
