"""Deployment orchestration."""

import pytest

from repro.messages import EcdsaSigner, SimulatedSigner
from tests.conftest import make_deployment


def test_deployment_builds_requested_consortium():
    deployment = make_deployment(consortium_size=4)
    assert deployment.consortium_size == 4
    assert len({cell.address for cell in deployment.cells}) == 4
    assert deployment.invariants.consortium_size == 4
    assert deployment.cell(1) is deployment.cells[1]
    assert deployment.cell_by_address(deployment.cells[2].address) is deployment.cells[2]
    with pytest.raises(KeyError):
        deployment.cell_by_address(deployment.make_client_signer("nobody").address)


def test_registry_contract_knows_cell_eth_accounts():
    deployment = make_deployment(consortium_size=3)
    registry = deployment.registry_contract
    assert registry.cells == [key.address for key in deployment.cell_eth_keys]
    assert registry.report_period == int(deployment.config.report_period)


def test_default_contracts_deployed_identically_everywhere():
    deployment = make_deployment()
    names = {tuple(cell.contracts.names()) for cell in deployment.cells}
    assert len(names) == 1
    assert "fastmoney" in deployment.cell(0).contracts.names()
    assert "system.cas" in deployment.cell(0).contracts.names()
    assert "system.deployer" in deployment.cell(0).contracts.names()
    # Instances are independent objects (no shared mutable state).
    assert deployment.cell(0).contracts.get("fastmoney") is not deployment.cell(1).contracts.get("fastmoney")


def test_default_contract_deployment_can_be_disabled():
    deployment = make_deployment(deploy_default_contracts=False)
    assert deployment.cell(0).contracts.names() == ["system.cas", "system.deployer"]


def test_signature_scheme_selection():
    ecdsa_deployment = make_deployment(signature_scheme="ecdsa")
    sim_deployment = make_deployment(signature_scheme="sim", seed=77)
    assert isinstance(ecdsa_deployment.cell_signers[0], EcdsaSigner)
    assert isinstance(sim_deployment.cell_signers[0], SimulatedSigner)
    assert isinstance(sim_deployment.make_client_signer("x"), SimulatedSigner)


def test_cell_eth_accounts_funded():
    deployment = make_deployment()
    for key in deployment.cell_eth_keys:
        assert deployment.eth.get_balance(key.address) > 0


def test_run_cycles_advances_time():
    deployment = make_deployment(report_period=10.0)
    start = deployment.env.now
    deployment.run_cycles(2)
    assert deployment.env.now >= start + 20.0


def test_statistics_shape():
    deployment = make_deployment()
    deployment.run(until=5.0)
    stats = deployment.statistics()
    assert stats["consortium_size"] == 2
    assert len(stats["cells"]) == 2
    assert stats["eth_height"] >= 0
    assert "deployment_id" in stats["invariants"]


def test_deterministic_given_seed():
    a = make_deployment(seed=123)
    b = make_deployment(seed=123)
    assert [cell.address for cell in a.cells] == [cell.address for cell in b.cells]
    assert a.registry_contract.address == b.registry_contract.address
