"""Crash behaviour must be identical with batching on and off.

The regression being pinned down: a cell that crashed while work was in
flight used to keep emitting batched messages (a flush fired after the
crash) and kept executing transactions that arrived inside a batch before
the crash — neither of which can happen with per-transaction messaging.
After the fix, a crashed cell executes nothing and emits nothing from the
moment ``FaultPlan.crashed`` flips, in both pipeline modes.
"""

import pytest

from repro.client import BlockumulusClient, FastMoneyClient
from tests.conftest import make_deployment


def _cell_messages_out(deployment, index: int) -> int:
    """Total messages the cell at ``index`` has sent to anyone."""
    node = deployment.cell(index).node_name
    return sum(
        counter.messages
        for (src, _dst), counter in deployment.network.traffic.items()
        if src == node
    )


@pytest.mark.parametrize("batching", [True, False])
def test_inbound_traffic_dropped_identically(batching):
    deployment = make_deployment(
        consortium_size=2, message_batching=batching, forwarding_deadline=1.0
    )
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    # Crash cell 1 (fault only — the network endpoint stays up, so batch
    # envelopes are still *delivered* and must be dropped by the cell).
    deployment.cell(1).fault.crashed = True
    sent_at_crash = _cell_messages_out(deployment, 1)

    event = fastmoney.transfer("0x" + "aa" * 20, 1)
    deployment.env.run(event)
    assert not event.value.ok
    assert "deadline" in event.value.error
    # The crashed cell admitted nothing and said nothing, in both modes.
    assert len(deployment.cell(1).ledger) == 1  # only the pre-crash faucet
    assert _cell_messages_out(deployment, 1) == sent_at_crash


@pytest.mark.parametrize("batching", [True, False])
def test_crash_mid_handling_suppresses_the_confirmation(batching):
    deployment = make_deployment(
        consortium_size=2,
        message_batching=batching,
        batch_quantum=0.5,
        forwarding_deadline=3.0,
    )
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    # Hold the forwarded transaction inside cell 1 long enough to crash the
    # cell while the work is mid-flight.
    deployment.cell(1).fault.extra_confirm_delay = 1.0
    event = fastmoney.transfer("0x" + "bb" * 20, 1)
    deployment.run(until=deployment.env.now + 0.5)
    deployment.cell(1).fault.crashed = True
    sent_at_crash = _cell_messages_out(deployment, 1)

    deployment.env.run(event)
    assert not event.value.ok
    assert _cell_messages_out(deployment, 1) == sent_at_crash
    # The in-flight transaction was dropped before admission.
    assert len(deployment.cell(1).ledger) == 1


def test_batched_flush_after_crash_drops_queued_items():
    deployment = make_deployment(
        consortium_size=2, message_batching=True, batch_quantum=0.5, forwarding_deadline=3.0
    )
    client = BlockumulusClient(deployment, service_cell_index=0)
    fastmoney = FastMoneyClient(client)
    deployment.env.run(fastmoney.faucet(100))

    # Let cell 1 execute the forwarded transfer and queue its confirmation,
    # then crash it inside the 0.5 s flush quantum (the forward itself sits
    # in cell 0's outgoing batch for the first ~0.5 s).
    event = fastmoney.transfer("0x" + "cc" * 20, 1)
    deployment.run(until=deployment.env.now + 0.8)
    cell1 = deployment.cell(1)
    assert cell1.ledger.statistics()["executed"] == 2  # faucet + transfer applied
    cell1.fault.crashed = True
    sent_at_crash = _cell_messages_out(deployment, 1)

    deployment.env.run(event)
    assert not event.value.ok  # the confirmation died with the cell
    assert _cell_messages_out(deployment, 1) == sent_at_crash
    assert cell1.batcher.items_dropped >= 1
    assert cell1.batcher.statistics()["items_dropped"] == cell1.batcher.items_dropped
