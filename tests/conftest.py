"""Shared fixtures for the Blockumulus test suite."""

from __future__ import annotations

import os

import pytest

from repro.core import BlockumulusDeployment, DeploymentConfig, ShardedDeployment
from repro.crypto import PrivateKey
from repro.sim import ConstantLatency, Environment, SeedSequence, fast_test_service_model


def fast_config(**overrides) -> DeploymentConfig:
    """A deployment configuration tuned for fast functional tests.

    ``REPRO_EXECUTION_LANES`` (used by the CI test matrix) switches every
    test deployment that does not pin ``execution_lanes`` itself onto the
    conflict-aware lane engine, so the whole functional suite doubles as a
    differential test of serial vs. lane-parallel execution.
    """
    defaults = dict(
        consortium_size=2,
        report_period=30.0,
        service_model=fast_test_service_model(),
        client_cell_latency=ConstantLatency(0.01),
        cell_cell_latency=ConstantLatency(0.005),
        signature_scheme="ecdsa",
        seed=42,
        eth_block_interval=3.0,
    )
    lanes_override = os.environ.get("REPRO_EXECUTION_LANES")
    if lanes_override is not None:
        defaults["execution_lanes"] = int(lanes_override)
    defaults.update(overrides)
    return DeploymentConfig(**defaults)


def make_deployment(**overrides) -> BlockumulusDeployment:
    """Build a fast-test deployment."""
    return BlockumulusDeployment(fast_config(**overrides))


def make_sharded_deployment(shards: int, **overrides) -> ShardedDeployment:
    """Build a fast-test sharded deployment with ``shards`` cell groups."""
    return ShardedDeployment(fast_config(shard_count=shards, **overrides))


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def seeds() -> SeedSequence:
    """A deterministic seed sequence."""
    return SeedSequence(1234)


@pytest.fixture
def deployment() -> BlockumulusDeployment:
    """A two-cell fast deployment with default contracts."""
    return make_deployment()


@pytest.fixture
def four_cell_deployment() -> BlockumulusDeployment:
    """A four-cell fast deployment."""
    return make_deployment(consortium_size=4)


@pytest.fixture
def alice_key() -> PrivateKey:
    """A deterministic client key."""
    return PrivateKey.from_seed("alice")


@pytest.fixture
def bob_key() -> PrivateKey:
    """A second deterministic client key."""
    return PrivateKey.from_seed("bob")
