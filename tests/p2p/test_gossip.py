"""Gossip topologies, propagation, and the Nakamoto baseline model."""

import random

import pytest

from repro.p2p import (
    GossipSimulator,
    NakamotoChainModel,
    Topology,
    TopologyError,
    random_regularish_topology,
)


def test_random_topology_is_connected_and_degree_bounded():
    topology = random_regularish_topology(200, degree=6, rng=random.Random(1))
    assert topology.is_connected()
    assert 2 <= topology.average_degree() <= 8


def test_topology_validation():
    rng = random.Random(1)
    with pytest.raises(TopologyError):
        random_regularish_topology(1, 2, rng)
    with pytest.raises(TopologyError):
        random_regularish_topology(10, 1, rng)
    with pytest.raises(TopologyError):
        Topology(3).add_edge(1, 1)


def test_neighbors_and_adjacency():
    topology = Topology(3)
    topology.add_edge(0, 1)
    topology.add_edge(1, 2)
    assert topology.neighbors(1) == [0, 2]
    assert topology.adjacency()[0] == [1]


def test_propagation_reaches_every_node():
    simulator = GossipSimulator(node_count=300, degree=8, rng=random.Random(3))
    result = simulator.propagate(origin=0)
    assert len(result.delivery_times) == 300
    assert result.delivery_times[0] == 0.0
    assert result.coverage_time(0.5) <= result.coverage_time(0.9) <= result.full_coverage_time


def test_propagation_latency_grows_with_network_size():
    small = GossipSimulator(node_count=100, degree=8, rng=random.Random(5)).propagate()
    large = GossipSimulator(node_count=3_000, degree=8, rng=random.Random(5)).propagate()
    assert large.coverage_time(0.9) > small.coverage_time(0.9)


def test_coverage_fraction_validation():
    simulator = GossipSimulator(node_count=50, degree=4, rng=random.Random(2))
    result = simulator.propagate()
    with pytest.raises(ValueError):
        result.coverage_time(0)


def test_nakamoto_model_quantities():
    model = NakamotoChainModel(
        block_interval=13.0, transactions_per_block=150,
        confirmation_depth=12, propagation_delay=2.0,
    )
    assert model.throughput_tps() == pytest.approx(11.54, rel=0.01)
    assert model.expected_confirmation_latency() == pytest.approx(162.5)
    assert 0 < model.stale_rate() < 1
    assert model.effective_throughput_tps() < model.throughput_tps()


def test_blockumulus_level_throughput_is_far_above_the_gossip_baseline():
    model = NakamotoChainModel()
    # The paper's stress test sustains hundreds of transactions per second;
    # the gossip baseline sits around a dozen.
    assert model.effective_throughput_tps() < 50
