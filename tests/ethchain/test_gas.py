"""Gas schedule, meter, and fee arithmetic."""

import pytest

from repro.ethchain.gas import (
    FeeSchedule,
    GasMeter,
    OutOfGasError,
    TX_BASE_GAS,
    intrinsic_gas,
    keccak_gas,
    log_gas,
)


def test_intrinsic_gas_empty_calldata():
    assert intrinsic_gas(b"") == TX_BASE_GAS


def test_intrinsic_gas_counts_zero_and_nonzero_bytes():
    assert intrinsic_gas(b"\x00" * 10) == TX_BASE_GAS + 40
    assert intrinsic_gas(b"\x01" * 10) == TX_BASE_GAS + 160
    assert intrinsic_gas(b"\x00\x01") == TX_BASE_GAS + 20


def test_intrinsic_gas_create_surcharge():
    assert intrinsic_gas(b"", is_create=True) == TX_BASE_GAS + 32_000


def test_keccak_gas_per_word():
    assert keccak_gas(0) == 30
    assert keccak_gas(32) == 36
    assert keccak_gas(33) == 42


def test_log_gas():
    assert log_gas(topics=1, data_length=10) == 375 + 375 + 80


def test_meter_charges_and_remaining():
    meter = GasMeter(100_000)
    meter.charge(21_000)
    assert meter.gas_used == 21_000
    assert meter.gas_remaining == 79_000


def test_meter_out_of_gas():
    meter = GasMeter(1_000)
    with pytest.raises(OutOfGasError):
        meter.charge(2_000)
    assert meter.gas_used == 1_000


def test_meter_rejects_negative_charge():
    with pytest.raises(ValueError):
        GasMeter(10).charge(-1)


def test_refund_cap_is_one_fifth():
    meter = GasMeter(100_000)
    meter.charge(50_000)
    meter.add_refund(40_000)
    assert meter.settle() == 40_000  # refund capped at 10,000


def test_fee_schedule_conversions():
    schedule = FeeSchedule(gas_price_gwei=22.0, ether_price_usd=733.0)
    assert schedule.gas_price_wei() == 22 * 10 ** 9
    assert schedule.gas_to_ether(1_000_000) == pytest.approx(0.022)
    assert schedule.gas_to_usd(1_000_000) == pytest.approx(0.022 * 733)
