"""Ethereum node mining process and the web3-like provider."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.ethchain import Blockchain, ERC20Token, EthereumNode, Web3Provider
from repro.sim import Environment, SeedSequence


@pytest.fixture
def node_setup():
    env = Environment()
    node = EthereumNode(env, SeedSequence(11).stream("eth"))
    provider = Web3Provider(node)
    key = PrivateKey.from_seed("node-user")
    node.chain.fund(key.address, 10 ** 21)
    return env, node, provider, key


def test_mining_process_produces_blocks(node_setup):
    env, node, provider, key = node_setup
    env.run(until=120)
    assert node.chain.height >= 3


def test_transfer_is_mined_and_receipt_delivered(node_setup):
    env, node, provider, key = node_setup
    recipient = PrivateKey.from_seed("node-recipient").address
    tx_hash = provider.transfer(key, recipient, 10 ** 18)
    event = provider.wait_for_receipt(tx_hash)
    receipt = env.run(event)
    assert receipt.success
    assert provider.get_balance(recipient) == 10 ** 18
    assert provider.get_transaction_receipt(tx_hash) is not None


def test_nonce_tracking_includes_pending(node_setup):
    env, node, provider, key = node_setup
    recipient = PrivateKey.from_seed("node-recipient").address
    assert provider.get_nonce(key.address) == 0
    provider.transfer(key, recipient, 1)
    assert provider.get_nonce(key.address) == 1
    provider.transfer(key, recipient, 1)
    assert provider.get_nonce(key.address) == 2
    env.run(until=env.now + 60)
    assert provider.get_nonce(key.address) == 2
    assert node.chain.state.nonce_of(key.address) == 2


def test_contract_transact_and_view(node_setup):
    env, node, provider, key = node_setup
    token_address = Blockchain.contract_address_for(key.address, "provider-token")
    node.chain.deploy_contract(ERC20Token(token_address, name="T", symbol="T"))
    event = provider.transact_and_wait(
        key, token_address, "mint", {"to": key.address.hex(), "amount": 77}
    )
    receipt = env.run(event)
    assert receipt.success
    assert provider.call(token_address, "balance_of", key.address) == 77


def test_wait_for_already_mined_receipt(node_setup):
    env, node, provider, key = node_setup
    recipient = PrivateKey.from_seed("r2").address
    tx_hash = provider.transfer(key, recipient, 1)
    node.mine_block()
    event = provider.wait_for_receipt(tx_hash)
    assert event.triggered
    assert env.run(event).success


def test_block_number_reporting(node_setup):
    env, node, provider, key = node_setup
    before = provider.block_number()
    node.mine_block()
    assert provider.block_number() == before + 1
