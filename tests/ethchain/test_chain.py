"""Blockchain state transitions, fees, and block assembly."""

import pytest

from repro.crypto.keys import Address, PrivateKey
from repro.ethchain.chain import Blockchain, ChainError, make_funded_key
from repro.ethchain.contracts.erc20 import ERC20Token
from repro.ethchain.transaction import EthTransaction


@pytest.fixture
def chain():
    return Blockchain()


@pytest.fixture
def alice(chain):
    return make_funded_key(chain, "chain-alice", ether=10.0)


@pytest.fixture
def bob(chain):
    return make_funded_key(chain, "chain-bob", ether=1.0)


def test_genesis_block_exists(chain):
    assert chain.height == 0
    assert chain.latest_block().number == 0


def test_value_transfer_moves_funds_and_charges_fee(chain, alice, bob):
    miner = Address.zero()
    tx = EthTransaction.transfer(alice, nonce=0, to=bob.address, value=10 ** 18, gas_price=10 ** 9)
    block = chain.apply_block([tx], miner=miner, timestamp=10.0)
    receipt = block.receipts[0]
    assert receipt.success and receipt.gas_used == 21_000
    fee = 21_000 * 10 ** 9
    assert chain.state.balance_of(bob.address) == 10 ** 18 + 10 ** 18  # initial 1 ETH + transfer
    assert chain.state.balance_of(alice.address) == 9 * 10 ** 18 - fee
    assert chain.state.balance_of(miner) == fee
    assert chain.state.nonce_of(alice.address) == 1


def test_wrong_nonce_rejected(chain, alice, bob):
    tx = EthTransaction.transfer(alice, nonce=5, to=bob.address, value=1, gas_price=10 ** 9)
    with pytest.raises(ChainError):
        chain.apply_block([tx], miner=Address.zero(), timestamp=1.0)


def test_insufficient_funds_rejected(chain, bob, alice):
    tx = EthTransaction.transfer(bob, nonce=0, to=alice.address, value=100 * 10 ** 18, gas_price=10 ** 9)
    with pytest.raises(ChainError):
        chain.apply_block([tx], miner=Address.zero(), timestamp=1.0)


def test_contract_deployment_and_call(chain, alice):
    token_address = Blockchain.contract_address_for(alice.address, "token")
    chain.deploy_contract(ERC20Token(token_address, name="Test", symbol="TST"))
    mint = EthTransaction.contract_call(
        alice, nonce=0, contract=token_address, method="mint",
        args={"to": alice.address.hex(), "amount": 1000}, gas_price=10 ** 9,
    )
    chain.apply_block([mint], miner=Address.zero(), timestamp=1.0)
    assert chain.call_view(token_address, "balance_of", alice.address) == 1000


def test_reverted_contract_call_keeps_fee_and_reverts_state(chain, alice):
    token_address = Blockchain.contract_address_for(alice.address, "token2")
    chain.deploy_contract(ERC20Token(token_address, name="Test", symbol="TST"))
    bad_transfer = EthTransaction.contract_call(
        alice, nonce=0, contract=token_address, method="transfer",
        args={"to": "0x" + "11" * 20, "amount": 5}, gas_price=10 ** 9,
    )
    block = chain.apply_block([bad_transfer], miner=Address.zero(), timestamp=1.0)
    receipt = block.receipts[0]
    assert not receipt.success and "insufficient balance" in receipt.error
    assert receipt.fee_wei > 0
    assert chain.call_view(token_address, "balance_of", "0x" + "11" * 20) == 0


def test_duplicate_contract_deployment_rejected(chain, alice):
    address = Blockchain.contract_address_for(alice.address, "dup")
    chain.deploy_contract(ERC20Token(address, name="A", symbol="A"))
    with pytest.raises(ChainError):
        chain.deploy_contract(ERC20Token(address, name="B", symbol="B"))


def test_receipt_lookup_by_hash(chain, alice, bob):
    tx = EthTransaction.transfer(alice, nonce=0, to=bob.address, value=1, gas_price=10 ** 9)
    chain.apply_block([tx], miner=Address.zero(), timestamp=1.0)
    receipt = chain.receipt(tx.hash_hex())
    assert receipt is not None and receipt.block_number == 1
    assert chain.receipt("0x" + "00" * 32) is None


def test_block_timestamps_never_go_backwards(chain, alice, bob):
    chain.apply_block([], miner=Address.zero(), timestamp=100.0)
    block = chain.apply_block([], miner=Address.zero(), timestamp=50.0)
    assert block.timestamp >= 100.0


def test_contract_address_derivation_is_deterministic(alice):
    a = Blockchain.contract_address_for(alice.address, "salt")
    b = Blockchain.contract_address_for(alice.address, "salt")
    c = Blockchain.contract_address_for(alice.address, "other")
    assert a == b and a != c


def test_unknown_contract_view_rejected(chain):
    with pytest.raises(ChainError):
        chain.call_view(Address.zero(), "balance_of", "0x" + "00" * 20)
