"""The SnapshotRegistry anchor contract."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.ethchain import (
    Blockchain,
    EthereumNode,
    SnapshotRegistry,
    Web3Provider,
)
from repro.sim import Environment, SeedSequence

FP_A = "0x" + "aa" * 32
FP_B = "0x" + "bb" * 32


@pytest.fixture
def setup():
    env = Environment()
    node = EthereumNode(env, SeedSequence(5).stream("eth"), auto_mine=False)
    provider = Web3Provider(node)
    cells = [PrivateKey.from_seed(f"reg-cell-{i}") for i in range(3)]
    outsider = PrivateKey.from_seed("reg-outsider")
    for key in cells + [outsider]:
        node.chain.fund(key.address, 10 ** 21)
    address = Blockchain.contract_address_for(cells[0].address, "registry")
    registry = SnapshotRegistry(
        address, "test-deployment", [k.address for k in cells],
        report_period=600, initial_timestamp=0,
    )
    node.chain.deploy_contract(registry)
    return env, node, provider, registry, cells, outsider


def report(provider, node, env, key, registry, cycle, fingerprint):
    event = provider.transact_and_wait(key, registry.address, "report",
                                       {"cycle": cycle, "fingerprint": fingerprint})
    node.mine_block()
    env.run()
    return event.value


def test_cell_can_report_and_value_is_stored(setup):
    env, node, provider, registry, cells, _ = setup
    receipt = report(provider, node, env, cells[0], registry, 0, FP_A)
    assert receipt.success
    stored = registry.get_report(node.chain.state, 0, cells[0].address)
    assert stored.hex() == "aa" * 32


def test_repeated_report_for_same_cycle_reverts(setup):
    env, node, provider, registry, cells, _ = setup
    assert report(provider, node, env, cells[0], registry, 1, FP_A).success
    second = report(provider, node, env, cells[0], registry, 1, FP_B)
    assert not second.success and "already reported" in second.error
    assert registry.get_report(node.chain.state, 1, cells[0].address).hex() == "aa" * 32


def test_non_cell_cannot_report(setup):
    env, node, provider, registry, cells, outsider = setup
    receipt = report(provider, node, env, outsider, registry, 0, FP_A)
    assert not receipt.success and "not a registered cell" in receipt.error


def test_cells_report_independently(setup):
    env, node, provider, registry, cells, _ = setup
    report(provider, node, env, cells[0], registry, 4, FP_A)
    report(provider, node, env, cells[1], registry, 4, FP_B)
    reports = registry.reports_for_cycle(node.chain.state, 4)
    assert len(reports) == 2
    assert reports[cells[0].address.hex()].hex() == "aa" * 32
    assert reports[cells[1].address.hex()].hex() == "bb" * 32


def test_malformed_fingerprint_rejected(setup):
    env, node, provider, registry, cells, _ = setup
    receipt = report(provider, node, env, cells[0], registry, 0, "0x1234")
    assert not receipt.success


def test_report_gas_close_to_paper_value(setup):
    env, node, provider, registry, cells, _ = setup
    receipt = report(provider, node, env, cells[0], registry, 0, FP_A)
    # The paper's Table III implies 49,193 gas per report; the reproduction
    # must land within 10% of that figure for the cost table to be valid.
    assert abs(receipt.gas_used - 49_193) / 49_193 < 0.10


def test_contingency_submission_and_listing(setup):
    env, node, provider, registry, cells, outsider = setup
    payload = {"payload": {"data": {"contract": "fastmoney"}}, "signature": "0x" + "00" * 65}
    event = provider.transact_and_wait(outsider, registry.address, "submit_contingency",
                                       {"transaction": payload})
    node.mine_block()
    env.run()
    assert event.value.success
    assert registry.contingency_count(node.chain.state) == 1
    stored = registry.get_contingency(node.chain.state, 0)
    assert stored["payload"]["data"]["contract"] == "fastmoney"
    assert registry.all_contingencies(node.chain.state) == [stored]


def test_constructor_validation():
    with pytest.raises(ValueError):
        SnapshotRegistry(PrivateKey.from_seed("x").address, "d", [], 600, 0)
    with pytest.raises(ValueError):
        SnapshotRegistry(
            PrivateKey.from_seed("x").address, "d",
            [PrivateKey.from_seed("c").address], 0, 0,
        )
