"""Ethereum-style transactions: signing, hashing, calldata, validation."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.ethchain.transaction import (
    EthTransaction,
    TransactionError,
    decode_call_data,
    encode_call_data,
)

KEY = PrivateKey.from_seed("eth-tx-tests")
OTHER = PrivateKey.from_seed("other")


def make_transfer(nonce=0, value=10 ** 18):
    return EthTransaction.transfer(KEY, nonce=nonce, to=OTHER.address, value=value, gas_price=10 ** 9)


def test_sender_recovered_from_signature():
    tx = make_transfer()
    tx._sender = None
    assert tx.sender == KEY.address


def test_hash_is_stable_and_signature_dependent():
    tx1 = make_transfer()
    tx2 = make_transfer()
    assert tx1.hash_hex() == tx2.hash_hex()
    assert make_transfer(nonce=1).hash_hex() != tx1.hash_hex()


def test_unsigned_transaction_cannot_encode():
    tx = EthTransaction(nonce=0, gas_price=1, gas_limit=21_000, to=OTHER.address, value=1)
    with pytest.raises(TransactionError):
        tx.encode()


def test_validate_basic_checks_gas_limit():
    tx = EthTransaction(nonce=0, gas_price=1, gas_limit=100, to=OTHER.address, value=1)
    tx.sign(KEY)
    with pytest.raises(TransactionError):
        tx.validate_basic()


def test_contract_call_roundtrip():
    tx = EthTransaction.contract_call(
        KEY, nonce=3, contract=OTHER.address, method="report",
        args={"cycle": 7, "fingerprint": "0x" + "ab" * 32}, gas_price=22 * 10 ** 9,
    )
    method, args = decode_call_data(tx.data)
    assert method == "report"
    assert args == {"cycle": 7, "fingerprint": "0x" + "ab" * 32}
    assert tx.sender == KEY.address


def test_calldata_selector_checked():
    data = encode_call_data("report", {"cycle": 1})
    tampered = b"\x00\x00\x00\x00" + data[4:]
    with pytest.raises(TransactionError):
        decode_call_data(tampered)


def test_calldata_too_short():
    with pytest.raises(TransactionError):
        decode_call_data(b"\x01")


def test_intrinsic_gas_reflects_calldata():
    plain = make_transfer()
    call = EthTransaction.contract_call(
        KEY, nonce=0, contract=OTHER.address, method="m", args={"k": "v"}, gas_price=1
    )
    assert plain.intrinsic_gas() == 21_000
    assert call.intrinsic_gas() > 21_000


def test_byte_size_positive_and_reasonable():
    assert 100 < make_transfer().byte_size() < 300


def test_max_fee():
    tx = make_transfer()
    assert tx.max_fee() == tx.gas_limit * tx.gas_price
