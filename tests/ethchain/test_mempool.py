"""Mempool ordering and replacement rules."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.ethchain.mempool import Mempool, MempoolError
from repro.ethchain.transaction import EthTransaction

ALICE = PrivateKey.from_seed("mempool-alice")
BOB = PrivateKey.from_seed("mempool-bob")


def transfer(key, nonce, gas_price=10 ** 9):
    return EthTransaction.transfer(key, nonce=nonce, to=BOB.address, value=1, gas_price=gas_price)


def test_add_and_contains():
    pool = Mempool()
    tx = transfer(ALICE, 0)
    tx_hash = pool.add(tx)
    assert pool.contains(tx_hash)
    assert len(pool) == 1


def test_duplicate_rejected():
    pool = Mempool()
    tx = transfer(ALICE, 0)
    pool.add(tx)
    with pytest.raises(MempoolError):
        pool.add(transfer(ALICE, 0))


def test_replacement_requires_higher_gas_price():
    pool = Mempool()
    pool.add(transfer(ALICE, 0, gas_price=10 ** 9))
    with pytest.raises(MempoolError):
        pool.add(transfer(ALICE, 0, gas_price=10 ** 9 // 2))
    pool.add(transfer(ALICE, 0, gas_price=2 * 10 ** 9))
    assert len(pool) == 1


def test_pending_sorted_by_gas_price():
    pool = Mempool()
    cheap = transfer(ALICE, 0, gas_price=1 * 10 ** 9)
    rich = transfer(BOB, 0, gas_price=5 * 10 ** 9)
    pool.add(cheap)
    pool.add(rich)
    assert pool.pending()[0].sender == BOB.address


def test_select_for_block_respects_nonce_order():
    pool = Mempool()
    pool.add(transfer(ALICE, 1))
    pool.add(transfer(ALICE, 0))
    selected = pool.select_for_block({ALICE.address: 0}, gas_limit=10_000_000)
    assert [tx.nonce for tx in selected] == [0, 1]


def test_select_for_block_skips_nonce_gap():
    pool = Mempool()
    pool.add(transfer(ALICE, 2))
    selected = pool.select_for_block({ALICE.address: 0}, gas_limit=10_000_000)
    assert selected == []


def test_select_for_block_respects_gas_limit():
    pool = Mempool()
    pool.add(transfer(ALICE, 0))
    pool.add(transfer(BOB, 0))
    selected = pool.select_for_block({ALICE.address: 0, BOB.address: 0}, gas_limit=30_000)
    assert len(selected) == 1


def test_remove_mined():
    pool = Mempool()
    tx = transfer(ALICE, 0)
    pool.add(tx)
    pool.remove_mined([tx])
    assert len(pool) == 0 and not pool.contains(tx.hash_hex())


def test_unsigned_transaction_rejected():
    pool = Mempool()
    unsigned = EthTransaction(nonce=0, gas_price=1, gas_limit=21_000, to=BOB.address, value=1)
    with pytest.raises(MempoolError):
        pool.add(unsigned)


def test_full_pool_rejected():
    pool = Mempool(max_size=1)
    pool.add(transfer(ALICE, 0))
    with pytest.raises(MempoolError):
        pool.add(transfer(BOB, 0))
