"""The ERC-20 style native token contract."""

import pytest

from repro.crypto.keys import Address, PrivateKey
from repro.ethchain.chain import Blockchain, make_funded_key
from repro.ethchain.contracts.erc20 import ERC20Token
from repro.ethchain.transaction import EthTransaction


@pytest.fixture
def setup():
    chain = Blockchain()
    alice = make_funded_key(chain, "erc20-alice")
    bob = make_funded_key(chain, "erc20-bob")
    token_address = Blockchain.contract_address_for(alice.address, "erc20")
    chain.deploy_contract(ERC20Token(token_address, name="Coin", symbol="CN"))
    return chain, alice, bob, token_address


def call(chain, key, contract, method, args):
    tx = EthTransaction.contract_call(
        key, nonce=chain.state.nonce_of(key.address), contract=contract,
        method=method, args=args, gas_price=10 ** 9,
    )
    block = chain.apply_block([tx], miner=Address.zero(), timestamp=1.0)
    return block.receipts[0]


def test_mint_and_balance(setup):
    chain, alice, bob, token = setup
    receipt = call(chain, alice, token, "mint", {"to": alice.address.hex(), "amount": 500})
    assert receipt.success
    assert chain.call_view(token, "balance_of", alice.address) == 500
    assert chain.call_view(token, "total_supply") == 500


def test_transfer(setup):
    chain, alice, bob, token = setup
    call(chain, alice, token, "mint", {"to": alice.address.hex(), "amount": 100})
    receipt = call(chain, alice, token, "transfer", {"to": bob.address.hex(), "amount": 40})
    assert receipt.success
    assert chain.call_view(token, "balance_of", alice.address) == 60
    assert chain.call_view(token, "balance_of", bob.address) == 40


def test_transfer_insufficient_balance_reverts(setup):
    chain, alice, bob, token = setup
    receipt = call(chain, alice, token, "transfer", {"to": bob.address.hex(), "amount": 1})
    assert not receipt.success


def test_approve_and_transfer_from(setup):
    chain, alice, bob, token = setup
    call(chain, alice, token, "mint", {"to": alice.address.hex(), "amount": 100})
    call(chain, alice, token, "approve", {"spender": bob.address.hex(), "amount": 30})
    receipt = call(chain, bob, token, "transfer_from",
                   {"owner": alice.address.hex(), "to": bob.address.hex(), "amount": 30})
    assert receipt.success
    assert chain.call_view(token, "balance_of", bob.address) == 30
    over = call(chain, bob, token, "transfer_from",
                {"owner": alice.address.hex(), "to": bob.address.hex(), "amount": 1})
    assert not over.success


def test_transfer_emits_log(setup):
    chain, alice, bob, token = setup
    call(chain, alice, token, "mint", {"to": alice.address.hex(), "amount": 10})
    receipt = call(chain, alice, token, "transfer", {"to": bob.address.hex(), "amount": 5})
    assert any(log["event"] == "Transfer" for log in receipt.logs)


def test_invalid_amounts_revert(setup):
    chain, alice, bob, token = setup
    assert not call(chain, alice, token, "mint", {"to": alice.address.hex(), "amount": 0}).success
    assert not call(chain, alice, token, "transfer", {"to": bob.address.hex(), "amount": -5}).success
