"""Table II communication accounting."""

import pytest

from repro.analysis.communication import (
    CommunicationError,
    max_throughput_from_bandwidth,
    measure_profile,
    render_table,
)


@pytest.fixture(scope="module")
def profiles():
    return [measure_profile(cells) for cells in (2, 4)]


def test_client_request_size_roughly_constant_across_consortium_sizes(profiles):
    two, four = profiles
    assert abs(two.client_cell_payment.outbound - four.client_cell_payment.outbound) < 60


def test_reply_grows_with_consortium_size(profiles):
    two, four = profiles
    growth = four.client_cell_payment.inbound - two.client_cell_payment.inbound
    # Two extra confirmations ride in the receipt: several hundred bytes.
    assert growth > 400


def test_per_transaction_bytes_in_paper_ballpark(profiles):
    two = profiles[0]
    # Paper (2 cells): payment 1,140/559 bytes; forward 667/947 bytes.
    assert 500 < two.client_cell_payment.outbound < 1_200
    assert 800 < two.client_cell_payment.inbound < 3_000
    assert 500 < two.cell_cell_forward.outbound < 2_500
    assert 400 < two.cell_cell_forward.inbound < 2_000


def test_fingerprint_row_present(profiles):
    two = profiles[0]
    rows = dict((label, (inbound, outbound)) for label, inbound, outbound in two.rows())
    assert "CL<->C: fingerprint" in rows and "C<->C: forward" in rows


def test_bandwidth_supports_tens_of_thousands_of_tps(profiles):
    two = profiles[0]
    per_tx_bytes = two.client_cell_payment.inbound + two.client_cell_payment.outbound
    tps = max_throughput_from_bandwidth(per_tx_bytes, bandwidth_bps=1e9)
    # Section VI-D: a 1 Gbps uplink carries >30,000 transactions per second.
    assert tps > 30_000


def test_throughput_helper_validation():
    with pytest.raises(CommunicationError):
        max_throughput_from_bandwidth(0)


def test_render_table(profiles):
    text = render_table(list(profiles))
    assert "payment" in text and "2 cells" in text
