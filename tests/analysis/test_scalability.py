"""Section IV scalability models and the log-log fit helper."""

import pytest

from repro.analysis.scalability import ScalabilityModel, ScalabilityParameters, fit_growth_exponent


@pytest.fixture
def model():
    return ScalabilityModel()


def test_latency_is_linear_in_transactions(model):
    assert model.cumulative_latency(2_000, cells=4) == pytest.approx(
        2 * model.cumulative_latency(1_000, cells=4))


def test_communication_linear_in_transactions_and_grows_with_cells(model):
    assert model.communication_bytes(2_000, 4) == 2 * model.communication_bytes(1_000, 4)
    assert model.communication_bytes(1_000, 8) > model.communication_bytes(1_000, 2)


def test_storage_is_three_replicas_per_cell(model):
    params = model.parameters
    assert model.storage_bytes(10, 4) == 3 * 4 * 10 * params.transaction_footprint_bytes


def test_compute_scales_with_users_and_transactions(model):
    base = model.compute_seconds(1_000, users=100, cells=4)
    assert model.compute_seconds(2_000, users=100, cells=4) == pytest.approx(2 * base)
    assert model.compute_seconds(1_000, users=10_000, cells=4) > base


def test_fee_is_independent_of_transaction_volume(model):
    fee = ScalabilityModel.fee_overhead(reports_per_day=144, gas_per_report=49_193, cells=4)
    assert fee == 4 * 144 * 49_193


def test_fit_growth_exponent_identifies_linear_and_constant():
    sizes = [100, 200, 400, 800]
    linear = [3 * size for size in sizes]
    constant = [42.0] * len(sizes)
    quadratic = [size ** 2 for size in sizes]
    assert fit_growth_exponent(sizes, linear) == pytest.approx(1.0, abs=0.01)
    assert fit_growth_exponent(sizes, constant) == pytest.approx(0.0, abs=0.01)
    assert fit_growth_exponent(sizes, quadratic) == pytest.approx(2.0, abs=0.01)


def test_fit_growth_exponent_recovers_fractional_power_laws():
    sizes = [10, 100, 1_000, 10_000]
    sqrt_growth = [size ** 0.5 for size in sizes]
    cubic = [2 * size ** 3 for size in sizes]
    assert fit_growth_exponent(sizes, sqrt_growth) == pytest.approx(0.5, abs=0.01)
    assert fit_growth_exponent(sizes, cubic) == pytest.approx(3.0, abs=0.01)


def test_fit_growth_exponent_tolerates_measurement_noise():
    sizes = [10, 100, 1_000, 10_000]
    noise = (1.05, 0.95, 1.02, 0.98)
    noisy_linear = [3 * size * factor for size, factor in zip(sizes, noise)]
    assert fit_growth_exponent(sizes, noisy_linear) == pytest.approx(1.0, abs=0.05)


def test_fit_growth_exponent_validation():
    with pytest.raises(ValueError):
        fit_growth_exponent([1], [1])
    with pytest.raises(ValueError):
        fit_growth_exponent([1, 2], [0, 1])
    with pytest.raises(ValueError):
        fit_growth_exponent([2, 2], [1, 1])
    # Degenerate shapes: empty, mismatched lengths, non-positive input
    # (a log-log fit is undefined there and must refuse, not NaN out).
    with pytest.raises(ValueError):
        fit_growth_exponent([], [])
    with pytest.raises(ValueError):
        fit_growth_exponent([1, 2, 3], [1, 2])
    with pytest.raises(ValueError):
        fit_growth_exponent([-1, 2], [1, 2])
    with pytest.raises(ValueError):
        fit_growth_exponent([1, 2], [1, -2])


def test_model_exponents_match_the_paper_claims(model):
    sizes = [500, 1_000, 2_000, 4_000]
    data = [model.communication_bytes(n, 4) for n in sizes]
    storage = [model.storage_bytes(n, 4) for n in sizes]
    fees = [ScalabilityModel.fee_overhead(144, 49_193, 4) for _ in sizes]
    assert fit_growth_exponent(sizes, data) == pytest.approx(1.0, abs=0.01)
    assert fit_growth_exponent(sizes, storage) == pytest.approx(1.0, abs=0.01)
    assert fit_growth_exponent(sizes, [fee + 1e-9 for fee in fees]) == pytest.approx(0.0, abs=0.01)


def test_parameters_are_overridable():
    custom = ScalabilityModel(ScalabilityParameters(transaction_footprint_bytes=1_000))
    assert custom.storage_bytes(1, 1) == 3_000
