"""Table III cost model."""

import pytest

from repro.analysis.cost import (
    PAPER_GAS_PER_REPORT,
    TABLE3_REPORT_PERIODS,
    CostModel,
    render_table,
)


@pytest.fixture
def model():
    return CostModel()


def test_reports_per_day(model):
    assert model.reports_per_day(600) == 144
    assert model.reports_per_day(86_400) == 1
    with pytest.raises(ValueError):
        model.reports_per_day(0)


def test_gas_per_day_matches_paper_exactly(model):
    expected = {600: 7_083_792, 1_800: 2_361_264, 3_600: 1_180_632, 28_800: 147_579, 86_400: 49_193}
    for label, seconds in TABLE3_REPORT_PERIODS:
        assert model.row(label, seconds).gas_per_day == expected[seconds]


def test_usd_scales_linearly_with_report_frequency(model):
    table = model.table()
    ten_minute = table[0]
    daily = table[-1]
    assert ten_minute.usd_per_day == pytest.approx(144 * daily.usd_per_day, rel=1e-6)
    assert daily.usd_per_day == pytest.approx(0.79, abs=0.05)


def test_measured_gas_can_replace_paper_constant():
    measured = CostModel(gas_per_report=51_458)
    assert measured.row("24 hours", 86_400).gas_per_day == 51_458
    # The measured figure is within 10% of the paper's 49,193.
    assert abs(measured.gas_per_report - PAPER_GAS_PER_REPORT) / PAPER_GAS_PER_REPORT < 0.1


def test_fee_per_transaction_and_advantage(model):
    per_tx = model.fee_per_transaction(daily_transactions=1_000, period_seconds=600)
    assert per_tx == pytest.approx(model.row("10 min", 600).usd_per_day / 1_000)
    advantage = model.advantage_over_ethereum()
    # The paper quotes ~26x using its own (internally inconsistent) USD
    # column; with the stated gas price and ether price the advantage is
    # even larger. Either way it must exceed 20x.
    assert advantage > 20


def test_monthly_fee_per_subscriber(model):
    fee = model.monthly_fee_per_subscriber(subscribers=10_000, period_seconds=600)
    assert fee < 1.0
    with pytest.raises(ValueError):
        model.monthly_fee_per_subscriber(subscribers=0)


def test_render_table_contains_all_rows(model):
    text = render_table(model.table())
    for label, _seconds in TABLE3_REPORT_PERIODS:
        assert label in text
