"""Table I comparison matrix."""

from repro.analysis.comparison import (
    PRIOR_WORK,
    SolutionFeatures,
    blockumulus_row,
    comparison_table,
    render_table,
)


def test_prior_work_matches_paper_rows():
    names = [row.name for row in PRIOR_WORK]
    assert names == [
        "Algorand", "RapidChain", "Lightning", "Ekiden", "Arbitrum",
        "Jidar", "Monoxide", "Plasma", "OmniLedger",
    ]
    by_name = {row.name: row for row in PRIOR_WORK}
    assert not by_name["Algorand"].general_purpose_contracts
    assert by_name["Ekiden"].general_purpose_contracts
    assert by_name["OmniLedger"].storage_scalability
    # No prior system covers all four capabilities simultaneously.
    assert not any(
        row.general_purpose_contracts and row.tps_scalability
        and row.storage_scalability and row.compute_scalability
        for row in PRIOR_WORK
    )


def test_blockumulus_row_derived_from_measurements():
    row = blockumulus_row(
        supports_contract_deployment=True,
        measured_tps=500.0,
        baseline_tps=12.0,
        storage_scales_with_cells=True,
        compute_scales_with_cells=True,
    )
    assert row.general_purpose_contracts and row.tps_scalability
    assert row.storage_scalability and row.compute_scalability


def test_blockumulus_row_honest_when_measurements_are_poor():
    row = blockumulus_row(True, measured_tps=5.0, baseline_tps=12.0,
                          storage_scales_with_cells=False, compute_scales_with_cells=True)
    assert not row.tps_scalability and not row.storage_scalability


def test_comparison_table_places_blockumulus_last():
    table = comparison_table()
    assert table[-1].name == "Blockumulus"
    assert len(table) == 10


def test_render_table_text():
    text = render_table(comparison_table())
    assert "Blockumulus" in text and "Algorand" in text
    assert "yes" in text and "no" in text


def test_row_rendering_marks():
    row = SolutionFeatures("X", True, False, True, False)
    assert row.row() == ("X", "yes", "no", "yes", "no")
