"""Figure-rendering helpers over measured workload reports."""

import pytest

from repro.analysis.figures import fig8_report, fig9_report, fig10_report, headline_claims
from repro.client import run_burst_transfers, run_sequential_transfers
from tests.conftest import make_deployment


@pytest.fixture(scope="module")
def small_reports():
    sequential = run_sequential_transfers(make_deployment(), count=10, pools=2)
    burst = run_burst_transfers(make_deployment(seed=43), count=30, pools=2)
    return sequential, burst


def test_fig8_rendering(small_reports):
    sequential, _burst = small_reports
    text = fig8_report([sequential])
    assert "[Fig.8]" in text and "p90=" in text and "#" in text


def test_fig9_rendering(small_reports):
    _sequential, burst = small_reports
    text = fig9_report([burst])
    assert "[Fig.9]" in text and "makespan=" in text


def test_fig10_rendering(small_reports):
    _sequential, burst = small_reports
    text = fig10_report([burst])
    assert "tps" in text and "#" in text


def test_headline_claims_extraction(small_reports):
    sequential, burst = small_reports
    claims = headline_claims([sequential, burst])
    assert claims["worst_normal_load_p90"] > 0
    # No 20k-burst in this reduced set: the makespan slot is NaN.
    assert claims["best_20k_makespan"] != claims["best_20k_makespan"]
