"""The SLO capacity model against every committed benchmark baseline.

This is the CI loop-closure of the endurance work: the capacity model is
fitted from the committed ``BENCH_parallel.json`` / ``BENCH_sharding.json``
/ ``BENCH_pipeline.json`` payloads and its predictions are asserted
against **every** measured matrix point — throughput within ±20% and
latency percentiles within ±35% — plus the endurance baseline's
sustained-overload point.  A code change that shifts measured capacity
out of these bands must re-run the benchmarks and commit new baselines.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.scalability import CapacityError, CapacityModel

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The CI accuracy bands of the capacity model.
TPS_TOLERANCE = 0.20
LATENCY_TOLERANCE = 0.35


def _load(name: str) -> dict:
    path = REPO_ROOT / name
    if not path.exists():
        pytest.skip(f"{name} baseline is not committed yet")
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def parallel():
    return _load("BENCH_parallel.json")


@pytest.fixture(scope="module")
def sharding():
    return _load("BENCH_sharding.json")


@pytest.fixture(scope="module")
def pipeline():
    return _load("BENCH_pipeline.json")


@pytest.fixture(scope="module")
def model(parallel, sharding, pipeline):
    return CapacityModel.from_benchmarks(parallel, sharding, pipeline)


def _assert_point(model, measured, **point):
    prediction = model.predict(**point)
    assert prediction.tps == pytest.approx(
        measured["throughput_tps"], rel=TPS_TOLERANCE
    ), f"tps off at {point}: predicted {prediction.tps}, measured {measured['throughput_tps']}"
    assert prediction.p50 == pytest.approx(
        measured["latency_p50_s"], rel=LATENCY_TOLERANCE
    ), f"p50 off at {point}"
    assert prediction.p99 == pytest.approx(
        measured["latency_p99_s"], rel=LATENCY_TOLERANCE
    ), f"p99 off at {point}"


def test_every_parallel_matrix_point(model, parallel):
    for row in parallel["sweep"]:
        _assert_point(model, row, lanes=row["lanes"], conflict=row["conflict_rate"])


def test_every_sharding_matrix_point(model, sharding):
    for row in sharding["sweep"]:
        _assert_point(
            model, row, shards=row["shards"], cross_rate=row["cross_shard_rate"]
        )


def test_every_contended_matrix_point(model, sharding):
    for row in sharding["contended_sweep"]:
        _assert_point(
            model,
            row,
            shards=row["shards"],
            lanes=1,
            conflict=row["conflict_rate"],
            cross_rate=row["cross_shard_rate"],
        )


def test_endurance_overload_point(model):
    """The measured sustained-overload throughput matches predicted capacity.

    Under open-loop overload the admission controller pins delivered
    throughput at the cell's capacity; the endurance baseline's overload
    phase therefore measures exactly what the model predicts for its
    configuration.
    """
    endurance = _load("BENCH_endurance.json")
    overload = endurance["overload"]
    plan = overload["plan"]
    predicted = model.capacity_tps(shards=1, lanes=1)
    assert plan["rate"] >= 1.5 * predicted, "overload phase must push >= 1.5x capacity"
    assert overload["throughput_tps"] == pytest.approx(predicted, rel=TPS_TOLERANCE)


def test_fitted_axes_are_sane(model):
    assert model.base_tps > 0
    assert model.shard_factors[1] == pytest.approx(1.0)
    # Shard factors grow with the shard count (near-linear scaling).
    factors = [model.shard_factors[s] for s in sorted(model.shard_factors)]
    assert factors == sorted(factors)
    # Cross-shard traffic is a penalty, batching trades peak tps for bytes.
    assert model.cross_gamma > 0
    assert 0 < model.batching_factor <= 1.0
    assert model.k99 >= model.k50 > 0


def test_off_grid_queries_raise(model):
    with pytest.raises(CapacityError):
        model.predict(shards=16)
    with pytest.raises(CapacityError):
        model.predict(lanes=3, conflict=0.0)
    with pytest.raises(CapacityError):
        model.predict(cross_rate=1.5)


def test_malformed_payloads_raise():
    with pytest.raises(CapacityError):
        CapacityModel.from_benchmarks({"sweep": []}, {"sweep": []})
    with pytest.raises(CapacityError):
        CapacityModel.from_benchmarks(
            {"sweep": [{"lanes": 2, "conflict_rate": 0.0, "throughput_tps": 10.0}]},
            {"sweep": [{"shards": 1, "cross_shard_rate": 0.0, "throughput_tps": 10.0}]},
        )
    with pytest.raises(CapacityError):
        CapacityModel.from_benchmarks(
            {
                "sweep": [
                    {
                        "lanes": 1,
                        "conflict_rate": 0.0,
                        "throughput_tps": 10.0,
                        "latency_p50_s": 1.0,
                        "latency_p99_s": 2.0,
                    }
                ]
            },
            {"sweep": [{"shards": 2, "cross_shard_rate": 0.0, "throughput_tps": 20.0}]},
        )


def test_serialized_form_is_json_native(model):
    data = model.to_data()
    assert json.loads(json.dumps(data)) == data
    assert data["shard_factors"]["1"] == pytest.approx(1.0)
