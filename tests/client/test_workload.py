"""Workload generators (reduced-scale versions of the paper's harness)."""

import pytest

from repro.client.workload import (
    MixedOperation,
    WorkloadError,
    build_client_pools,
    plan_mixed_genesis,
    run_burst_cas_uploads,
    run_burst_transfers,
    run_contended_transfers,
    run_mixed_operations,
    run_sequential_transfers,
    run_sharded_burst_transfers,
    run_sharded_contended_transfers,
)
from tests.conftest import make_deployment, make_sharded_deployment


def test_build_client_pools_round_robin(four_cell_deployment):
    pools = build_client_pools(four_cell_deployment, pools=8)
    assert len(pools) == 8
    assert pools[0].service_cell is four_cell_deployment.cell(0)
    assert pools[5].service_cell is four_cell_deployment.cell(1)
    with pytest.raises(WorkloadError):
        build_client_pools(four_cell_deployment, pools=0)


def test_sequential_transfer_workload_summary():
    deployment = make_deployment()
    report = run_sequential_transfers(deployment, count=12, pools=4)
    assert len(report.results) == 12
    assert report.failure_count == 0
    summary = report.summary()
    assert summary["transactions"] == 12
    assert summary["latency_p90"] >= summary["latency_p50"] > 0
    assert summary["throughput_tps"] > 0


def test_burst_transfer_workload():
    deployment = make_deployment()
    report = run_burst_transfers(deployment, count=40, pools=4)
    assert len(report.results) == 40
    assert report.failure_count == 0
    throughput = report.throughput()
    assert throughput.operations == 40
    assert throughput.makespan > 0


def test_burst_cas_workload_stores_blobs():
    deployment = make_deployment()
    report = run_burst_cas_uploads(deployment, count=20, pools=4, blob_bytes=32)
    assert report.failure_count == 0
    cas = deployment.cell(0).contracts.get("system.cas")
    assert cas.query("stats", {})["puts"] == 20


def test_latencies_series_covers_only_successes():
    deployment = make_deployment()
    report = run_burst_transfers(deployment, count=10, pools=2)
    assert len(report.latencies()) == len(report.successes) == 10


def test_empty_workload_report_raises():
    deployment = make_deployment()
    report = run_burst_transfers(deployment, count=5, pools=1)
    report.results = [r for r in report.results if not r.ok]
    with pytest.raises(WorkloadError):
        report.throughput()


def test_bad_counts_fail_fast_instead_of_producing_empty_bursts():
    deployment = make_deployment()
    for bad_count in (0, -3, 1.5, True, "12"):
        with pytest.raises(WorkloadError, match="positive integer"):
            run_burst_transfers(deployment, count=bad_count)
        with pytest.raises(WorkloadError, match="positive integer"):
            run_sequential_transfers(deployment, count=bad_count)
        with pytest.raises(WorkloadError, match="positive integer"):
            run_burst_cas_uploads(deployment, count=bad_count)
        with pytest.raises(WorkloadError, match="positive integer"):
            run_contended_transfers(deployment, count=bad_count)
    # Validation fires before any client pool or contract is created.
    assert deployment.network.total_messages() == 0


def test_bad_amounts_and_rates_fail_fast():
    deployment = make_deployment()
    with pytest.raises(WorkloadError, match="amount"):
        run_burst_transfers(deployment, count=5, amount=0)
    with pytest.raises(WorkloadError, match="conflict_rate"):
        run_contended_transfers(deployment, count=5, conflict_rate=1.5)
    with pytest.raises(WorkloadError, match="conflict_rate"):
        run_contended_transfers(deployment, count=5, conflict_rate="half")
    with pytest.raises(WorkloadError, match="hot account"):
        run_contended_transfers(deployment, count=5, hot_accounts=0)
    with pytest.raises(WorkloadError, match="blob_bytes"):
        run_burst_cas_uploads(deployment, count=5, blob_bytes=0)


def test_all_cross_shard_workload_summarizes_cleanly():
    deployment = make_sharded_deployment(2)
    report = run_sharded_burst_transfers(
        deployment, count=4, cross_shard_rate=1.0, pools=2
    )
    assert len(report.cross_results) == 4 and not report.results
    assert report.failure_count == 0
    summary = report.summary()
    assert summary["transactions"] == 4
    assert summary["cross_shard_transactions"] == 4
    assert summary["latency_p50"] is None
    assert summary["throughput_tps"] > 0
    assert summary["cross_latency_p50"] > 0


def test_sharded_workload_validation():
    deployment = make_sharded_deployment(1)
    with pytest.raises(WorkloadError, match="positive integer"):
        run_sharded_burst_transfers(deployment, count=0)
    with pytest.raises(WorkloadError, match="at least two shards"):
        run_sharded_burst_transfers(deployment, count=5, cross_shard_rate=0.1)
    with pytest.raises(WorkloadError, match="cross_shard_rate"):
        run_sharded_contended_transfers(deployment, count=5, cross_shard_rate=2.0)


# ----------------------------------------------------------------------
# Mixed multi-contract workloads: failure paths
# ----------------------------------------------------------------------
def test_mixed_workload_pauper_revert_is_counted_not_dropped():
    """An unfunded sender's transfer reverts and stays in the report.

    ``results[i]`` must line up with ``operations[i]`` even for failures:
    the revert is an observation the chaos oracles rely on, not noise to
    be filtered out.
    """
    deployment = make_sharded_deployment(1)
    operations = [
        MixedOperation(at=0.0, kind="transfer", sender=0, args={"to": 1, "amount": 5}),
        MixedOperation(at=0.5, kind="transfer", sender=1, args={"to": 2, "amount": 3}),
        MixedOperation(at=1.0, kind="transfer", sender=2, args={"to": 0, "amount": 2}),
    ]
    report = run_mixed_operations(
        deployment,
        operations,
        account_seeds=["acct/a", "acct/b", "acct/c"],
        genesis={0: 0},  # sender 0 becomes a pauper despite sending 5
        horizon=60.0,
    )
    assert len(report.results) == len(operations)
    assert report.unanswered_count == 0
    pauper = report.results[0]
    assert pauper is not None and not pauper.ok
    assert "insufficient funds" in pauper.error
    assert report.ok_count == 2
    assert report.genesis == [0, 3, 2]


def test_plan_mixed_genesis_funds_totals_and_leaves_paupers_at_zero():
    operations = [
        MixedOperation(at=0.0, kind="transfer", sender=0, args={"to": 1, "amount": 5}),
        MixedOperation(at=1.0, kind="transfer", sender=0, args={"to": 2, "amount": 7}),
        MixedOperation(at=2.0, kind="invest", sender=1, args={"amount": 9}),
    ]
    assert plan_mixed_genesis(operations, 3) == {0: 12, 1: 0, 2: 0}


def test_mixed_operation_validation_accepts_every_well_formed_kind():
    well_formed = [
        MixedOperation(at=0.0, kind="transfer", sender=0, args={"to": 1, "amount": 1}),
        MixedOperation(at=1.5, kind="cas_put", sender=1, args={"content_hex": "0xdead"}),
        MixedOperation(at=2.0, kind="vote", sender=0,
                       args={"election_id": "e1", "choice": "yes"}),
        MixedOperation(at=3.0, kind="invest", sender=1, args={"amount": 2}),
    ]
    for op in well_formed:
        op.validate(2)  # must not raise


def test_mixed_operation_validation_rejects_every_malformed_shape():
    malformed = [
        (MixedOperation(at=0.0, kind="mint", sender=0), "unknown mixed operation kind"),
        (MixedOperation(at=-1.0, kind="invest", sender=0, args={"amount": 1}),
         "non-negative"),
        (MixedOperation(at=0.0, kind="invest", sender=9, args={"amount": 1}),
         "account index"),
        (MixedOperation(at=0.0, kind="invest", sender="0", args={"amount": 1}),
         "account index"),
        (MixedOperation(at=0.0, kind="transfer", sender=0, args={"to": 0, "amount": 1}),
         "different account"),
        (MixedOperation(at=0.0, kind="transfer", sender=0, args={"to": 7, "amount": 1}),
         "different account"),
        (MixedOperation(at=0.0, kind="transfer", sender=0, args={"to": 1, "amount": 0}),
         "positive integer"),
        (MixedOperation(at=0.0, kind="transfer", sender=0, args={"to": 1, "amount": True}),
         "positive integer"),
        (MixedOperation(at=0.0, kind="invest", sender=0, args={"amount": -2}),
         "positive integer"),
        (MixedOperation(at=0.0, kind="cas_put", sender=0, args={"content_hex": "dead"}),
         "0x-hex"),
        (MixedOperation(at=0.0, kind="cas_put", sender=0), "0x-hex"),
        (MixedOperation(at=0.0, kind="vote", sender=0, args={"election_id": "e1"}),
         "election_id"),
        (MixedOperation(at=0.0, kind="vote", sender=0, args={"choice": "yes"}),
         "election_id"),
    ]
    for op, match in malformed:
        with pytest.raises(WorkloadError, match=match):
            op.validate(2)


def test_run_mixed_operations_preconditions_fail_before_any_traffic():
    deployment = make_sharded_deployment(1)
    transfer = MixedOperation(at=0.0, kind="transfer", sender=0,
                              args={"to": 1, "amount": 1})
    with pytest.raises(WorkloadError, match="at least one operation"):
        run_mixed_operations(deployment, [], account_seeds=["a", "b"])
    with pytest.raises(WorkloadError, match="at least two accounts"):
        run_mixed_operations(deployment, [transfer], account_seeds=["a"])
    with pytest.raises(WorkloadError, match="unknown mixed operation kind"):
        run_mixed_operations(
            deployment,
            [MixedOperation(at=0.0, kind="mint", sender=0)],
            account_seeds=["a", "b"],
        )
    # Every rejection above fired before any contract was deployed or
    # message sent.
    assert deployment.network.total_messages() == 0


def test_run_mixed_operations_rejects_a_horizon_inside_the_schedule():
    deployment = make_sharded_deployment(1)
    late = MixedOperation(at=50.0, kind="transfer", sender=0,
                          args={"to": 1, "amount": 1})
    with pytest.raises(WorkloadError, match="not after the last submission"):
        run_mixed_operations(
            deployment, [late], account_seeds=["a", "b"], horizon=10.0
        )
