"""Workload generators (reduced-scale versions of the paper's harness)."""

import pytest

from repro.client.workload import (
    WorkloadError,
    build_client_pools,
    run_burst_cas_uploads,
    run_burst_transfers,
    run_contended_transfers,
    run_sequential_transfers,
    run_sharded_burst_transfers,
    run_sharded_contended_transfers,
)
from tests.conftest import make_deployment, make_sharded_deployment


def test_build_client_pools_round_robin(four_cell_deployment):
    pools = build_client_pools(four_cell_deployment, pools=8)
    assert len(pools) == 8
    assert pools[0].service_cell is four_cell_deployment.cell(0)
    assert pools[5].service_cell is four_cell_deployment.cell(1)
    with pytest.raises(WorkloadError):
        build_client_pools(four_cell_deployment, pools=0)


def test_sequential_transfer_workload_summary():
    deployment = make_deployment()
    report = run_sequential_transfers(deployment, count=12, pools=4)
    assert len(report.results) == 12
    assert report.failure_count == 0
    summary = report.summary()
    assert summary["transactions"] == 12
    assert summary["latency_p90"] >= summary["latency_p50"] > 0
    assert summary["throughput_tps"] > 0


def test_burst_transfer_workload():
    deployment = make_deployment()
    report = run_burst_transfers(deployment, count=40, pools=4)
    assert len(report.results) == 40
    assert report.failure_count == 0
    throughput = report.throughput()
    assert throughput.operations == 40
    assert throughput.makespan > 0


def test_burst_cas_workload_stores_blobs():
    deployment = make_deployment()
    report = run_burst_cas_uploads(deployment, count=20, pools=4, blob_bytes=32)
    assert report.failure_count == 0
    cas = deployment.cell(0).contracts.get("system.cas")
    assert cas.query("stats", {})["puts"] == 20


def test_latencies_series_covers_only_successes():
    deployment = make_deployment()
    report = run_burst_transfers(deployment, count=10, pools=2)
    assert len(report.latencies()) == len(report.successes) == 10


def test_empty_workload_report_raises():
    deployment = make_deployment()
    report = run_burst_transfers(deployment, count=5, pools=1)
    report.results = [r for r in report.results if not r.ok]
    with pytest.raises(WorkloadError):
        report.throughput()


def test_bad_counts_fail_fast_instead_of_producing_empty_bursts():
    deployment = make_deployment()
    for bad_count in (0, -3, 1.5, True, "12"):
        with pytest.raises(WorkloadError, match="positive integer"):
            run_burst_transfers(deployment, count=bad_count)
        with pytest.raises(WorkloadError, match="positive integer"):
            run_sequential_transfers(deployment, count=bad_count)
        with pytest.raises(WorkloadError, match="positive integer"):
            run_burst_cas_uploads(deployment, count=bad_count)
        with pytest.raises(WorkloadError, match="positive integer"):
            run_contended_transfers(deployment, count=bad_count)
    # Validation fires before any client pool or contract is created.
    assert deployment.network.total_messages() == 0


def test_bad_amounts_and_rates_fail_fast():
    deployment = make_deployment()
    with pytest.raises(WorkloadError, match="amount"):
        run_burst_transfers(deployment, count=5, amount=0)
    with pytest.raises(WorkloadError, match="conflict_rate"):
        run_contended_transfers(deployment, count=5, conflict_rate=1.5)
    with pytest.raises(WorkloadError, match="conflict_rate"):
        run_contended_transfers(deployment, count=5, conflict_rate="half")
    with pytest.raises(WorkloadError, match="hot account"):
        run_contended_transfers(deployment, count=5, hot_accounts=0)
    with pytest.raises(WorkloadError, match="blob_bytes"):
        run_burst_cas_uploads(deployment, count=5, blob_bytes=0)


def test_all_cross_shard_workload_summarizes_cleanly():
    deployment = make_sharded_deployment(2)
    report = run_sharded_burst_transfers(
        deployment, count=4, cross_shard_rate=1.0, pools=2
    )
    assert len(report.cross_results) == 4 and not report.results
    assert report.failure_count == 0
    summary = report.summary()
    assert summary["transactions"] == 4
    assert summary["cross_shard_transactions"] == 4
    assert summary["latency_p50"] is None
    assert summary["throughput_tps"] > 0
    assert summary["cross_latency_p50"] > 0


def test_sharded_workload_validation():
    deployment = make_sharded_deployment(1)
    with pytest.raises(WorkloadError, match="positive integer"):
        run_sharded_burst_transfers(deployment, count=0)
    with pytest.raises(WorkloadError, match="at least two shards"):
        run_sharded_burst_transfers(deployment, count=5, cross_shard_rate=0.1)
    with pytest.raises(WorkloadError, match="cross_shard_rate"):
        run_sharded_contended_transfers(deployment, count=5, cross_shard_rate=2.0)
