"""The client API: submissions, queries, contingency submissions."""

import pytest

from repro.client import BlockumulusClient, ClientError, FastMoneyClient, TransactionResult
from repro.crypto.keys import PrivateKey
from tests.conftest import make_deployment


def run(deployment, event):
    deployment.env.run(event)
    return event.value


def test_client_has_unique_node_and_address(deployment):
    a = BlockumulusClient(deployment)
    b = BlockumulusClient(deployment)
    assert a.node_name != b.node_name
    assert a.address != b.address


def test_submit_returns_transaction_result(deployment):
    client = BlockumulusClient(deployment)
    result = run(deployment, client.submit("fastmoney", "faucet", {"amount": 5}))
    assert isinstance(result, TransactionResult)
    assert result.ok and result.receipt is not None
    assert result.tx_id == result.receipt.tx_id
    assert result.latency > 0


def test_submit_with_override_signer(deployment):
    client = BlockumulusClient(deployment)
    throwaway = deployment.make_client_signer("throwaway-account")
    result = run(deployment, client.submit("fastmoney", "faucet", {"amount": 7}, signer=throwaway))
    assert result.ok
    fastmoney = deployment.cell(0).contracts.get("fastmoney")
    assert fastmoney.query("balance_of", {"account": throwaway.address.hex()}) == 7


def test_query_error_propagates(deployment):
    client = BlockumulusClient(deployment)
    event = client.query("fastmoney", "nonexistent_view", {})
    with pytest.raises(ClientError):
        deployment.env.run(event)


def test_unknown_contract_reported_as_error(deployment):
    client = BlockumulusClient(deployment)
    result = run(deployment, client.submit("ghost-contract", "do", {}))
    assert not result.ok
    assert "ghost-contract" in result.error


def test_offline_service_cell_fails_fast(deployment):
    client = BlockumulusClient(deployment)
    deployment.network.set_online(deployment.cell(0).node_name, False)
    result = run(deployment, client.submit("fastmoney", "faucet", {"amount": 1}))
    assert not result.ok and "unreachable" in result.error


def test_contingency_submission_lands_on_chain(deployment):
    client = BlockumulusClient(deployment)
    eth_key = PrivateKey.from_seed("contingency-payer")
    deployment.eth_node.chain.fund(eth_key.address, 10 ** 20)
    event = client.submit_contingency("fastmoney", "faucet", {"amount": 9}, eth_key=eth_key)
    receipt = deployment.env.run(event)
    assert receipt.success
    stored = deployment.registry_contract.all_contingencies(deployment.eth_node.chain.state)
    assert len(stored) == 1
    assert stored[0]["payload"]["data"]["contract"] == "fastmoney"


def test_clients_can_use_different_service_cells(four_cell_deployment):
    deployment = four_cell_deployment
    clients = [BlockumulusClient(deployment, service_cell_index=i) for i in range(4)]
    results = [run(deployment, FastMoneyClient(c).faucet(3)) for c in clients]
    assert all(result.ok for result in results)
    balances = [
        deployment.cell(0).contracts.get("fastmoney").query(
            "balance_of", {"account": client.address.hex()})
        for client in clients
    ]
    assert balances == [3, 3, 3, 3]
