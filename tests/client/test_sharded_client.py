"""Client-side shard routing and the cross-shard 2PC protocol."""

import pytest

from repro.contracts.community import FastMoney
from repro.client.sharded import (
    CrossShardResult,
    ShardRoutingError,
    ShardedClient,
    ShardedFastMoneyClient,
)
from repro.messages import Envelope, Opcode
from repro.messages.xshard import (
    CrossShardDecision,
    CrossShardPrepare,
    CrossShardVote,
)
from tests.conftest import make_deployment, make_sharded_deployment


def pay_instances(deployment, alice, amount: int = 100):
    """Deploy one 'pay' FastMoney instance per group, funding alice on each."""
    names = []
    for group in range(deployment.shard_count):
        name = ShardedFastMoneyClient.instance_name("pay", group, deployment.shard_count)
        deployment.deploy_contract_instances(
            [
                FastMoney(
                    name,
                    params={
                        "genesis_balances": {alice.address.hex(): amount},
                        "allow_faucet": False,
                    },
                )
            ],
            group=group,
        )
        names.append(name)
    return names


def run_event(deployment, event):
    deployment.env.run(event)
    return event.value


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_every_deployed_contract_routes_to_exactly_one_group():
    deployment = make_sharded_deployment(3)
    client = ShardedClient(deployment)
    for name, owner in deployment.contract_locations.items():
        routes = {client.route(name, "anything", {}) for _ in range(3)}
        assert routes == {owner}


def test_unknown_contract_raises_a_clean_routing_error():
    deployment = make_sharded_deployment(2)
    client = ShardedClient(deployment)
    with pytest.raises(ShardRoutingError, match="no contract named 'nope'"):
        client.route("nope", "transfer", {})
    with pytest.raises(ShardRoutingError):
        client.submit("nope", "transfer", {"to": "0x" + "11" * 20, "amount": 1})
    with pytest.raises(ShardRoutingError):
        client.query("nope", "balance_of", {"account": "0x" + "11" * 20})


def test_cas_calls_route_by_digest_not_by_contract():
    deployment = make_sharded_deployment(4)
    client = ShardedClient(deployment)
    content = b"shard me"
    group = client.route("system.cas", "put", {"content_hex": "0x" + content.hex()})
    assert 0 <= group < 4
    from repro.contracts.system.cas import ContentAddressableStorage

    digest = ContentAddressableStorage.content_hash(content)
    assert client.route("system.cas", "get", {"digest": digest}) == group
    with pytest.raises(ShardRoutingError):
        client.route("system.cas", "get", {})


def test_in_group_submit_and_query_reach_the_owning_group():
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("alice")
    names = pay_instances(deployment, alice)
    client = ShardedClient(deployment, signer=alice)
    recipient = "0x" + "22" * 20
    result = run_event(
        deployment,
        client.submit(names[1], "transfer", {"to": recipient, "amount": 5}),
    )
    assert result.ok, result.error
    balance = run_event(
        deployment, client.query(names[1], "balance_of", {"account": recipient})
    )
    assert balance == 5
    # The owning group's cells executed it; the other group never saw it.
    assert len(deployment.group(1).cells[0].ledger) == 1
    assert len(deployment.group(0).cells[0].ledger) == 0


# ----------------------------------------------------------------------
# Cross-shard transfers (the happy path)
# ----------------------------------------------------------------------
def test_cross_shard_transfer_commits_atomically():
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("alice")
    names = pay_instances(deployment, alice)
    client = ShardedClient(deployment, signer=alice)
    app = ShardedFastMoneyClient(client, base_name="pay")
    recipient = "0x" + "33" * 20

    result = run_event(deployment, app.transfer_cross(0, 1, recipient, 30, signer=alice))
    assert isinstance(result, CrossShardResult)
    assert result.ok and result.decision == "commit", result.error
    assert set(result.prepare) == {0, 1} and all(v.ok for v in result.prepare.values())
    assert set(result.acks) == {0, 1} and all(v.ok for v in result.acks.values())

    # Value moved between the instances; total supply is conserved.
    source = deployment.group(0).cells[0].contracts.get(names[0])
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert source.query("balance_of", {"account": alice.address.hex()}) == 70
    assert target.query("balance_of", {"account": recipient}) == 30
    assert source.query("total_supply", {}) + target.query("total_supply", {}) == 200

    # Every cell of each group replicated its side of the escrow.
    for cell in deployment.group(0).cells:
        status = cell.contracts.get(names[0]).query("xshard_status", {"xtx": result.xtx})
        assert status["status"] == "settled"
    for cell in deployment.group(1).cells:
        status = cell.contracts.get(names[1]).query("xshard_status", {"xtx": result.xtx})
        assert status["status"] == "credited"

    # Within each group, the cells agree on content (admission order may
    # differ per cell, exactly as in the unsharded overlay).
    for group in deployment.groups:
        contents = {
            tuple(sorted((e.tx_id, e.status, str(e.error)) for e in cell.ledger))
            for cell in group.cells
        }
        assert len(contents) == 1
        fingerprints = {cell.ledger.cycle_execution_fingerprint(0) for cell in group.cells}
        assert len(fingerprints) == 1


def test_cross_shard_transfer_aborts_on_insufficient_funds():
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("alice")
    names = pay_instances(deployment, alice, amount=10)
    client = ShardedClient(deployment, signer=alice)
    app = ShardedFastMoneyClient(client, base_name="pay")
    recipient = "0x" + "44" * 20

    result = run_event(deployment, app.transfer_cross(0, 1, recipient, 999, signer=alice))
    assert not result.ok and result.decision == "abort"
    assert "insufficient funds" in result.error
    assert not result.prepare[0].ok and result.prepare[1].ok
    # Only the group that held anything was rolled back.
    assert set(result.acks) == {1} and result.acks[1].ok

    source = deployment.group(0).cells[0].contracts.get(names[0])
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert source.query("balance_of", {"account": alice.address.hex()}) == 10
    assert target.query("balance_of", {"account": recipient}) == 0
    for cell in deployment.group(1).cells:
        status = cell.contracts.get(names[1]).query("xshard_status", {"xtx": result.xtx})
        assert status["status"] == "cancelled"


def test_account_hashing_splits_accounts_across_groups():
    deployment = make_sharded_deployment(4)
    client = ShardedClient(deployment)
    app = ShardedFastMoneyClient(client)
    groups = {
        app.shard_of_account("0x" + f"{index:040x}") for index in range(64)
    }
    assert groups == {0, 1, 2, 3}
    assert app.instance(2) == "fastmoney@s2"
    with pytest.raises(ShardRoutingError):
        app.transfer_cross(1, 1, "0x" + "55" * 20, 1)


# ----------------------------------------------------------------------
# Protocol safety at the gateway
# ----------------------------------------------------------------------
def test_commit_without_a_certificate_is_refused():
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("alice")
    names = pay_instances(deployment, alice)
    client = ShardedClient(deployment, signer=alice)
    xtx = client.next_xtx()

    inner = client._sign_call(alice, 0, (names[0], "xshard_reserve", {"xtx": xtx, "amount": 10}))
    prepare = CrossShardPrepare(
        xtx=xtx, group=0, participants=(0, 1), transaction=inner.to_wire()
    )
    _request, waiter = client.clients[0].request(
        Opcode.XSHARD_PREPARE, prepare.to_data(), signer=alice
    )
    reply = run_event(deployment, waiter)
    assert CrossShardVote.from_data(reply.data).ok

    # A commit whose certificate carries no votes must be refused — and
    # the refusal is a plain error, never a signed vote (a signed
    # no-vote would itself be abort evidence).
    settle = client._sign_call(alice, 0, (names[0], "xshard_settle", {"xtx": xtx}))
    decision = CrossShardDecision(
        xtx=xtx, decision="commit", group=0, participants=(0, 1),
        transaction=settle.to_wire(), votes=(),
    )
    _request, waiter = client.clients[0].request(
        Opcode.XSHARD_COMMIT, decision.to_data(), signer=alice
    )
    reply = run_event(deployment, waiter)
    assert reply.operation == Opcode.TX_ERROR
    assert "missing prepare votes" in reply.data["error"]
    # The hold is untouched and can still be aborted.
    status = deployment.group(0).cells[0].contracts.get(names[0]).query(
        "xshard_status", {"xtx": xtx}
    )
    assert status["status"] == "held"


def test_commit_without_prepare_is_refused():
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("alice")
    names = pay_instances(deployment, alice)
    client = ShardedClient(deployment, signer=alice)
    settle = client._sign_call(alice, 0, (names[0], "xshard_settle", {"xtx": "0x99"}))
    decision = CrossShardDecision(
        xtx="0x99", decision="commit", group=0, participants=(0, 1),
        transaction=settle.to_wire(), votes=(),
    )
    _request, waiter = client.clients[0].request(
        Opcode.XSHARD_COMMIT, decision.to_data(), signer=alice
    )
    reply = run_event(deployment, waiter)
    assert reply.operation == Opcode.TX_ERROR
    assert "no prepared" in reply.data["error"]


def test_inner_envelope_for_another_gateway_is_rejected():
    """One signed inner transaction cannot be replayed onto a second group."""
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("alice")
    names = pay_instances(deployment, alice)
    client = ShardedClient(deployment, signer=alice)
    xtx = client.next_xtx()
    # The inner envelope is addressed to group 1's gateway…
    inner = client._sign_call(alice, 1, (names[1], "xshard_expect",
                                         {"xtx": xtx, "to": "0x" + "66" * 20, "amount": 5}))
    # …but the prepare is sent to group 0's gateway.
    prepare = CrossShardPrepare(
        xtx=xtx, group=0, participants=(0, 1), transaction=inner.to_wire()
    )
    _request, waiter = client.clients[0].request(
        Opcode.XSHARD_PREPARE, prepare.to_data(), signer=alice
    )
    reply = run_event(deployment, waiter)
    vote = CrossShardVote.from_data(reply.data)
    assert not vote.ok
    assert "invalid for this gateway" in reply.data["error"]
    assert len(deployment.group(0).cells[0].ledger) == 0


def test_sibling_cells_refuse_xshard_traffic():
    """Only the designated gateway owns a group's 2PC state machine.

    A prepare replayed to a sibling cell after the gateway holds funds
    must be refused with a plain error — were the sibling to service it,
    the group-wide escrow would reject the duplicate and the sibling
    would sign a no-vote, manufacturing abort evidence against a
    commit-eligible transaction.
    """
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("alice")
    names = pay_instances(deployment, alice)
    client = ShardedClient(deployment, signer=alice)
    xtx = client.next_xtx()

    inner = client._sign_call(alice, 0, (names[0], "xshard_reserve", {"xtx": xtx, "amount": 10}))
    prepare = CrossShardPrepare(
        xtx=xtx, group=0, participants=(0, 1), transaction=inner.to_wire()
    )
    _request, waiter = client.clients[0].request(
        Opcode.XSHARD_PREPARE, prepare.to_data(), signer=alice
    )
    assert CrossShardVote.from_data(run_event(deployment, waiter).data).ok

    # Replay the prepare to the sibling cell of the same group.
    from repro.client import BlockumulusClient

    sibling_client = BlockumulusClient(
        deployment.group(0).deployment, signer=alice, service_cell_index=1
    )
    inner2 = Envelope.create(
        signer=alice, recipient=sibling_client.service_cell.address,
        operation=Opcode.TX_SUBMIT,
        data={"contract": names[0], "method": "xshard_reserve",
              "args": {"xtx": xtx, "amount": 10}},
        timestamp=deployment.env.now, nonce=sibling_client.nonces.next(),
    )
    replay = CrossShardPrepare(
        xtx=xtx, group=0, participants=(0, 1), transaction=inner2.to_wire()
    )
    _request, waiter = sibling_client.request(Opcode.XSHARD_PREPARE, replay.to_data())
    reply = run_event(deployment, waiter)
    assert reply.operation == Opcode.TX_ERROR
    assert "not the cross-shard gateway" in reply.data["error"]


def test_abort_after_all_yes_votes_is_refused():
    """Decisions are mutually exclusive: all-yes votes prove only commit.

    A coordinator that gathered yes votes from every participant cannot
    abort one side (e.g. to refund its hold while still crediting the
    other group): the abort certificate requires a genuine no-vote,
    which does not exist.
    """
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("alice")
    names = pay_instances(deployment, alice)
    client = ShardedClient(deployment, signer=alice)
    xtx = client.next_xtx()
    participants = (0, 1)

    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve", {"xtx": xtx, "amount": 10})),
        (1, (names[1], "xshard_expect", {"xtx": xtx, "to": "0x" + "55" * 20, "amount": 10})),
    ):
        inner = client._sign_call(alice, group, call)
        prepare = CrossShardPrepare(
            xtx=xtx, group=group, participants=participants, transaction=inner.to_wire()
        )
        _request, waiter = client.clients[group].request(
            Opcode.XSHARD_PREPARE, prepare.to_data(), signer=alice
        )
        vote = CrossShardVote.from_data(run_event(deployment, waiter).data)
        assert vote.ok
        votes.append(vote)

    refund = client._sign_call(alice, 0, (names[0], "xshard_refund", {"xtx": xtx}))
    rogue_abort = CrossShardDecision(
        xtx=xtx, decision="abort", group=0, participants=participants,
        transaction=refund.to_wire(), votes=tuple(votes),
    )
    _request, waiter = client.clients[0].request(
        Opcode.XSHARD_ABORT, rogue_abort.to_data(), signer=alice
    )
    reply = run_event(deployment, waiter)
    assert reply.operation == Opcode.TX_ERROR
    assert "no verified no-vote" in reply.data["error"]
    # The hold is untouched: no refund happened.
    status = deployment.group(0).cells[0].contracts.get(names[0]).query(
        "xshard_status", {"xtx": xtx}
    )
    assert status["status"] == "held"


def test_unsharded_deployments_reject_xshard_traffic():
    deployment = make_deployment()
    from repro.client import BlockumulusClient

    client = BlockumulusClient(deployment)
    inner = client.request  # the raw request API
    prepare = CrossShardPrepare(
        xtx="0x1", group=0, participants=(0, 1), transaction={"payload": {}}
    )
    _request, waiter = inner(Opcode.XSHARD_PREPARE, prepare.to_data())
    deployment.env.run(waiter)
    reply = waiter.value
    assert reply.operation == Opcode.TX_ERROR
    assert "not sharded" in reply.data["error"]
