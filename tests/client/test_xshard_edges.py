"""Cross-shard 2PC edge interleavings, checked for value conservation.

The three interleavings the chaos ISSUE calls out, driven phase by phase
against the gateways (the coordinator is simulated by hand so it can
misbehave precisely):

* the coordinator crashes between PREPARE and the decision — the hold
  stays escrowed, and once its expiry passes the holder reclaims it
  unilaterally (``xshard_reclaim``);
* duplicate message delivery — a second PREPARE, a second COMMIT, and a
  re-delivered gateway VOTE are all refused/ignored without moving value
  twice;
* a half-driven commit — the source settled but the target's credit not
  yet delivered — is *in-transit* value: conserved, visible in the
  conservation oracle's metrics, and deliverable later with the same
  certificate.

Every test closes by running the value-conservation oracle over the
whole deployment, so "no value created or destroyed" is asserted in
every outcome, not just eyeballed on two balances.
"""

import pytest

from repro.audit import run_conservation_oracle
from repro.client.sharded import ShardedClient
from repro.contracts.community import FastMoney
from repro.messages import Opcode
from repro.messages.xshard import CrossShardDecision, CrossShardPrepare, CrossShardVote
from tests.conftest import make_sharded_deployment

BASE = "xedge"
FUNDING = 100


def build():
    """A two-group deployment with alice funded on both instances."""
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("xedge/alice")
    names = []
    for group in range(2):
        name = f"{BASE}@s{group}"
        deployment.deploy_contract_instances(
            [FastMoney(name, params={"genesis_balances": {alice.address.hex(): FUNDING},
                                     "allow_faucet": False})],
            group=group,
        )
        names.append(name)
    client = ShardedClient(deployment, signer=alice)
    return deployment, alice, names, client


def minted():
    return {f"{BASE}@s{group}": FUNDING for group in range(2)}


def run_event(deployment, event):
    deployment.env.run(event)
    return event.value


def prepare(deployment, client, alice, group, call, xtx, participants=(0, 1)):
    """Send one XSHARD_PREPARE and return (vote, reply envelope)."""
    inner = client._sign_call(alice, group, call)
    body = CrossShardPrepare(
        xtx=xtx, group=group, participants=participants, transaction=inner.to_wire()
    )
    _request, waiter = client.clients[group].request(
        Opcode.XSHARD_PREPARE, body.to_data(), signer=alice
    )
    reply = run_event(deployment, waiter)
    if reply.operation != Opcode.XSHARD_VOTE:
        return None, reply
    return CrossShardVote.from_data(reply.data), reply


def decide(deployment, client, alice, group, call, xtx, decision, votes,
           participants=(0, 1)):
    """Send one XSHARD_COMMIT/ABORT and return the reply envelope."""
    inner = client._sign_call(alice, group, call)
    body = CrossShardDecision(
        xtx=xtx, decision=decision, group=group, participants=participants,
        transaction=inner.to_wire(), votes=tuple(votes),
    )
    opcode = Opcode.XSHARD_COMMIT if decision == "commit" else Opcode.XSHARD_ABORT
    _request, waiter = client.clients[group].request(opcode, body.to_data(), signer=alice)
    return run_event(deployment, waiter)


def escrow_status(deployment, group, name, xtx):
    return deployment.group(group).cells[0].contracts.get(name).query(
        "xshard_status", {"xtx": xtx}
    )


def assert_conserved(deployment, expect_in_transit=0):
    result = run_conservation_oracle(deployment, minted())
    assert result.passed, result.findings
    assert result.metrics["in_transit"] == expect_in_transit
    return result


# ----------------------------------------------------------------------
# Coordinator crash between PREPARE and COMMIT → reclaim after expiry
# ----------------------------------------------------------------------
def test_abandoned_hold_is_reclaimed_after_expiry():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    expiry = deployment.env.now + 30.0

    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve",
             {"xtx": xtx, "amount": 25, "expires_at": expiry})),
        # The coordinator arms BOTH sides with the same expiry — that is
        # what makes a post-expiry commit refusable everywhere.
        (1, (names[1], "xshard_expect",
             {"xtx": xtx, "to": "0x" + "77" * 20, "amount": 25,
              "expires_at": expiry})),
    ):
        vote, _reply = prepare(deployment, client, alice, group, call, xtx)
        assert vote is not None and vote.ok
        votes.append(vote)
    # The coordinator "crashes" here: no decision is ever sent.  The hold
    # is escrowed, not lost — conservation counts it.
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "held"
    assert_conserved(deployment)
    source = deployment.group(0).cells[0].contracts.get(names[0])
    assert source.query("balance_of", {"account": alice.address.hex()}) == FUNDING - 25

    # Reclaiming before the expiry is refused.
    early = run_event(
        deployment, client.submit(names[0], "xshard_reclaim", {"xtx": xtx}, signer=alice)
    )
    assert not early.ok and "not expired" in early.error
    assert_conserved(deployment)

    # Past the expiry the holder pulls the funds back unilaterally.
    deployment.run(until=expiry + 1.0)
    reclaim = run_event(
        deployment, client.submit(names[0], "xshard_reclaim", {"xtx": xtx}, signer=alice)
    )
    assert reclaim.ok, reclaim.error
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "reclaimed"
    assert source.query("balance_of", {"account": alice.address.hex()}) == FUNDING
    assert_conserved(deployment)

    # A reclaim and a commit can never both move the value: the source
    # escrow is terminal, and the target's expectation expired with it —
    # the late commit decision is refused on BOTH legs, so no value is
    # minted against the reclaimed hold.
    reply = decide(
        deployment, client, alice, 0, (names[0], "xshard_settle", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    assert reply.operation != Opcode.XSHARD_VOTE or not CrossShardVote.from_data(reply.data).ok
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "reclaimed"
    late_credit = decide(
        deployment, client, alice, 1, (names[1], "xshard_credit", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    vote = CrossShardVote.from_data(late_credit.data)
    assert not vote.ok and "expired" in late_credit.data["error"]
    assert escrow_status(deployment, 1, names[1], xtx)["status"] == "expected"
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": "0x" + "77" * 20}) == 0
    assert_conserved(deployment)


def test_settle_of_an_expired_hold_is_refused():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    expiry = deployment.env.now + 5.0
    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve",
             {"xtx": xtx, "amount": 10, "expires_at": expiry})),
        (1, (names[1], "xshard_expect",
             {"xtx": xtx, "to": "0x" + "78" * 20, "amount": 10})),
    ):
        vote, _reply = prepare(deployment, client, alice, group, call, xtx)
        assert vote is not None and vote.ok
        votes.append(vote)

    deployment.run(until=expiry + 1.0)
    reply = decide(
        deployment, client, alice, 0, (names[0], "xshard_settle", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    vote = CrossShardVote.from_data(reply.data)
    assert not vote.ok and "expired" in reply.data["error"]
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "held"
    assert_conserved(deployment)


# ----------------------------------------------------------------------
# Duplicate delivery
# ----------------------------------------------------------------------
def test_duplicate_prepare_is_refused_without_a_second_debit():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    call = (names[0], "xshard_reserve", {"xtx": xtx, "amount": 10})
    vote, _reply = prepare(deployment, client, alice, 0, call, xtx)
    assert vote is not None and vote.ok

    again, reply = prepare(deployment, client, alice, 0, call, xtx)
    assert again is None
    assert reply.operation == Opcode.TX_ERROR
    assert "already prepared" in reply.data["error"]
    source = deployment.group(0).cells[0].contracts.get(names[0])
    assert source.query("balance_of", {"account": alice.address.hex()}) == FUNDING - 10
    assert_conserved(deployment)


def test_duplicate_commit_cannot_double_credit():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    recipient = "0x" + "79" * 20
    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve", {"xtx": xtx, "amount": 15})),
        (1, (names[1], "xshard_expect",
             {"xtx": xtx, "to": recipient, "amount": 15})),
    ):
        vote, _reply = prepare(deployment, client, alice, group, call, xtx)
        assert vote is not None and vote.ok
        votes.append(vote)
    for group, call in (
        (0, (names[0], "xshard_settle", {"xtx": xtx})),
        (1, (names[1], "xshard_credit", {"xtx": xtx})),
    ):
        reply = decide(deployment, client, alice, group, call, xtx, "commit", votes)
        assert CrossShardVote.from_data(reply.data).ok

    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 15
    assert_conserved(deployment)

    # The coordinator re-delivers the commit to the target.
    reply = decide(
        deployment, client, alice, 1, (names[1], "xshard_credit", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    assert reply.operation == Opcode.TX_ERROR
    assert "already committed" in reply.data["error"]
    assert target.query("balance_of", {"account": recipient}) == 15
    assert_conserved(deployment)


def test_redelivered_gateway_vote_is_ignored_by_the_coordinator():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    vote, reply = prepare(
        deployment, client, alice, 0,
        (names[0], "xshard_reserve", {"xtx": xtx, "amount": 5}), xtx,
    )
    assert vote is not None and vote.ok
    # Re-deliver the very same signed vote envelope to the client's node:
    # its request waiter is gone, so the duplicate is dropped on the
    # floor rather than resolving anything twice.
    inner_client = client.clients[0]
    before = dict(inner_client._waiting)
    inner_client._on_message(
        deployment.group(0).cells[0].node_name, reply, reply.byte_size()
    )
    assert inner_client._waiting == before
    assert_conserved(deployment)


# ----------------------------------------------------------------------
# The coordinator path arms the expiry valve end to end
# ----------------------------------------------------------------------
def test_transfer_cross_hold_expiry_arms_both_escrow_legs():
    from repro.client.sharded import ShardRoutingError, ShardedFastMoneyClient

    deployment, alice, names, client = build()
    app = ShardedFastMoneyClient(client, base_name=BASE)
    with pytest.raises(ShardRoutingError, match="forwarding deadline"):
        app.transfer_cross(0, 1, "0x" + "7b" * 20, 5, signer=alice, hold_expiry=1.0)

    armed_at = deployment.env.now
    result = run_event(
        deployment,
        app.transfer_cross(0, 1, "0x" + "7b" * 20, 5, signer=alice, hold_expiry=60.0),
    )
    assert result.ok and result.decision == "commit", result.error
    # Both legs recorded the same expiry before settling/crediting.
    source = escrow_status(deployment, 0, names[0], result.xtx)
    target = escrow_status(deployment, 1, names[1], result.xtx)
    assert source["status"] == "settled" and target["status"] == "credited"
    assert_conserved(deployment)
    # A second armed transfer left undecided is reclaimable: covered by
    # test_abandoned_hold_is_reclaimed_after_expiry; here we pin that the
    # coordinator wrote the expiry the contracts will honour.
    xtx2 = client.next_xtx()
    vote, _reply = prepare(
        deployment, client, alice, 0,
        (names[0], "xshard_reserve",
         {"xtx": xtx2, "amount": 5, "expires_at": armed_at + 60.0}),
        xtx2,
    )
    assert vote is not None and vote.ok
    record = escrow_status(deployment, 0, names[0], xtx2)
    assert record["status"] == "held" and record["expires_at"] == armed_at + 60.0


# ----------------------------------------------------------------------
# Half-driven commit: value in transit, then delivered
# ----------------------------------------------------------------------
def test_half_driven_commit_is_in_transit_not_lost():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    recipient = "0x" + "7a" * 20
    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve", {"xtx": xtx, "amount": 20})),
        (1, (names[1], "xshard_expect",
             {"xtx": xtx, "to": recipient, "amount": 20})),
    ):
        vote, _reply = prepare(deployment, client, alice, group, call, xtx)
        assert vote is not None and vote.ok
        votes.append(vote)

    # The coordinator settles the source… and crashes before the credit.
    reply = decide(
        deployment, client, alice, 0, (names[0], "xshard_settle", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    assert CrossShardVote.from_data(reply.data).ok
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "settled"
    assert escrow_status(deployment, 1, names[1], xtx)["status"] == "expected"
    # Value is in transit — conserved, and visible as such.
    assert_conserved(deployment, expect_in_transit=20)

    # Anyone holding the certificate can deliver the credit later.
    reply = decide(
        deployment, client, alice, 1, (names[1], "xshard_credit", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    assert CrossShardVote.from_data(reply.data).ok
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 20
    assert_conserved(deployment, expect_in_transit=0)
