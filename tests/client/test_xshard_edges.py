"""Cross-shard 2PC edge interleavings, checked for value conservation.

The three interleavings the chaos ISSUE calls out, driven phase by phase
against the gateways (the coordinator is simulated by hand so it can
misbehave precisely):

* the coordinator crashes between PREPARE and the decision — the hold
  stays escrowed, and once its expiry passes the holder reclaims it
  unilaterally (``xshard_reclaim``);
* duplicate message delivery — a second PREPARE, a second COMMIT, and a
  re-delivered gateway VOTE are all refused/ignored without moving value
  twice;
* a half-driven commit — the source settled but the target's credit not
  yet delivered — is *in-transit* value: conserved, visible in the
  conservation oracle's metrics, and deliverable later with the same
  certificate.

Every test closes by running the value-conservation oracle over the
whole deployment, so "no value created or destroyed" is asserted in
every outcome, not just eyeballed on two balances.
"""

import pytest

from repro.audit import run_conservation_oracle
from repro.client.sharded import ShardedClient
from repro.contracts.community import FastMoney
from repro.messages import Opcode
from repro.messages.xshard import CrossShardDecision, CrossShardPrepare, CrossShardVote
from tests.conftest import make_sharded_deployment

BASE = "xedge"
FUNDING = 100


def build():
    """A two-group deployment with alice funded on both instances."""
    deployment = make_sharded_deployment(2)
    alice = deployment.group(0).deployment.make_client_signer("xedge/alice")
    names = []
    for group in range(2):
        name = f"{BASE}@s{group}"
        deployment.deploy_contract_instances(
            [FastMoney(name, params={"genesis_balances": {alice.address.hex(): FUNDING},
                                     "allow_faucet": False})],
            group=group,
        )
        names.append(name)
    client = ShardedClient(deployment, signer=alice)
    return deployment, alice, names, client


def minted():
    return {f"{BASE}@s{group}": FUNDING for group in range(2)}


def run_event(deployment, event):
    deployment.env.run(event)
    return event.value


def prepare(deployment, client, alice, group, call, xtx, participants=(0, 1)):
    """Send one XSHARD_PREPARE and return (vote, reply envelope)."""
    inner = client._sign_call(alice, group, call)
    body = CrossShardPrepare(
        xtx=xtx, group=group, participants=participants, transaction=inner.to_wire()
    )
    _request, waiter = client.clients[group].request(
        Opcode.XSHARD_PREPARE, body.to_data(), signer=alice
    )
    reply = run_event(deployment, waiter)
    if reply.operation != Opcode.XSHARD_VOTE:
        return None, reply
    return CrossShardVote.from_data(reply.data), reply


def decide(deployment, client, alice, group, call, xtx, decision, votes,
           participants=(0, 1)):
    """Send one XSHARD_COMMIT/ABORT and return the reply envelope."""
    inner = client._sign_call(alice, group, call)
    body = CrossShardDecision(
        xtx=xtx, decision=decision, group=group, participants=participants,
        transaction=inner.to_wire(), votes=tuple(votes),
    )
    opcode = Opcode.XSHARD_COMMIT if decision == "commit" else Opcode.XSHARD_ABORT
    _request, waiter = client.clients[group].request(opcode, body.to_data(), signer=alice)
    return run_event(deployment, waiter)


def escrow_status(deployment, group, name, xtx):
    return deployment.group(group).cells[0].contracts.get(name).query(
        "xshard_status", {"xtx": xtx}
    )


def assert_conserved(deployment, expect_in_transit=0):
    result = run_conservation_oracle(deployment, minted())
    assert result.passed, result.findings
    assert result.metrics["in_transit"] == expect_in_transit
    return result


# ----------------------------------------------------------------------
# Coordinator crash between PREPARE and COMMIT → reclaim after expiry
# ----------------------------------------------------------------------
def test_abandoned_hold_is_reclaimed_after_expiry():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    expiry = deployment.env.now + 30.0

    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve",
             {"xtx": xtx, "amount": 25, "expires_at": expiry})),
        # The coordinator arms BOTH sides with the same expiry — that is
        # what makes a post-expiry commit refusable everywhere.
        (1, (names[1], "xshard_expect",
             {"xtx": xtx, "to": "0x" + "77" * 20, "amount": 25,
              "expires_at": expiry})),
    ):
        vote, _reply = prepare(deployment, client, alice, group, call, xtx)
        assert vote is not None and vote.ok
        votes.append(vote)
    # The coordinator "crashes" here: no decision is ever sent.  The hold
    # is escrowed, not lost — conservation counts it.
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "held"
    assert_conserved(deployment)
    source = deployment.group(0).cells[0].contracts.get(names[0])
    assert source.query("balance_of", {"account": alice.address.hex()}) == FUNDING - 25

    # Reclaiming before the expiry is refused.
    early = run_event(
        deployment, client.submit(names[0], "xshard_reclaim", {"xtx": xtx}, signer=alice)
    )
    assert not early.ok and "not expired" in early.error
    assert_conserved(deployment)

    # Past the expiry the holder pulls the funds back unilaterally.
    deployment.run(until=expiry + 1.0)
    reclaim = run_event(
        deployment, client.submit(names[0], "xshard_reclaim", {"xtx": xtx}, signer=alice)
    )
    assert reclaim.ok, reclaim.error
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "reclaimed"
    assert source.query("balance_of", {"account": alice.address.hex()}) == FUNDING
    assert_conserved(deployment)

    # A reclaim and a commit can never both move the value: the source
    # escrow is terminal, and the target's expectation expired with it —
    # the late commit decision is refused on BOTH legs, so no value is
    # minted against the reclaimed hold.
    reply = decide(
        deployment, client, alice, 0, (names[0], "xshard_settle", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    assert reply.operation != Opcode.XSHARD_VOTE or not CrossShardVote.from_data(reply.data).ok
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "reclaimed"
    late_credit = decide(
        deployment, client, alice, 1, (names[1], "xshard_credit", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    vote = CrossShardVote.from_data(late_credit.data)
    assert not vote.ok and "expired" in late_credit.data["error"]
    assert escrow_status(deployment, 1, names[1], xtx)["status"] == "expected"
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": "0x" + "77" * 20}) == 0
    assert_conserved(deployment)


def test_settle_of_an_expired_hold_is_refused():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    expiry = deployment.env.now + 5.0
    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve",
             {"xtx": xtx, "amount": 10, "expires_at": expiry})),
        (1, (names[1], "xshard_expect",
             {"xtx": xtx, "to": "0x" + "78" * 20, "amount": 10})),
    ):
        vote, _reply = prepare(deployment, client, alice, group, call, xtx)
        assert vote is not None and vote.ok
        votes.append(vote)

    deployment.run(until=expiry + 1.0)
    reply = decide(
        deployment, client, alice, 0, (names[0], "xshard_settle", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    vote = CrossShardVote.from_data(reply.data)
    assert not vote.ok and "expired" in reply.data["error"]
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "held"
    assert_conserved(deployment)


# ----------------------------------------------------------------------
# Duplicate delivery
# ----------------------------------------------------------------------
def test_duplicate_prepare_is_refused_without_a_second_debit():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    call = (names[0], "xshard_reserve", {"xtx": xtx, "amount": 10})
    vote, _reply = prepare(deployment, client, alice, 0, call, xtx)
    assert vote is not None and vote.ok

    again, reply = prepare(deployment, client, alice, 0, call, xtx)
    assert again is None
    assert reply.operation == Opcode.TX_ERROR
    assert "already prepared" in reply.data["error"]
    source = deployment.group(0).cells[0].contracts.get(names[0])
    assert source.query("balance_of", {"account": alice.address.hex()}) == FUNDING - 10
    assert_conserved(deployment)


def test_duplicate_commit_cannot_double_credit():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    recipient = "0x" + "79" * 20
    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve", {"xtx": xtx, "amount": 15})),
        (1, (names[1], "xshard_expect",
             {"xtx": xtx, "to": recipient, "amount": 15})),
    ):
        vote, _reply = prepare(deployment, client, alice, group, call, xtx)
        assert vote is not None and vote.ok
        votes.append(vote)
    for group, call in (
        (0, (names[0], "xshard_settle", {"xtx": xtx})),
        (1, (names[1], "xshard_credit", {"xtx": xtx})),
    ):
        reply = decide(deployment, client, alice, group, call, xtx, "commit", votes)
        assert CrossShardVote.from_data(reply.data).ok

    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 15
    assert_conserved(deployment)

    # The coordinator re-delivers the commit to the target.
    reply = decide(
        deployment, client, alice, 1, (names[1], "xshard_credit", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    assert reply.operation == Opcode.TX_ERROR
    assert "already committed" in reply.data["error"]
    assert target.query("balance_of", {"account": recipient}) == 15
    assert_conserved(deployment)


def test_redelivered_gateway_vote_is_ignored_by_the_coordinator():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    vote, reply = prepare(
        deployment, client, alice, 0,
        (names[0], "xshard_reserve", {"xtx": xtx, "amount": 5}), xtx,
    )
    assert vote is not None and vote.ok
    # Re-deliver the very same signed vote envelope to the client's node:
    # its request waiter is gone, so the duplicate is dropped on the
    # floor rather than resolving anything twice.
    inner_client = client.clients[0]
    before = dict(inner_client._waiting)
    inner_client._on_message(
        deployment.group(0).cells[0].node_name, reply, reply.byte_size()
    )
    assert inner_client._waiting == before
    assert_conserved(deployment)


# ----------------------------------------------------------------------
# The coordinator path arms the expiry valve end to end
# ----------------------------------------------------------------------
def test_transfer_cross_hold_expiry_arms_both_escrow_legs():
    from repro.client.sharded import ShardRoutingError, ShardedFastMoneyClient

    deployment, alice, names, client = build()
    app = ShardedFastMoneyClient(client, base_name=BASE)
    with pytest.raises(ShardRoutingError, match="forwarding deadline"):
        app.transfer_cross(0, 1, "0x" + "7b" * 20, 5, signer=alice, hold_expiry=1.0)

    armed_at = deployment.env.now
    result = run_event(
        deployment,
        app.transfer_cross(0, 1, "0x" + "7b" * 20, 5, signer=alice, hold_expiry=60.0),
    )
    assert result.ok and result.decision == "commit", result.error
    # Both legs recorded the same expiry before settling/crediting.
    source = escrow_status(deployment, 0, names[0], result.xtx)
    target = escrow_status(deployment, 1, names[1], result.xtx)
    assert source["status"] == "settled" and target["status"] == "credited"
    assert_conserved(deployment)
    # A second armed transfer left undecided is reclaimable: covered by
    # test_abandoned_hold_is_reclaimed_after_expiry; here we pin that the
    # coordinator wrote the expiry the contracts will honour.
    xtx2 = client.next_xtx()
    vote, _reply = prepare(
        deployment, client, alice, 0,
        (names[0], "xshard_reserve",
         {"xtx": xtx2, "amount": 5, "expires_at": armed_at + 60.0}),
        xtx2,
    )
    assert vote is not None and vote.ok
    record = escrow_status(deployment, 0, names[0], xtx2)
    assert record["status"] == "held" and record["expires_at"] == armed_at + 60.0


# ----------------------------------------------------------------------
# Half-driven commit: value in transit, then delivered
# ----------------------------------------------------------------------
def test_half_driven_commit_is_in_transit_not_lost():
    deployment, alice, names, client = build()
    xtx = client.next_xtx()
    recipient = "0x" + "7a" * 20
    votes = []
    for group, call in (
        (0, (names[0], "xshard_reserve", {"xtx": xtx, "amount": 20})),
        (1, (names[1], "xshard_expect",
             {"xtx": xtx, "to": recipient, "amount": 20})),
    ):
        vote, _reply = prepare(deployment, client, alice, group, call, xtx)
        assert vote is not None and vote.ok
        votes.append(vote)

    # The coordinator settles the source… and crashes before the credit.
    reply = decide(
        deployment, client, alice, 0, (names[0], "xshard_settle", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    assert CrossShardVote.from_data(reply.data).ok
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "settled"
    assert escrow_status(deployment, 1, names[1], xtx)["status"] == "expected"
    # Value is in transit — conserved, and visible as such.
    assert_conserved(deployment, expect_in_transit=20)

    # Anyone holding the certificate can deliver the credit later.
    reply = decide(
        deployment, client, alice, 1, (names[1], "xshard_credit", {"xtx": xtx}),
        xtx, "commit", votes,
    )
    assert CrossShardVote.from_data(reply.data).ok
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 20
    assert_conserved(deployment, expect_in_transit=0)


# ----------------------------------------------------------------------
# The voucher fast path: pure-increment destinations skip 2PC
# ----------------------------------------------------------------------
def send_voucher(deployment, client, alice, group, body):
    """Send one XSHARD_VOUCHER leg and return the reply envelope."""
    _request, waiter = client.clients[group].request(
        Opcode.XSHARD_VOUCHER, body.to_data(), signer=alice
    )
    return run_event(deployment, waiter)


def mint_voucher(deployment, client, alice, names, xtx, amount, recipient,
                 expires_at, reclaim_after):
    """Drive one mint leg by hand and return the signed voucher."""
    from repro.messages.xshard import CrossShardVoucher, CrossShardVoucherTransfer

    inner = client._sign_call(
        alice, 0,
        (names[0], "xshard_voucher_mint",
         {"xtx": xtx, "to": recipient, "amount": amount,
          "expires_at": expires_at, "reclaim_after": reclaim_after}),
    )
    body = CrossShardVoucherTransfer(
        xtx=xtx, phase="mint", group=0, transaction=inner.to_wire(),
        target_group=1, target_contract=names[1],
    )
    reply = send_voucher(deployment, client, alice, 0, body)
    assert reply.operation == Opcode.XSHARD_VOUCHER, reply.data
    assert reply.data["phase"] == "minted"
    return CrossShardVoucher.from_wire(reply.data["voucher"])


def redeem_voucher(deployment, client, alice, names, xtx, voucher):
    """Drive one redeem leg spending exactly what the voucher vouches for."""
    from repro.messages.xshard import CrossShardVoucherTransfer

    inner = client._sign_call(
        alice, 1,
        (names[1], "xshard_voucher_redeem",
         {"xtx": xtx, "to": voucher.recipient, "amount": voucher.amount,
          "expires_at": voucher.expires_at}),
    )
    body = CrossShardVoucherTransfer(
        xtx=xtx, phase="redeem", group=1, transaction=inner.to_wire(),
        voucher=voucher.to_wire(),
    )
    return send_voucher(deployment, client, alice, 1, body)


def test_voucher_fast_path_commits_as_a_pure_increment():
    from repro.client.sharded import ShardedFastMoneyClient

    deployment, alice, names, client = build()
    app = ShardedFastMoneyClient(client, base_name=BASE)
    recipient = "0x" + "7c" * 20
    result = run_event(
        deployment,
        app.transfer_cross(0, 1, recipient, 15, signer=alice, fast_path=True),
    )
    assert result.ok and result.decision == "commit", result.error
    assert not result.in_transit
    # One message per gateway: the mint is the only "prepare", the
    # redeem the only "ack" — no vote round ever ran.
    assert set(result.prepare) == {0} and set(result.acks) == {1}
    assert escrow_status(deployment, 0, names[0], result.xtx)["status"] == "voucher"
    assert escrow_status(deployment, 1, names[1], result.xtx)["status"] == "redeemed"
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 15
    assert_conserved(deployment)


def test_fast_path_classifier_only_accepts_provable_pure_increments():
    """An unprovable destination footprint falls back to full 2PC."""
    deployment, alice, names, client = build()
    recipient = "0x" + "7c" * 20
    redeem = (
        names[1], "xshard_voucher_redeem",
        {"xtx": "0x" + "ab" * 8, "to": recipient, "amount": 5,
         "expires_at": deployment.env.now + 50.0},
    )
    assert client.destination_is_pure_increment(1, redeem, sender=alice.address)
    # A plain transfer reads and writes the sender's balance — a shared
    # key — so it can never take the fast path.
    assert not client.destination_is_pure_increment(
        1, (names[1], "transfer", {"to": recipient, "amount": 5}),
        sender=alice.address,
    )
    # Without an xtx the per-transaction keys cannot be told apart from
    # shared state, and a routing mismatch is never provable either.
    no_xtx = (names[1], "xshard_voucher_redeem",
              {"to": recipient, "amount": 5, "expires_at": 50.0})
    assert not client.destination_is_pure_increment(1, no_xtx, sender=alice.address)
    assert not client.destination_is_pure_increment(0, redeem, sender=alice.address)


def test_duplicate_voucher_redeem_is_a_metered_no_op():
    deployment, alice, names, client = build()
    recipient = "0x" + "7d" * 20
    xtx = client.next_xtx()
    expires = deployment.env.now + 50.0
    voucher = mint_voucher(
        deployment, client, alice, names, xtx, 10, recipient, expires, expires + 5.0
    )
    reply = redeem_voucher(deployment, client, alice, names, xtx, voucher)
    assert reply.operation == Opcode.XSHARD_VOUCHER
    assert reply.data["phase"] == "redeemed" and reply.data["duplicate"] is False
    # The network redelivers the redeem: the redeemed-voucher registry
    # answers it without touching the pipeline, and counts it.
    dup = redeem_voucher(deployment, client, alice, names, xtx, voucher)
    assert dup.operation == Opcode.XSHARD_VOUCHER
    assert dup.data["phase"] == "redeemed" and dup.data["duplicate"] is True
    gateway = deployment.group(1).cells[0]
    assert gateway.metrics.counter(
        f"{gateway.node_name}/xshard_voucher_duplicates"
    ) == 1
    target = gateway.contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 10
    assert_conserved(deployment)


def test_expired_voucher_refuses_redeem_and_the_source_reclaims():
    deployment, alice, names, client = build()
    recipient = "0x" + "7e" * 20
    xtx = client.next_xtx()
    expires = deployment.env.now + 5.0
    voucher = mint_voucher(
        deployment, client, alice, names, xtx, 30, recipient, expires, expires + 2.0
    )
    # The debit already happened: the value is in transit on the voucher.
    assert_conserved(deployment, expect_in_transit=30)

    # The voucher sits in a pocket past its deadline; the redeem refuses.
    deployment.run(until=expires + 0.5)
    reply = redeem_voucher(deployment, client, alice, names, xtx, voucher)
    assert reply.operation == Opcode.TX_ERROR
    assert "expired; the source reclaims it" in reply.data["error"]

    # Redeem and reclaim deadlines are disjoint: not reclaimable yet.
    early = run_event(
        deployment,
        client.submit(names[0], "xshard_voucher_reclaim", {"xtx": xtx}, signer=alice),
    )
    assert not early.ok and "not reclaimable yet" in early.error

    deployment.run(until=expires + 3.0)
    reclaimed = run_event(
        deployment,
        client.submit(names[0], "xshard_voucher_reclaim", {"xtx": xtx}, signer=alice),
    )
    assert reclaimed.ok, reclaimed.error
    source = deployment.group(0).cells[0].contracts.get(names[0])
    assert source.query("balance_of", {"account": alice.address.hex()}) == FUNDING
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "voucher_reclaimed"
    assert_conserved(deployment, expect_in_transit=0)


def test_forged_voucher_is_refused_before_any_credit():
    from dataclasses import replace

    deployment, alice, names, client = build()
    recipient = "0x" + "7f" * 20
    xtx = client.next_xtx()
    expires = deployment.env.now + 50.0
    voucher = mint_voucher(
        deployment, client, alice, names, xtx, 20, recipient, expires, expires + 5.0
    )
    forged = replace(
        voucher, signature=bytes(b ^ 0xFF for b in voucher.signature)
    )
    reply = redeem_voucher(deployment, client, alice, names, xtx, forged)
    assert reply.operation == Opcode.TX_ERROR
    assert reply.data["error"] == "voucher carries an invalid issuer signature"
    gateway = deployment.group(1).cells[0]
    assert gateway.metrics.counter(
        f"{gateway.node_name}/xshard_voucher_refusals"
    ) == 1
    target = gateway.contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 0
    # The directory check refused it before any credit: the debit stands
    # and the value is visibly in transit, not minted and not lost.
    assert escrow_status(deployment, 0, names[0], xtx)["status"] == "voucher"
    assert_conserved(deployment, expect_in_transit=20)

    # The genuine voucher still redeems — the refusal burned nothing.
    ok_reply = redeem_voucher(deployment, client, alice, names, xtx, voucher)
    assert ok_reply.operation == Opcode.XSHARD_VOUCHER
    assert ok_reply.data["phase"] == "redeemed" and ok_reply.data["duplicate"] is False
    assert target.query("balance_of", {"account": recipient}) == 20
    assert_conserved(deployment, expect_in_transit=0)


# ----------------------------------------------------------------------
# A dropped commit ack is in-transit value, not a failed transfer
# ----------------------------------------------------------------------
def test_dropped_commit_ack_reports_in_transit_with_the_certificate():
    from repro.client.sharded import ShardedFastMoneyClient
    from repro.client.workload import ShardedWorkloadReport

    deployment, alice, names, client = build()
    app = ShardedFastMoneyClient(client, base_name=BASE)
    recipient = "0x" + "7b" * 20

    original = client._send_phase

    def drop_target_commit(signer, plan, data, opcode):
        if opcode == Opcode.XSHARD_COMMIT and plan.group == 1:
            # The decision to the target is lost in flight: never
            # delivered, never acknowledged.
            return client.env.event()
        return original(signer, plan, data, opcode)

    client._send_phase = drop_target_commit
    result = run_event(
        deployment, app.transfer_cross(0, 1, recipient, 20, signer=alice)
    )
    client._send_phase = original

    # The commit was *decided* — the certificate proves it — so the
    # outcome is the distinct in-transit class, not a generic failure.
    assert result.decision == "commit"
    assert not result.ok and result.in_transit
    assert "value is in transit under the commit certificate" in result.error
    assert "group 1" in result.error
    votes = [outcome.vote for outcome in result.prepare.values()]
    assert all(vote is not None and vote.ok for vote in votes)
    assert escrow_status(deployment, 0, names[0], result.xtx)["status"] == "settled"
    assert escrow_status(deployment, 1, names[1], result.xtx)["status"] == "expected"
    assert_conserved(deployment, expect_in_transit=20)

    # Workload accounting files it as in-transit, never as a failure.
    report = ShardedWorkloadReport(
        label="in-transit", consortium_size=2, cross_results=[result]
    )
    assert report.cross_failures == [] and report.cross_in_transit == [result]
    assert report.failure_count == 0

    # Anyone holding the certificate delivers the credit later.
    reply = decide(
        deployment, client, alice, 1,
        (names[1], "xshard_credit", {"xtx": result.xtx}),
        result.xtx, "commit", votes,
    )
    assert CrossShardVote.from_data(reply.data).ok
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 20
    assert_conserved(deployment, expect_in_transit=0)


# ----------------------------------------------------------------------
# Skew-padded destination deadlines heal the expiry asymmetry
# ----------------------------------------------------------------------
def test_skew_pad_heals_the_asymmetric_expiry_window():
    """Deadlines are checked at delivery: under destination skew a credit
    can arrive after a deadline the settle met, stranding the value with
    a settled source and an expired expectation.  The destination leg's
    padded deadline (satellite: ``skew_pad``) closes exactly that window;
    an unpadded leg reproduces the old asymmetry."""
    deployment, alice, names, client = build()
    recipient = "0x" + "79" * 20
    skew, pad = 3.0, 10.0
    expires = deployment.env.now + 30.0

    def prepare_pair(xtx, dest_pad):
        votes = []
        for group, call in (
            (0, (names[0], "xshard_reserve",
                 {"xtx": xtx, "amount": 10, "expires_at": expires})),
            (1, (names[1], "xshard_expect",
                 {"xtx": xtx, "to": recipient, "amount": 10,
                  "expires_at": expires + dest_pad})),
        ):
            vote, _reply = prepare(deployment, client, alice, group, call, xtx)
            assert vote is not None and vote.ok
            votes.append(vote)
        return votes

    xtx_bare = client.next_xtx()
    votes_bare = prepare_pair(xtx_bare, dest_pad=0.0)
    xtx_padded = client.next_xtx()
    votes_padded = prepare_pair(xtx_padded, dest_pad=pad)

    # After both holds are armed, the destination gateway's scheduler
    # falls behind by more than the source/destination latency gap.
    gateway = deployment.group(1).cells[0]
    deployment.network.set_node_skew(gateway.node_name, skew)

    # The coordinator decides commit just inside the source deadline:
    # both settles land in time, both credits are delivered late.
    deployment.run(until=expires - 1.0)
    for xtx, votes in ((xtx_bare, votes_bare), (xtx_padded, votes_padded)):
        reply = decide(
            deployment, client, alice, 0,
            (names[0], "xshard_settle", {"xtx": xtx}), xtx, "commit", votes,
        )
        assert CrossShardVote.from_data(reply.data).ok
        assert deployment.env.now < expires

    # The padded leg absorbs the late delivery and credits.
    reply = decide(
        deployment, client, alice, 1,
        (names[1], "xshard_credit", {"xtx": xtx_padded}),
        xtx_padded, "commit", votes_padded,
    )
    assert CrossShardVote.from_data(reply.data).ok
    assert escrow_status(deployment, 1, names[1], xtx_padded)["status"] == "credited"

    # The unpadded leg reproduces the bug: source settled, credit
    # refused as expired — the value is stranded in transit.
    reply = decide(
        deployment, client, alice, 1,
        (names[1], "xshard_credit", {"xtx": xtx_bare}),
        xtx_bare, "commit", votes_bare,
    )
    vote = CrossShardVote.from_data(reply.data)
    assert not vote.ok and "expired" in reply.data["error"]
    assert escrow_status(deployment, 0, names[0], xtx_bare)["status"] == "settled"
    assert escrow_status(deployment, 1, names[1], xtx_bare)["status"] == "expected"
    assert_conserved(deployment, expect_in_transit=10)
    deployment.network.set_node_skew(gateway.node_name, 0.0)


def test_transfer_cross_pads_the_destination_deadline_by_skew_pad():
    """The coordinator arms the destination leg ``skew_pad`` beyond the
    source leg, observable on the escrow record while a commit is lost."""
    from repro.client.sharded import ShardedFastMoneyClient

    deployment, alice, names, client = build()
    app = ShardedFastMoneyClient(client, base_name=BASE)
    original = client._send_phase

    def drop_target_commit(signer, plan, data, opcode):
        if opcode == Opcode.XSHARD_COMMIT and plan.group == 1:
            return client.env.event()
        return original(signer, plan, data, opcode)

    client._send_phase = drop_target_commit
    armed_at = deployment.env.now
    result = run_event(
        deployment,
        app.transfer_cross(0, 1, "0x" + "7b" * 20, 5, signer=alice,
                           hold_expiry=60.0, skew_pad=2.5),
    )
    client._send_phase = original
    assert result.in_transit and result.decision == "commit"
    source = escrow_status(deployment, 0, names[0], result.xtx)
    target = escrow_status(deployment, 1, names[1], result.xtx)
    assert source["status"] == "settled"
    assert target["status"] == "expected"
    # The destination expectation still carries its deadline: the source
    # leg's expiry plus the pad (the settled record sheds its own).
    assert target["expires_at"] == pytest.approx(armed_at + 60.0 + 2.5)
    assert_conserved(deployment, expect_in_transit=5)


def test_async_fast_path_commits_before_the_redeem_lands():
    """``await_redeem=False`` returns once the voucher is secured; the
    redeem delivers in the background and resolves ``result.redeem``."""
    from repro.client.sharded import ShardedFastMoneyClient

    deployment, alice, names, client = build()
    app = ShardedFastMoneyClient(client, base_name=BASE)
    recipient = "0x" + "7d" * 20
    result = run_event(
        deployment,
        app.transfer_cross(0, 1, recipient, 15, signer=alice,
                           fast_path=True, await_redeem=False),
    )
    assert result.ok and result.decision == "commit", result.error
    assert result.redeem is not None
    # The early commit point: the debit is escrowed under the voucher,
    # but no acknowledgement from the destination exists yet.
    assert set(result.prepare) == {0} and result.acks == {}
    assert escrow_status(deployment, 0, names[0], result.xtx)["status"] == "voucher"
    final = run_event(deployment, result.redeem)
    assert final.ok and final.decision == "commit", final.error
    assert set(final.acks) == {1}
    assert escrow_status(deployment, 1, names[1], final.xtx)["status"] == "redeemed"
    target = deployment.group(1).cells[0].contracts.get(names[1])
    assert target.query("balance_of", {"account": recipient}) == 15
    assert_conserved(deployment)


def test_async_fast_path_refuses_a_forged_voucher_before_promising():
    """The client-side directory check is load-bearing in async mode: a
    lying source gateway's forged voucher must never earn the early ok."""
    from repro.client.sharded import ShardedFastMoneyClient

    deployment, alice, names, client = build()
    app = ShardedFastMoneyClient(client, base_name=BASE)
    forger = deployment.group(0).gateway
    forger.fault.lying_gateway = "voucher"
    result = run_event(
        deployment,
        app.transfer_cross(0, 1, "0x" + "7e" * 20, 15, signer=alice,
                           fast_path=True, await_redeem=False),
    )
    forger.fault.lying_gateway = None
    assert not result.ok and result.decision == "abort"
    assert result.in_transit and result.redeem is None
    assert "directory verification" in (result.error or "")
    counter = forger.metrics.counter(f"{forger.node_name}/xshard_vouchers_forged")
    assert counter == 1
    # The debit really happened; the value sits in transit until the
    # source reclaims it after the voucher deadline.
    assert escrow_status(deployment, 0, names[0], result.xtx)["status"] == "voucher"
    assert_conserved(deployment, expect_in_transit=15)
