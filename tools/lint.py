#!/usr/bin/env python3
"""Repo-root wrapper for the static-analysis suite.

Equivalent to ``PYTHONPATH=src python -m repro.lint`` — kept so the lint
pass can run from a bare checkout (and from CI) without environment setup.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
