#!/usr/bin/env python3
"""Fail on broken intra-repository references in the project's Markdown files.

Scans ``README.md`` and ``docs/*.md`` (or any files passed as arguments)
for three kinds of rot:

* **Markdown links** ``[text](target)`` — every *relative* target must
  resolve to an existing file or directory inside the repository, and
  anchored links (``file.md#heading``) must match a heading in the
  target file (GitHub slug rules).  External links (``http(s)://``,
  ``mailto:``) are ignored — CI must not depend on the network.
* **Module references** — backtick-quoted dotted paths like
  ```repro.core.sharding``` must resolve under ``src/``: each component
  must be a package directory or module file (a trailing CamelCase or
  post-module component is accepted as an attribute/class reference).
* **File references** — backtick-quoted paths like ```core/lanes.py```
  or ```benchmarks/test_recovery.py``` must name a real file (resolved
  against the repository root, ``src/repro/``, or — for bare filenames —
  anywhere in the tree); ```dir/``` tokens must name a real directory.

Exit status: 0 when everything resolves, 1 otherwise (one line per broken
reference).  Used by the ``docs`` CI job and
``tests/docs/test_doc_links.py``.
"""

from __future__ import annotations

import re
import sys
from functools import lru_cache
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links; deliberately simple — no images-with-titles, no
#: reference-style links (the repo's docs do not use them).
LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: Backtick-quoted dotted module paths rooted at the top-level package.
MODULE_PATTERN = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")
#: Backtick-quoted file paths/names with a recognized suffix.
FILE_PATTERN = re.compile(
    r"`([A-Za-z0-9_][A-Za-z0-9_./-]*\.(?:py|md|json|txt|ya?ml|toml|cfg|ini))`"
)
#: Backtick-quoted directory paths (trailing slash).
DIR_PATTERN = re.compile(r"`([A-Za-z0-9_][A-Za-z0-9_./-]*/)`")

SRC_ROOT = REPO_ROOT / "src"


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, punctuation stripped,
    spaces to hyphens (backticks and inline markup removed first)."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs available in a Markdown file."""
    slugs: set[str] = set()
    for match in HEADING_PATTERN.finditer(path.read_text(encoding="utf-8")):
        slugs.add(github_slug(match.group(1)))
    return slugs


def module_reference_error(dotted: str) -> str | None:
    """Why a ``repro.*`` dotted reference does not resolve (None when it does).

    Components are resolved left to right under ``src/``: a component may
    be a package directory or a module file.  Once a module file is
    reached, one trailing component is accepted as an attribute; a
    CamelCase trailing component is accepted as a class reference.  A
    lowercase component that is neither a package nor a module is rot.
    """
    components = dotted.split(".")
    position = SRC_ROOT
    for index, component in enumerate(components):
        if (position / component).is_dir():
            position = position / component
            continue
        if (position / f"{component}.py").is_file():
            # Anything after a module is an attribute/class reference
            # (``module.Class``, ``module.Class.method``) — not
            # statically verifiable, hence accepted, however deep.
            return None
        if component[:1].isupper() and index == len(components) - 1:
            return None  # a class referenced on a package, e.g. repro.core.FaultPlan
        if index == len(components) - 1:
            # A lowercase final component on a package may be a re-export
            # (e.g. ``repro.core.chain_shard_digest``): accept it when
            # the name appears in the package's __init__.py.
            init = position / "__init__.py"
            if init.is_file() and re.search(
                rf"\b{re.escape(component)}\b", init.read_text(encoding="utf-8")
            ):
                return None
        return f"{dotted!r}: no module or package {component!r} under {position.relative_to(REPO_ROOT)}"
    return None


@lru_cache(maxsize=1)
def _tree_filenames() -> dict[str, int]:
    """Every committed-tree filename -> occurrence count (for bare names)."""
    names: dict[str, int] = {}
    skip_parts = {".git", "__pycache__", ".pytest_cache", "node_modules"}
    for entry in REPO_ROOT.rglob("*"):
        if entry.is_file() and not skip_parts.intersection(entry.parts):
            names[entry.name] = names.get(entry.name, 0) + 1
    return names


def file_reference_error(token: str) -> str | None:
    """Why a quoted file path does not resolve (None when it does)."""
    if (REPO_ROOT / token).is_file() or (SRC_ROOT / "repro" / token).is_file():
        return None
    if "/" not in token and token in _tree_filenames():
        return None
    return f"{token!r}: no such file (tried repo root, src/repro/, and bare-name search)"


def dir_reference_error(token: str) -> str | None:
    """Why a quoted directory path does not resolve (None when it does)."""
    stripped = token.rstrip("/")
    if (REPO_ROOT / stripped).is_dir() or (SRC_ROOT / "repro" / stripped).is_dir():
        return None
    return f"{token!r}: no such directory (tried repo root and src/repro/)"


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one Markdown file."""
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    for pattern, checker, label in (
        (MODULE_PATTERN, module_reference_error, "module reference"),
        (FILE_PATTERN, file_reference_error, "file reference"),
        (DIR_PATTERN, dir_reference_error, "directory reference"),
    ):
        for match in pattern.finditer(text):
            error = checker(match.group(1))
            if error is not None:
                problems.append(f"{path}: broken {label} {error}")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in heading_slugs(path):
                problems.append(f"{path}: broken anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        # Containment is only meaningful for files that live in the repo;
        # explicitly passed out-of-tree files are checked against their own
        # directory instead.
        try:
            root = REPO_ROOT if path.is_relative_to(REPO_ROOT) else path.parent
        except AttributeError:  # pragma: no cover - Python < 3.9
            root = REPO_ROOT
        try:
            resolved.relative_to(root)
        except ValueError:
            problems.append(f"{path}: link escapes the repository: {target!r}")
            continue
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r}")
            continue
        if anchor and resolved.is_file() and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                problems.append(f"{path}: broken anchor {target!r}")
    return problems


def default_files() -> list[Path]:
    """README.md plus every Markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def main(argv: list[str]) -> int:
    files = [Path(arg).resolve() for arg in argv] or default_files()
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"{len(files)} file(s) checked, all intra-repo links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
