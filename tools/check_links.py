#!/usr/bin/env python3
"""Fail on broken intra-repository links in the project's Markdown files.

Scans ``README.md`` and ``docs/*.md`` (or any files passed as arguments)
for Markdown links ``[text](target)`` and checks that every *relative*
target resolves to an existing file or directory inside the repository.
Anchored links (``file.md#heading``) additionally require the anchor to
match a heading in the target file, using GitHub's slug rules.  External
links (``http(s)://``, ``mailto:``) are ignored — CI must not depend on
the network.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link).  Used by the ``docs`` CI job and
``tests/docs/test_doc_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links; deliberately simple — no images-with-titles, no
#: reference-style links (the repo's docs do not use them).
LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, punctuation stripped,
    spaces to hyphens (backticks and inline markup removed first)."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs available in a Markdown file."""
    slugs: set[str] = set()
    for match in HEADING_PATTERN.finditer(path.read_text(encoding="utf-8")):
        slugs.add(github_slug(match.group(1)))
    return slugs


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one Markdown file."""
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in heading_slugs(path):
                problems.append(f"{path}: broken anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        # Containment is only meaningful for files that live in the repo;
        # explicitly passed out-of-tree files are checked against their own
        # directory instead.
        try:
            root = REPO_ROOT if path.is_relative_to(REPO_ROOT) else path.parent
        except AttributeError:  # pragma: no cover - Python < 3.9
            root = REPO_ROOT
        try:
            resolved.relative_to(root)
        except ValueError:
            problems.append(f"{path}: link escapes the repository: {target!r}")
            continue
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r}")
            continue
        if anchor and resolved.is_file() and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                problems.append(f"{path}: broken anchor {target!r}")
    return problems


def default_files() -> list[Path]:
    """README.md plus every Markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def main(argv: list[str]) -> int:
    files = [Path(arg).resolve() for arg in argv] or default_files()
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"{len(files)} file(s) checked, all intra-repo links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
