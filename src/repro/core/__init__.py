"""Blockumulus core: cells, overlay consensus, snapshots, receipts, deployment."""

from .batching import BatchDispatcher
from .cell import BlockumulusCell
from .config import ConfigError, DeploymentConfig, SystemInvariants
from .consensus import CellStanding, ConsensusError, OverlayConsensus
from .deployment import BlockumulusDeployment
from .executor import ExecutionOutcome, TransactionExecutor
from .faults import (
    FAULT_KINDS,
    FaultError,
    FaultPlan,
    FaultSchedule,
    ScheduledFault,
    censor_method,
    censor_sender,
)
from .lanes import (
    AccessFootprint,
    LaneError,
    LaneSchedule,
    LaneScheduler,
    footprint_for_entry,
    partition_footprints,
)
from .ledger import LedgerEntry, LedgerError, TransactionLedger
from .receipts import AggregatedReceipt, Confirmation, ConfirmationBatch, ReceiptError
from .sharding import (
    CellGroup,
    ShardMap,
    ShardedDeployment,
    ShardingError,
    chain_shard_digest,
)
from .recovery import (
    MembershipManager,
    RecoveryCoordinator,
    RecoveryError,
    RecoveryResult,
)
from .snapshot import DataSnapshot, LazySnapshotExport, SnapshotEngine, SnapshotError
from .subscription import PricingPolicy, Subscription, SubscriptionError, SubscriptionManager

__all__ = [
    "AccessFootprint",
    "AggregatedReceipt",
    "BatchDispatcher",
    "BlockumulusCell",
    "BlockumulusDeployment",
    "CellGroup",
    "CellStanding",
    "Confirmation",
    "ConfirmationBatch",
    "ConfigError",
    "ConsensusError",
    "DataSnapshot",
    "DeploymentConfig",
    "ExecutionOutcome",
    "FAULT_KINDS",
    "FaultError",
    "FaultPlan",
    "FaultSchedule",
    "ScheduledFault",
    "LaneError",
    "LaneSchedule",
    "LaneScheduler",
    "LazySnapshotExport",
    "LedgerEntry",
    "LedgerError",
    "MembershipManager",
    "OverlayConsensus",
    "PricingPolicy",
    "ReceiptError",
    "RecoveryCoordinator",
    "RecoveryError",
    "RecoveryResult",
    "ShardMap",
    "ShardedDeployment",
    "ShardingError",
    "SnapshotEngine",
    "SnapshotError",
    "Subscription",
    "SubscriptionError",
    "SubscriptionManager",
    "SystemInvariants",
    "TransactionExecutor",
    "TransactionLedger",
    "censor_method",
    "censor_sender",
    "chain_shard_digest",
    "footprint_for_entry",
    "partition_footprints",
]
