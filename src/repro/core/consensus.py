"""Overlay-consensus timing and cell validity rules.

Section III-A4 fixes the report timing: deadlines are all timestamps
divisible by the report period λ; the snapshot with serial number i (the
*report cycle*) must be reported by the end of cycle i+1 for the reporting
cell to be treated as valid during cycle i+2.  This module implements that
arithmetic plus the bookkeeping for temporary cell exclusion (missed
forwarding deadlines, fingerprint mismatches) and is shared by cells and
auditors so both sides compute identical cycle numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.keys import Address
from .config import SystemInvariants


class ConsensusError(Exception):
    """Raised for invalid consensus-timing queries."""


@dataclass
class CellStanding:
    """Mutable standing of one consortium cell as seen by a peer."""

    address: Address
    consecutive_misses: int = 0
    total_misses: int = 0
    excluded_since_cycle: int | None = None
    #: Cycle of the most recent readmission (freshness bound for replayed
    #: exclusion evidence; None if the cell was never readmitted).
    readmitted_cycle: int | None = None

    @property
    def is_excluded(self) -> bool:
        """Whether the cell is currently excluded from the consensus."""
        return self.excluded_since_cycle is not None


class OverlayConsensus:
    """Report-cycle arithmetic and cell-standing bookkeeping."""

    def __init__(self, invariants: SystemInvariants) -> None:
        self.invariants = invariants
        self._standing: dict[Address, CellStanding] = {
            address: CellStanding(address) for address in invariants.cell_addresses
        }

    # ------------------------------------------------------------------
    # Cycle arithmetic (Section III-A4)
    # ------------------------------------------------------------------
    def cycle_of(self, timestamp: float) -> int:
        """The report cycle that ``timestamp`` falls into."""
        if timestamp < self.invariants.initial_timestamp:
            raise ConsensusError("timestamp precedes the deployment's initial timestamp")
        elapsed = timestamp - self.invariants.initial_timestamp
        return int(elapsed // self.invariants.report_period)

    def cycle_start(self, cycle: int) -> float:
        """Timestamp at which ``cycle`` begins."""
        if cycle < 0:
            raise ConsensusError("cycles are non-negative")
        return self.invariants.initial_timestamp + cycle * self.invariants.report_period

    def cycle_deadline(self, cycle: int) -> float:
        """Timestamp at which ``cycle`` ends (its snapshot deadline)."""
        return self.cycle_start(cycle + 1)

    def next_deadline(self, timestamp: float) -> float:
        """The upcoming report deadline after ``timestamp``."""
        return self.cycle_deadline(self.cycle_of(timestamp))

    def report_due_by(self, snapshot_cycle: int) -> float:
        """Latest time the snapshot of ``snapshot_cycle`` may be reported.

        The paper requires cycle ``i`` to be reported by the end of cycle
        ``i + 1``.
        """
        return self.cycle_deadline(snapshot_cycle + 1)

    def valid_from_cycle(self, snapshot_cycle: int) -> int:
        """First cycle in which a timely report of ``snapshot_cycle`` counts."""
        return snapshot_cycle + 2

    def is_report_timely(self, snapshot_cycle: int, reported_at: float) -> bool:
        """Whether a report of ``snapshot_cycle`` landed before its due time."""
        return reported_at <= self.report_due_by(snapshot_cycle)

    # ------------------------------------------------------------------
    # Cell standing
    # ------------------------------------------------------------------
    def standing(self, cell: Address) -> CellStanding:
        """The standing record for ``cell``."""
        try:
            return self._standing[cell]
        except KeyError:
            raise ConsensusError(f"{cell.hex()} is not a consortium cell") from None

    def record_miss(self, cell: Address, cycle: int) -> bool:
        """Record a missed forwarding deadline; returns True if now excluded."""
        standing = self.standing(cell)
        standing.consecutive_misses += 1
        standing.total_misses += 1
        if (
            not standing.is_excluded
            and standing.consecutive_misses >= self.invariants.miss_threshold
        ):
            standing.excluded_since_cycle = cycle
        return standing.is_excluded

    def record_success(self, cell: Address) -> None:
        """Reset the consecutive-miss counter after a timely response."""
        self.standing(cell).consecutive_misses = 0

    def exclude(self, cell: Address, cycle: int) -> None:
        """Exclude a cell explicitly (failed verification, mutual agreement)."""
        standing = self.standing(cell)
        if not standing.is_excluded:
            standing.excluded_since_cycle = cycle

    def readmit(self, cell: Address, cycle: int | None = None) -> None:
        """Re-admit a previously excluded cell (next report cycle).

        ``cycle`` (when known) records the readmission cycle so later
        replayed exclusion evidence from before the readmission can be
        recognized as stale.
        """
        standing = self.standing(cell)
        standing.excluded_since_cycle = None
        standing.consecutive_misses = 0
        if cycle is not None:
            previous = standing.readmitted_cycle
            standing.readmitted_cycle = cycle if previous is None else max(previous, cycle)

    def excluded_cells(self) -> list[Address]:
        """Addresses of all currently excluded cells."""
        return [address for address, standing in self._standing.items() if standing.is_excluded]

    def active_cells(self) -> list[Address]:
        """Addresses of all non-excluded consortium cells."""
        return [
            address for address, standing in self._standing.items() if not standing.is_excluded
        ]

    def is_active(self, cell: Address) -> bool:
        """Whether ``cell`` is currently part of the confirmation quorum."""
        return not self.standing(cell).is_excluded

    # ------------------------------------------------------------------
    # Membership quorums (dynamic membership, Section V)
    # ------------------------------------------------------------------
    @staticmethod
    def quorum_size(voters: int) -> int:
        """Strict majority of ``voters`` (the exclusion/readmission quorum)."""
        if voters < 1:
            raise ConsensusError("a quorum needs at least one voter")
        return voters // 2 + 1

    def exclusion_quorum(self, suspect: Address) -> int:
        """Agreeing votes needed to exclude ``suspect`` consortium-wide.

        The electorate is every currently active cell except the suspect
        itself (a suspect obviously does not vote on its own exclusion).
        """
        voters = [address for address in self.active_cells() if address != suspect]
        return self.quorum_size(max(1, len(voters)))

    def readmission_quorum(self, rejoiner: Address) -> int:
        """Agreeing acks needed to readmit ``rejoiner`` into the quorum."""
        voters = [address for address in self.active_cells() if address != rejoiner]
        return self.quorum_size(max(1, len(voters)))

    # ------------------------------------------------------------------
    # Theorem 1
    # ------------------------------------------------------------------
    @staticmethod
    def minimum_valid_cells(consortium_size: int) -> int:
        """Minimum number of valid cells required for the overlay consensus.

        Theorem 1: the minimum is 1 for every consortium size M >= 2 —
        a single honest cell that maintains snapshot succession and correct
        reports keeps the deployment verifiable.
        """
        if consortium_size < 1:
            raise ConsensusError("a consortium has at least one cell")
        return 1
