"""The mutex-protected transaction ledger of a cell.

Section V-A requires "a mutex-based storage (i.e., one that does not permit
simultaneous writing operations)" so that conflicting transactions are
serialized in arrival order.  Inside the discrete-event simulation a cell's
handler callbacks are already serialized, but the *protocol-level* mutual
exclusion still matters: transaction admission (the ordering point) must be
atomic with respect to concurrently arriving transactions that are waiting
on the ledger's admission lock, and the ledger keeps the per-cycle segments
auditors later replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..contracts.state_store import AccessSet
from ..crypto.fingerprint import canonical_bytes
from ..crypto.hashing import fast_hash
from ..messages.envelope import Envelope
from ..sim.environment import Environment
from ..sim.resources import Resource


class LedgerError(Exception):
    """Raised for invalid ledger operations."""


@dataclass
class LedgerEntry:
    """One admitted transaction."""

    sequence: int
    tx_id: str
    cycle: int
    admitted_at: float
    envelope: Envelope
    #: Filled in after execution.
    status: str = "admitted"          # admitted | executed | rejected
    result: Any = None
    error: Optional[str] = None
    fingerprint: Optional[bytes] = None
    contract: Optional[str] = None
    #: True if this transaction arrived via the on-chain contingency channel.
    contingency: bool = False
    #: Observed store access of the execution (per-cell diagnostics for the
    #: lane engine; deliberately kept out of :meth:`summary` so the wire
    #: format of audits and resync bundles is unchanged).
    access: Optional[AccessSet] = None

    def summary(self) -> dict[str, Any]:
        """Compact dict used in audits, resync bundles, and logs."""
        return {
            "sequence": self.sequence,
            "tx_id": self.tx_id,
            "cycle": self.cycle,
            "admitted_at": self.admitted_at,
            "status": self.status,
            "contract": self.contract,
            "error": self.error,
            "contingency": self.contingency,
            "fingerprint": (
                "0x" + self.fingerprint.hex() if self.fingerprint is not None else None
            ),
        }


class TransactionLedger:
    """Ordered, mutex-protected storage of all transactions seen by a cell."""

    def __init__(self, env: Environment, cell_id: str) -> None:
        self.env = env
        self.cell_id = cell_id
        self._entries: list[LedgerEntry] = []
        self._by_tx_id: dict[str, LedgerEntry] = {}
        #: The admission mutex (capacity-1 resource): the "mutex-based
        #: storage" of Section V-A.
        self.mutex = Resource(env, capacity=1, name=f"{cell_id}-ledger-mutex")

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, envelope: Envelope, cycle: int, contingency: bool = False) -> LedgerEntry:
        """Append a transaction in arrival order (caller holds the mutex).

        Duplicate transaction ids are rejected, which is what stops an
        identical transaction submitted through two different cells from
        being executed twice.
        """
        tx_id = envelope.payload.hash_hex()
        if tx_id in self._by_tx_id:
            raise LedgerError(f"transaction {tx_id} is already in the ledger")
        entry = LedgerEntry(
            sequence=len(self._entries),
            tx_id=tx_id,
            cycle=cycle,
            admitted_at=self.env.now,
            envelope=envelope,
            contingency=contingency,
        )
        self._entries.append(entry)
        self._by_tx_id[tx_id] = entry
        return entry

    def entry_at(self, sequence: int) -> LedgerEntry:
        """Fetch the ledger entry with the given sequence number."""
        if not 0 <= sequence < len(self._entries):
            raise LedgerError(f"no ledger entry with sequence {sequence}")
        return self._entries[sequence]

    def contains(self, tx_id: str) -> bool:
        """Whether the transaction id has been admitted."""
        return tx_id in self._by_tx_id

    def get(self, tx_id: str) -> LedgerEntry:
        """Fetch the ledger entry for ``tx_id``."""
        try:
            return self._by_tx_id[tx_id]
        except KeyError:
            raise LedgerError(f"unknown transaction {tx_id}") from None

    # ------------------------------------------------------------------
    # Execution bookkeeping
    # ------------------------------------------------------------------
    def mark_executed(
        self,
        tx_id: str,
        contract: str,
        result: Any,
        fingerprint: bytes,
        access: Optional[AccessSet] = None,
    ) -> LedgerEntry:
        """Record a successful execution."""
        entry = self.get(tx_id)
        entry.status = "executed"
        entry.contract = contract
        entry.result = result
        entry.fingerprint = fingerprint
        entry.access = access
        return entry

    def mark_rejected(
        self,
        tx_id: str,
        contract: Optional[str],
        error: str,
        access: Optional[AccessSet] = None,
    ) -> LedgerEntry:
        """Record a failed/reverted execution."""
        entry = self.get(tx_id)
        entry.status = "rejected"
        entry.contract = contract
        entry.error = error
        entry.access = access
        return entry

    # ------------------------------------------------------------------
    # Audit support
    # ------------------------------------------------------------------
    def entries_for_cycle(self, cycle: int) -> list[LedgerEntry]:
        """All entries admitted during ``cycle``, in order."""
        return [entry for entry in self._entries if entry.cycle == cycle]

    def cycle_execution_fingerprint(self, cycle: int) -> str:
        """One digest over everything execution decided for ``cycle``.

        Covers every entry of the cycle — transaction id, status, target
        contract, result, and error — *sorted by transaction id*, i.e. the
        same schedule-independent material the per-transaction execution
        fingerprints exchanged in confirmations cover.  Two cells (or two
        configurations of the same cell — serial vs. lane-parallel,
        batched vs. per-transaction) executed the cycle identically iff
        these digests match and their end-of-cycle snapshot fingerprints
        match.  Deliberately excluded: admission order and timestamps
        (arrival races differ per cell) and the intermediate per-entry
        store fingerprints (which depend on how non-conflicting
        transactions happened to interleave, not on what they computed).
        """
        items = sorted(
            (
                {
                    "tx_id": entry.tx_id,
                    "status": entry.status,
                    "contract": entry.contract,
                    "result": entry.result,
                    "error": entry.error,
                }
                for entry in self._entries
                if entry.cycle == cycle
            ),
            key=lambda item: item["tx_id"],
        )
        return "0x" + fast_hash(canonical_bytes(items)).hex()

    def execution_fingerprints_through(self, last_cycle: int) -> list[str]:
        """Per-cycle execution fingerprints for cycles ``0..last_cycle``.

        The ordered list a sharded deployment chains into its
        deployment-level *shard digest* (:mod:`repro.core.sharding`):
        one schedule-independent digest per report cycle, covering every
        transaction outcome of the cycle.
        """
        if last_cycle < 0:
            raise LedgerError("fingerprints need at least cycle 0")
        return [self.cycle_execution_fingerprint(cycle) for cycle in range(last_cycle + 1)]

    def executed_for_cycle(self, cycle: int) -> list[LedgerEntry]:
        """Successfully executed entries of ``cycle`` (the replay set)."""
        return [
            entry
            for entry in self._entries
            if entry.cycle == cycle and entry.status == "executed"
        ]

    def segment(self, first_cycle: int, last_cycle: int) -> list[dict[str, Any]]:
        """Wire-friendly export of all entries in a cycle range (inclusive)."""
        return [
            {
                "summary": entry.summary(),
                "envelope": entry.envelope.to_wire(),
            }
            for entry in self._entries
            if first_cycle <= entry.cycle <= last_cycle
        ]

    # ------------------------------------------------------------------
    # Resync support (crash recovery, Section V)
    # ------------------------------------------------------------------
    def sync_segment(self, since_sequence: int) -> list[dict[str, Any]]:
        """Wire-friendly export of every entry from ``since_sequence`` on.

        This is what a donor cell ships to a recovering peer: the summary
        (including the per-entry execution fingerprint), the signed client
        envelope, and the recorded result, so the recovering cell can both
        backfill its ledger and check its own replay entry by entry.
        """
        return [
            {
                "summary": entry.summary(),
                "envelope": entry.envelope.to_wire(),
                "result": entry.result,
            }
            for entry in self._entries[max(0, since_sequence):]
        ]

    def backfill(self, envelope: Envelope, summary: dict[str, Any], result: Any) -> LedgerEntry:
        """Install a donor-provided entry whose effects a snapshot already covers.

        Used during resync for entries at or below the donor snapshot's
        ``last_sequence``: the restored state already reflects them, so they
        are recorded with the donor's outcome instead of being re-executed.
        The donor's sequence number must be exactly the next local sequence —
        anything else means the ledgers diverged and recovery must abort.
        """
        sequence = int(summary["sequence"])
        if sequence != len(self._entries):
            raise LedgerError(
                f"backfill sequence {sequence} does not follow local head {len(self._entries)}"
            )
        tx_id = envelope.payload.hash_hex()
        if tx_id != summary.get("tx_id"):
            raise LedgerError(f"backfill envelope does not hash to tx {summary.get('tx_id')}")
        if tx_id in self._by_tx_id:
            raise LedgerError(f"transaction {tx_id} is already in the ledger")
        fingerprint_hex = summary.get("fingerprint")
        entry = LedgerEntry(
            sequence=sequence,
            tx_id=tx_id,
            cycle=int(summary["cycle"]),
            admitted_at=float(summary.get("admitted_at", self.env.now)),
            envelope=envelope,
            status=str(summary.get("status", "admitted")),
            result=result,
            error=summary.get("error"),
            fingerprint=(
                bytes.fromhex(fingerprint_hex[2:]) if fingerprint_hex else None
            ),
            contract=summary.get("contract"),
            contingency=bool(summary.get("contingency", False)),
        )
        self._entries.append(entry)
        self._by_tx_id[tx_id] = entry
        return entry

    def truncate(self, last_sequence: int) -> int:
        """Drop every entry with a sequence above ``last_sequence``.

        Used during resync when the donor's snapshot is *older* than this
        cell's ledger head: restoring the snapshot rolls contract state
        back to the snapshot boundary, so the local entries past it must be
        dropped and re-executed from the donor's tail to keep ledger and
        state consistent.  Returns how many entries were removed.
        """
        keep = max(0, last_sequence + 1)
        removed = self._entries[keep:]
        if not removed:
            return 0
        del self._entries[keep:]
        for entry in removed:
            self._by_tx_id.pop(entry.tx_id, None)
        return len(removed)

    def sync_digest(self) -> list[tuple[int, str, str, Any]]:
        """Timing-independent view of the ledger for cross-cell comparison.

        Two cells are in sync exactly when their digests are equal: same
        entries, same order, same outcomes, same post-execution
        fingerprints.  Admission timestamps are deliberately left out — a
        recovered cell backfills entries long after its peers admitted
        them.
        """
        return [
            (
                entry.sequence,
                entry.tx_id,
                entry.status,
                "0x" + entry.fingerprint.hex() if entry.fingerprint is not None else None,
            )
            for entry in self._entries
        ]

    def statistics(self) -> dict[str, int]:
        """Counts by status."""
        counts = {"admitted": 0, "executed": 0, "rejected": 0}
        for entry in self._entries:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        counts["total"] = len(self._entries)
        return counts
