"""Per-destination coalescing of overlay messages into batch envelopes.

Every transaction a service cell admits must be forwarded to every other
consortium cell, and every forwarded execution produces a confirmation
flowing back (Fig. 7 steps 2-3).  Sent individually this is O(N * cells)
network messages for N simultaneous transactions — the dominant event count
in the paper's 20,000-transaction stress runs.  The :class:`BatchDispatcher`
instead queues outgoing forwards and confirmations per destination cell and
flushes each queue once per *scheduling quantum* as a single signed batch
envelope, so the same burst costs O(cells) messages per quantum.

The dispatcher is purely a transport optimization: per-transaction
authentication (client signatures on forwards, cell signatures on
confirmations) is preserved inside the batches, and the singleton opcodes
remain fully supported for deployments running with batching disabled
(the per-tx ablation that reproduces the paper's Table II numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..crypto.keys import Address
from ..messages.batch import ForwardBatch
from ..messages.envelope import Envelope, NonceFactory
from ..messages.opcodes import Opcode
from ..messages.signer import Signer
from ..sim.environment import Environment
from ..sim.metrics import MetricsRegistry
from ..sim.network import Network
from .receipts import Confirmation, ConfirmationBatch


@dataclass
class _DestinationQueue:
    """Messages accumulated for one destination cell during a quantum."""

    recipient: Address
    forwards: list[Envelope] = field(default_factory=list)
    confirmations: list[Confirmation] = field(default_factory=list)
    flush_pending: bool = False

    @property
    def empty(self) -> bool:
        return not self.forwards and not self.confirmations


class BatchDispatcher:
    """Coalesces a cell's outgoing overlay messages per destination."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        signer: Signer,
        nonces: NonceFactory,
        node_name: str,
        quantum: float,
        metrics: Optional[MetricsRegistry] = None,
        offline: Optional[Callable[[], bool]] = None,
    ) -> None:
        if quantum < 0:
            raise ValueError("the batch quantum cannot be negative")
        self.env = env
        self.network = network
        self.signer = signer
        self.nonces = nonces
        self.node_name = node_name
        self.quantum = quantum
        self.metrics = metrics
        #: Liveness gate checked at flush time: a cell that crashed between
        #: queueing and flushing must not emit the batch (a per-transaction
        #: sender would already have gone silent), so crash behaviour is
        #: identical with batching on and off.
        self.offline = offline
        self._queues: dict[str, _DestinationQueue] = {}
        #: Lifetime counters (exposed through the cell's statistics).
        self.batches_sent = 0
        self.items_coalesced = 0
        self.items_dropped = 0

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    def queue_forward(self, dst_node: str, recipient: Address, client_envelope: Envelope) -> None:
        """Queue one client transaction for forwarding to ``dst_node``."""
        queue = self._queue_for(dst_node, recipient)
        queue.forwards.append(client_envelope)
        self._arm_flush(dst_node, queue)

    def queue_confirmation(
        self, dst_node: str, recipient: Address, confirmation: Confirmation
    ) -> None:
        """Queue one signed confirmation owed to the service cell at ``dst_node``."""
        queue = self._queue_for(dst_node, recipient)
        queue.confirmations.append(confirmation)
        self._arm_flush(dst_node, queue)

    def _queue_for(self, dst_node: str, recipient: Address) -> _DestinationQueue:
        queue = self._queues.get(dst_node)
        if queue is None:
            queue = _DestinationQueue(recipient=recipient)
            self._queues[dst_node] = queue
        return queue

    def _arm_flush(self, dst_node: str, queue: _DestinationQueue) -> None:
        if queue.flush_pending:
            return
        queue.flush_pending = True
        self.env.timeout(self.quantum).add_callback(lambda _event: self._flush(dst_node))

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _flush(self, dst_node: str) -> None:
        queue = self._queues.get(dst_node)
        if queue is None:
            return
        queue.flush_pending = False
        if queue.empty:
            return
        forwards, queue.forwards = queue.forwards, []
        confirmations, queue.confirmations = queue.confirmations, []
        if self.offline is not None and self.offline():
            # The cell crashed while the batch was waiting for its quantum:
            # the queued items die with the process, like any unflushed
            # outbound buffer on a crashed machine.
            self.items_dropped += len(forwards) + len(confirmations)
            if self.metrics is not None:
                self.metrics.increment(f"{self.node_name}/batch_items_dropped")
            return
        if forwards:
            self._send(
                dst_node,
                queue.recipient,
                Opcode.TX_FORWARD_BATCH,
                ForwardBatch.of(forwards).to_data(),
                len(forwards),
            )
        if confirmations:
            self._send(
                dst_node,
                queue.recipient,
                Opcode.TX_CONFIRM_BATCH,
                ConfirmationBatch.of(confirmations).to_data(),
                len(confirmations),
            )

    def _send(
        self,
        dst_node: str,
        recipient: Address,
        operation: Opcode,
        data: dict[str, Any],
        item_count: int,
    ) -> None:
        envelope = Envelope.create(
            signer=self.signer,
            recipient=recipient,
            operation=operation,
            data=data,
            timestamp=self.env.now,
            nonce=self.nonces.next(),
        )
        self.network.send(self.node_name, dst_node, envelope, envelope.byte_size())
        self.batches_sent += 1
        self.items_coalesced += item_count
        if self.metrics is not None:
            self.metrics.increment(f"{self.node_name}/batches_sent")
            self.metrics.series(f"{self.node_name}/batch_size").add(item_count)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, Any]:
        """Lifetime batching counters for this cell."""
        return {
            "batches_sent": self.batches_sent,
            "items_coalesced": self.items_coalesced,
            "items_dropped": self.items_dropped,
            "mean_batch_size": (
                self.items_coalesced / self.batches_sent if self.batches_sent else 0.0
            ),
        }
