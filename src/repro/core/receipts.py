"""Confirmations and aggregated multi-signature receipts.

After executing a forwarded transaction, each consortium cell returns a
signed *confirmation* carrying the resulting contract fingerprint.  The
service cell verifies that the fingerprints agree with its own execution,
serializes the confirmations into an *aggregated receipt*, and returns it
to the client (Section III-D3).  The receipt is the client's cryptographic
proof that every cell executed the transaction identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..crypto.keys import Address
from ..encoding import canonical_json
from ..messages.signer import Signer, verify_signature


class ReceiptError(ValueError):
    """Raised for malformed or unverifiable receipts."""


@dataclass(frozen=True)
class Confirmation:
    """One cell's signed statement about an executed transaction."""

    cell: Address
    tx_id: str
    contract: str
    fingerprint_hex: str
    status: str                 # "executed" | "rejected"
    timestamp: float
    signature: bytes
    scheme: str = "ecdsa"
    error: Optional[str] = None

    @staticmethod
    def signing_body(
        cell: Address,
        tx_id: str,
        contract: str,
        fingerprint_hex: str,
        status: str,
        timestamp: float,
        error: Optional[str] = None,
    ) -> bytes:
        """Canonical bytes a cell signs when confirming a transaction."""
        return canonical_json.dump_bytes(
            {
                "cell": cell.hex(),
                "tx_id": tx_id,
                "contract": contract,
                "fingerprint": fingerprint_hex,
                "status": status,
                "timestamp": round(float(timestamp), 6),
                "error": error,
            }
        )

    @classmethod
    def create(
        cls,
        signer: Signer,
        tx_id: str,
        contract: str,
        fingerprint_hex: str,
        status: str,
        timestamp: float,
        error: Optional[str] = None,
    ) -> "Confirmation":
        """Build and sign a confirmation on behalf of ``signer``."""
        body = cls.signing_body(
            signer.address, tx_id, contract, fingerprint_hex, status, timestamp, error
        )
        return cls(
            cell=signer.address,
            tx_id=tx_id,
            contract=contract,
            fingerprint_hex=fingerprint_hex,
            status=status,
            timestamp=timestamp,
            signature=signer.sign(body),
            scheme=signer.scheme,
            error=error,
        )

    def verify(self) -> bool:
        """Check the cell's signature over the confirmation body."""
        body = self.signing_body(
            self.cell, self.tx_id, self.contract, self.fingerprint_hex,
            self.status, self.timestamp, self.error,
        )
        return verify_signature(self.scheme, self.cell, body, self.signature)

    def to_wire(self) -> dict[str, Any]:
        """JSON-serializable form (embedded in receipts and messages)."""
        return {
            "cell": self.cell.hex(),
            "tx_id": self.tx_id,
            "contract": self.contract,
            "fingerprint": self.fingerprint_hex,
            "status": self.status,
            "timestamp": round(float(self.timestamp), 6),
            "error": self.error,
            "signature": "0x" + self.signature.hex(),
            "scheme": self.scheme,
        }

    @classmethod
    def from_wire(cls, raw: dict[str, Any]) -> "Confirmation":
        """Parse a confirmation from its wire form."""
        try:
            return cls(
                cell=Address.from_hex(raw["cell"]),
                tx_id=raw["tx_id"],
                contract=raw["contract"],
                fingerprint_hex=raw["fingerprint"],
                status=raw["status"],
                timestamp=float(raw["timestamp"]),
                error=raw.get("error"),
                signature=bytes.fromhex(raw["signature"][2:]),
                scheme=raw.get("scheme", "ecdsa"),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ReceiptError(f"malformed confirmation: {exc}") from exc


@dataclass(frozen=True)
class ConfirmationBatch:
    """Confirmations for many transactions, shipped in one envelope.

    The batched pipeline coalesces every confirmation a cell owes the same
    service cell during one scheduling quantum into a single
    ``TX_CONFIRM_BATCH`` message.  Each inner confirmation keeps its own
    signature (it must later be embeddable in an aggregated receipt), so the
    receiver verifies items exactly as it would singleton confirmations.
    Executed and rejected confirmations ride together; the per-item
    ``status`` field carries the distinction the singleton path encodes in
    the ``TX_CONFIRM`` / ``TX_REJECT`` opcode split.
    """

    confirmations: tuple[Confirmation, ...]

    def __post_init__(self) -> None:
        if not self.confirmations:
            raise ReceiptError("a confirmation batch must carry at least one confirmation")

    def __len__(self) -> int:
        return len(self.confirmations)

    @classmethod
    def of(cls, confirmations: list[Confirmation]) -> "ConfirmationBatch":
        """Build a batch from already-signed confirmations."""
        return cls(confirmations=tuple(confirmations))

    def to_data(self) -> dict[str, Any]:
        """The data field D of a ``TX_CONFIRM_BATCH`` envelope."""
        return {"confirmations": [confirmation.to_wire() for confirmation in self.confirmations]}

    @classmethod
    def from_data(cls, raw: dict[str, Any]) -> "ConfirmationBatch":
        """Parse a batch from an envelope's data field."""
        items = raw.get("confirmations")
        if not isinstance(items, list) or not items:
            raise ReceiptError("confirmation batch carries no confirmation list")
        return cls(confirmations=tuple(Confirmation.from_wire(item) for item in items))


@dataclass
class AggregatedReceipt:
    """The multi-signature proof returned to the client."""

    tx_id: str
    contract: str
    method: str
    result: Any
    service_cell: Address
    fingerprint_hex: str
    cycle: int
    submitted_at: float
    completed_at: float
    confirmations: list[Confirmation] = field(default_factory=list)

    @property
    def latency(self) -> float:
        """Client-observed confirmation delay in simulated seconds."""
        return self.completed_at - self.submitted_at

    def cells(self) -> list[str]:
        """Hex addresses of every cell that signed the receipt."""
        return [confirmation.cell.hex() for confirmation in self.confirmations]

    def verify(self, expected_cells: Optional[list[Address]] = None) -> bool:
        """Verify every embedded confirmation (and optionally cell coverage).

        ``expected_cells`` lets a client require that specific consortium
        members signed; fingerprints must also all match the receipt's.
        """
        if not self.confirmations:
            return False
        for confirmation in self.confirmations:
            if not confirmation.verify():
                return False
            if confirmation.status != "executed":
                return False
            if confirmation.fingerprint_hex != self.fingerprint_hex:
                return False
            if confirmation.tx_id != self.tx_id:
                return False
        if expected_cells is not None:
            signed = {confirmation.cell for confirmation in self.confirmations}
            if not set(expected_cells).issubset(signed):
                return False
        return True

    def to_wire(self) -> dict[str, Any]:
        """JSON-serializable form carried by TX_RECEIPT messages."""
        return {
            "tx_id": self.tx_id,
            "contract": self.contract,
            "method": self.method,
            "result": self.result,
            "service_cell": self.service_cell.hex(),
            "fingerprint": self.fingerprint_hex,
            "cycle": self.cycle,
            "submitted_at": round(float(self.submitted_at), 6),
            "completed_at": round(float(self.completed_at), 6),
            "confirmations": [confirmation.to_wire() for confirmation in self.confirmations],
        }

    @classmethod
    def from_wire(cls, raw: dict[str, Any]) -> "AggregatedReceipt":
        """Parse a receipt from its wire form."""
        try:
            return cls(
                tx_id=raw["tx_id"],
                contract=raw["contract"],
                method=raw["method"],
                result=raw.get("result"),
                service_cell=Address.from_hex(raw["service_cell"]),
                fingerprint_hex=raw["fingerprint"],
                cycle=int(raw["cycle"]),
                submitted_at=float(raw["submitted_at"]),
                completed_at=float(raw["completed_at"]),
                confirmations=[
                    Confirmation.from_wire(item) for item in raw.get("confirmations", [])
                ],
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ReceiptError(f"malformed receipt: {exc}") from exc

    def byte_size(self) -> int:
        """Serialized size in bytes (feeds the Table II accounting)."""
        return len(canonical_json.dump_bytes(self.to_wire()))
