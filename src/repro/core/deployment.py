"""Deployment orchestration: build a whole Blockumulus system in one call.

A :class:`BlockumulusDeployment` wires together everything the evaluation
needs — the simulation environment, the network fabric, the simulated
Ethereum node with the :class:`SnapshotRegistry` anchor contract, M cells
with their system bContracts and the default community bContracts, and the
metrics registry — mirroring the paper's test setup of Section VI-B.

A deployment normally owns all of that infrastructure.  It can also be
built *inside* shared infrastructure by passing pre-existing ``env`` /
``network`` / ``metrics`` / ``eth_node`` objects: this is how
:class:`~repro.core.sharding.ShardedDeployment` places several independent
cell groups (one deployment each, namespaced through
:attr:`DeploymentConfig.node_namespace`) on one simulation clock, one
network fabric, and one anchor chain, so cross-group protocols and global
throughput measurements are meaningful.  When nothing is passed, behaviour
is exactly the historical single-group deployment.
"""

from __future__ import annotations

from typing import Any, Optional

from ..contracts.community import Ballot, DividendPool, FastMoney
from ..crypto.keys import Address, PrivateKey
from ..ethchain.chain import Blockchain, ChainConfig
from ..ethchain.contracts.snapshot_registry import SnapshotRegistry
from ..ethchain.gas import FeeSchedule
from ..ethchain.node import EthereumNode
from ..ethchain.provider import Web3Provider
from ..messages.signer import EcdsaSigner, Signer, SimulatedSigner
from ..sim.environment import Environment
from ..sim.events import Process
from ..sim.metrics import MetricsRegistry
from ..sim.network import Network
from ..sim.rng import SeedSequence
from .cell import BlockumulusCell
from .config import DeploymentConfig, SystemInvariants
from .subscription import PricingPolicy

#: Funding given to each cell's Ethereum account (wei) to pay report fees.
CELL_ETH_FUNDING_WEI = 1_000 * 10 ** 18


class BlockumulusDeployment:
    """A fully wired Blockumulus system inside one simulation environment.

    Construction is eager and synchronous: when ``__init__`` returns, the
    cells exist, are registered on the network, hold their system and
    (optionally) default community bContracts, and the non-standby cells'
    report-cycle lifecycles are started.  Nothing has *executed* yet —
    drive the simulation with :meth:`run` / :meth:`run_cycles`.

    Parameters
    ----------
    config:
        Operational knobs (consortium size, latency and service models,
        batching/lanes, standby provisioning, …).  Defaults to
        ``DeploymentConfig()``.
    env, network, metrics, eth_node:
        Optional shared infrastructure.  Any of them may be passed
        individually; whatever is omitted is created privately, exactly
        as before these parameters existed.  Callers that share a network
        across deployments must give each deployment a distinct
        ``config.node_namespace`` so cell node names cannot collide, and
        a distinct ``config.deployment_id`` so cell identities and the
        anchor-registry address differ.
    """

    def __init__(
        self,
        config: Optional[DeploymentConfig] = None,
        *,
        env: Optional[Environment] = None,
        network: Optional[Network] = None,
        metrics: Optional[MetricsRegistry] = None,
        eth_node: Optional[EthereumNode] = None,
    ) -> None:
        self.config = config or DeploymentConfig()
        self.seeds = SeedSequence(self.config.seed)
        self.env = env if env is not None else Environment()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.network = network if network is not None else self.build_network(
            self.env, self.seeds, self.config
        )

        # --- Simulated public Ethereum chain with the anchor contract -----
        # A shared chain hosts one SnapshotRegistry per deployment: the
        # registry address is derived from the deployment id, so groups of
        # a sharded deployment anchor into disjoint contracts.
        self.eth_node = eth_node if eth_node is not None else self.build_eth_node(
            self.env, self.seeds, self.config
        )
        self.eth = Web3Provider(self.eth_node)

        # --- Cell identities ----------------------------------------------
        # Standby cells are full consortium members in the (immutable)
        # system invariants, but boot excluded and offline; they join the
        # quorum later through the recovery bootstrap (dynamic membership).
        total_cells = self.config.consortium_size + self.config.standby_cells
        self.cell_signers: list[Signer] = [
            self._make_signer(f"{self.config.deployment_id}/cell-{index}")
            for index in range(total_cells)
        ]
        self.cell_eth_keys: list[PrivateKey] = [
            PrivateKey.from_seed(f"{self.config.deployment_id}/cell-eth-{index}")
            for index in range(total_cells)
        ]
        for key in self.cell_eth_keys:
            self.eth_node.chain.fund(key.address, CELL_ETH_FUNDING_WEI)

        self.invariants: SystemInvariants = self.config.make_invariants(
            [signer.address for signer in self.cell_signers], t0=self.env.now
        )

        registry_address = Blockchain.contract_address_for(
            self.cell_eth_keys[0].address, self.config.deployment_id
        )
        self.registry_contract = SnapshotRegistry(
            address=registry_address,
            deployment_id=self.config.deployment_id,
            cells=[key.address for key in self.cell_eth_keys],
            report_period=int(self.config.report_period),
            initial_timestamp=int(self.invariants.initial_timestamp),
        )
        self.eth_node.chain.deploy_contract(self.registry_contract)

        # --- Cells ----------------------------------------------------------
        self.cells: list[BlockumulusCell] = []
        self.standby_indices: list[int] = list(range(self.config.consortium_size, total_cells))
        for index in range(total_cells):
            cell = BlockumulusCell(
                env=self.env,
                index=index,
                node_name=self.config.cell_name(index),
                signer=self.cell_signers[index],
                eth_key=self.cell_eth_keys[index],
                invariants=self.invariants,
                network=self.network,
                rng=self.seeds.stream(f"cell-{index}"),
                service_model=self.config.service_model,
                metrics=self.metrics,
                eth_provider=self.eth,
                registry_contract=self.registry_contract,
                pricing=PricingPolicy(price_per_mbyte=self.config.price_per_mbyte),
                enforce_subscriptions=self.config.enforce_subscriptions,
                auto_report=self.config.auto_report,
                snapshots_retained=self.config.snapshots_retained,
                message_batching=self.config.message_batching,
                batch_quantum=self.config.batch_quantum,
                execution_lanes=self.config.execution_lanes,
                max_inflight=self.config.max_inflight,
            )
            self.cells.append(cell)

        # Cell-to-cell links use the intra-consortium latency model.
        peer_map = {cell.address: cell.node_name for cell in self.cells}
        for cell in self.cells:
            cell.set_peers(peer_map)
            for other in self.cells:
                if other is not cell:
                    self.network.set_link(
                        cell.node_name, other.node_name, self.config.cell_cell_latency
                    )

        if self.config.deploy_default_contracts:
            self.deploy_community_contract_instances(self._default_contracts())

        # Standby cells boot excluded in every cell's membership view (their
        # own view of other standbys included) and stay offline — they are
        # indistinguishable from crashed-and-excluded members until
        # :meth:`activate_standby` bootstraps them.
        standby_addresses = {self.cells[i].address for i in self.standby_indices}
        for cell in self.cells:
            for address in standby_addresses:
                if address != cell.address:
                    cell.consensus.exclude(address, cycle=0)
        self._started: set[int] = set()
        for index in self.standby_indices:
            standby = self.cells[index]
            standby.fault.crashed = True
            self.network.set_online(standby.node_name, False)
        for index, cell in enumerate(self.cells):
            if index not in self.standby_indices:
                cell.start()
                self._started.add(index)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def build_network(env: Environment, seeds: SeedSequence, config: DeploymentConfig) -> Network:
        """The canonical network fabric for one configuration.

        Shared single point of truth between a private deployment and a
        :class:`~repro.core.sharding.ShardedDeployment` building the
        fabric its groups will share — the wiring cannot drift apart.
        """
        return Network(
            env, seeds.stream("network"), default_latency=config.client_cell_latency
        )

    @staticmethod
    def build_eth_node(
        env: Environment, seeds: SeedSequence, config: DeploymentConfig
    ) -> EthereumNode:
        """The canonical simulated Ethereum node for one configuration."""
        chain_config = ChainConfig(
            target_block_interval=config.eth_block_interval,
            fee_schedule=FeeSchedule(),
        )
        return EthereumNode(env, seeds.stream("ethereum"), config=chain_config)

    def _make_signer(self, seed: str) -> Signer:
        if self.config.signature_scheme == "sim":
            return SimulatedSigner(seed)
        return EcdsaSigner.from_seed(seed)

    def make_client_signer(self, seed: str) -> Signer:
        """Create a client signer using the deployment's signature scheme."""
        return self._make_signer(seed)

    @staticmethod
    def _default_contracts() -> list[Any]:
        return [
            FastMoney(FastMoney.DEFAULT_NAME),
            Ballot(Ballot.DEFAULT_NAME),
            DividendPool(DividendPool.DEFAULT_NAME),
        ]

    def deploy_community_contract_instances(self, prototype_list: list[Any]) -> None:
        """Deploy identical bContract instances on every cell.

        One independent instance per cell is created from each prototype's
        class and constructor arguments, so cells never share mutable state
        (they only stay in sync by executing the same transactions).
        """
        for prototype in prototype_list:
            for cell in self.cells:
                clone = type(prototype)(
                    name=prototype.name, owner=prototype.owner, params=dict(prototype.params)
                )
                cell.deploy_contract(clone)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def consortium_size(self) -> int:
        """Number of cells M."""
        return len(self.cells)

    def cell(self, index: int) -> BlockumulusCell:
        """Cell by index."""
        return self.cells[index]

    def cell_by_address(self, address: Address) -> BlockumulusCell:
        """Cell by consortium address."""
        for cell in self.cells:
            if cell.address == address:
                return cell
        raise KeyError(f"no cell with address {address.hex()}")

    # ------------------------------------------------------------------
    # Dynamic membership (crash, exclusion, recovery, standby activation)
    # ------------------------------------------------------------------
    def crash_cell(self, index: int) -> None:
        """Crash a cell: it stops answering and drops all in-flight work."""
        cell = self.cells[index]
        cell.fault.crashed = True
        self.network.set_online(cell.node_name, False)

    def exclude_cell(self, index: int, cycle: int | None = None) -> None:
        """Exclude a cell from every peer's quorum view administratively.

        This is the scripted "mutual agreement" exclusion of the paper's
        Section V (as opposed to the organic path, where missed deadlines
        trigger a consortium-wide probe-and-vote).  Traffic keeps flowing:
        service cells simply stop forwarding to the excluded member.
        """
        subject = self.cells[index]
        for cell in self.cells:
            if cell is subject:
                continue
            at_cycle = cycle if cycle is not None else cell.consensus.cycle_of(self.env.now)
            cell.consensus.exclude(subject.address, at_cycle)

    def restore_cell(self, index: int) -> None:
        """Bring a crashed cell's process and network endpoint back up."""
        cell = self.cells[index]
        cell.fault.crashed = False
        self.network.set_online(cell.node_name, True)

    def _pick_donor(self, index: int) -> BlockumulusCell:
        """First live cell other than ``index`` (the resync donor)."""
        for donor_index, donor in enumerate(self.cells):
            if donor_index == index or donor.fault.crashed:
                continue
            if not self.network.is_online(donor.node_name):
                continue
            return donor
        raise ValueError("no live donor cell available for recovery")

    def recover_cell(self, index: int, donor_index: int | None = None) -> Process:
        """Restart a crashed cell and run the full resync + rejoin flow.

        Returns the recovery :class:`~repro.sim.events.Process`; run the
        environment until it completes and read its ``value`` for the
        :class:`~repro.core.recovery.RecoveryResult`.
        """
        cell = self.cells[index]
        self.restore_cell(index)
        donor = self.cells[donor_index] if donor_index is not None else self._pick_donor(index)
        return self.env.process(cell.recovery.resync(donor.address, donor.node_name))

    def activate_standby(self, index: int, donor_index: int | None = None) -> Process:
        """Boot a standby cell into the quorum by bootstrapping from a donor.

        The standby downloads the donor's latest snapshot and full ledger,
        replays it, and goes through the same rejoin handshake as a
        recovered crashed cell.  Returns the recovery process.
        """
        if index not in self.standby_indices:
            raise ValueError(f"cell {index} is not a standby cell")
        if index not in self._started:
            self.cells[index].start()
            self._started.add(index)
        return self.recover_cell(index, donor_index=donor_index)

    def run(self, until: float | None = None) -> None:
        """Advance the simulation (wrapper around ``Environment.run``)."""
        self.env.run(until=until)

    def run_cycles(self, cycles: int) -> None:
        """Run the simulation for an integer number of report cycles."""
        target = self.env.now + cycles * self.config.report_period + 1.0
        self.env.run(until=target)

    def anchored_report(self, cycle: int, cell_index: int) -> Optional[bytes]:
        """The fingerprint cell ``cell_index`` anchored for ``cycle`` (or None)."""
        return self.registry_contract.get_report(
            self.eth_node.chain.state, cycle, self.cell_eth_keys[cell_index].address
        )

    def statistics(self) -> dict[str, Any]:
        """Aggregated deployment statistics."""
        return {
            "consortium_size": self.consortium_size,
            "invariants": {
                "deployment_id": self.invariants.deployment_id,
                "report_period": self.invariants.report_period,
                "forwarding_deadline": self.invariants.forwarding_deadline,
            },
            "eth_height": self.eth_node.chain.height,
            "network_bytes": self.network.total_bytes(),
            "network_messages": self.network.total_messages(),
            "cells": [cell.statistics() for cell in self.cells],
        }
