"""Contract-state sharding across independent cell groups.

The paper's overlay executes every transaction on every cell, so adding
cells buys fault tolerance but not throughput.  This module adds the
missing horizontal dimension: a deployment-level **shard map** partitions
the contract namespace (and the CAS key namespace) across N independent
*cell groups*, each a full Blockumulus consortium of
``consortium_size`` cells with its own ledger, snapshots, recovery and
membership machinery — all sharing one simulation clock, one network
fabric, and one anchor chain.  Aggregate throughput then grows with the
group count, because each group only executes the transactions routed to
the contracts it owns.

Three pieces cooperate (see ``docs/SCALING.md`` for the full model):

* :class:`ShardMap` — the pure routing function: contract name -> owning
  group (stable hash, overridable by explicit pins), CAS blob digest ->
  owning group, and span detection over
  :class:`~repro.core.lanes.AccessFootprint` qualified keys.
* :class:`ShardedDeployment` — builds the groups (``shard_count == 1``
  constructs exactly one plain :class:`BlockumulusDeployment` from the
  untouched config, so the unsharded pipeline is preserved bit-for-bit),
  deploys each community contract on its owning group, and installs the
  cross-shard *shard directory* on every cell.
* the **shard digest** — per cycle, every group's cells agree on one
  per-group execution fingerprint
  (:meth:`~repro.core.ledger.TransactionLedger.cycle_execution_fingerprint`);
  the deployment-level digest chains those per-group fingerprints
  cycle by cycle, so an auditor holding only the per-group fingerprints
  can verify global consistency incrementally
  (:func:`chain_shard_digest`, consumed by
  :class:`~repro.audit.auditor.ShardedAuditor`).

Cross-shard transactions (the rare access plan spanning groups) run as a
client-coordinated two-phase commit over the groups' gateway cells —
see :mod:`repro.messages.xshard` and
:class:`~repro.client.sharded.ShardedClient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional

from ..contracts.system.cas import ContentAddressableStorage
from ..contracts.system.deployer import CommunityDeployer
from ..crypto.fingerprint import canonical_bytes
from ..crypto.hashing import fast_hash
from ..sim.environment import Environment
from ..sim.metrics import MetricsRegistry
from ..sim.rng import SeedSequence
from ..sim.events import Process
from .cell import BlockumulusCell
from .config import DeploymentConfig
from .deployment import BlockumulusDeployment
from .lanes import AccessFootprint


class ShardingError(Exception):
    """Raised for invalid shard routing or sharded-deployment operations."""


#: Contracts that exist in every group rather than being owned by one.
#: The CAS partitions its *key namespace* by blob digest instead; the
#: deployer runs on whichever group will own the contract being deployed.
NAMESPACE_SHARDED_CONTRACTS = frozenset(
    {ContentAddressableStorage.DEFAULT_NAME, CommunityDeployer.DEFAULT_NAME}
)

#: Index of each group's designated cross-shard gateway cell.  Exactly
#: one cell per group owns the 2PC state machine (and signs votes); its
#: siblings refuse XSHARD traffic, so contradictory per-cell verdicts for
#: one cross-shard transaction cannot exist.  Gateway failover on crash
#: is future work (see docs/SCALING.md limitations).
GATEWAY_CELL_INDEX = 0


def _stable_shard(token: str, shard_count: int) -> int:
    """Deterministic hash bucket of ``token`` (stable across runs/processes)."""
    digest = fast_hash(f"shard/{token}".encode())
    return int.from_bytes(digest[:8], "big") % shard_count


@dataclass
class ShardMap:
    """The deployment-level assignment of namespaces to cell groups.

    Routing is a pure function of this object, so every client and every
    cell holding the same map routes identically.  Contracts are assigned
    by a stable hash of their name unless explicitly *pinned* (which is
    how per-shard instances of one application, e.g. ``fastmoney@s2``,
    land on their intended groups); CAS blobs are assigned by a stable
    hash of their content digest.
    """

    shard_count: int
    pins: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ShardingError("a shard map needs at least one group")
        for name, group in self.pins.items():
            self._check_group(group, name)

    def _check_group(self, group: int, what: str) -> None:
        if not 0 <= group < self.shard_count:
            raise ShardingError(
                f"group {group} for {what!r} is out of range [0, {self.shard_count})"
            )

    def pin(self, contract: str, group: int) -> None:
        """Explicitly assign ``contract`` to ``group`` (overrides the hash)."""
        if not contract:
            raise ShardingError("cannot pin an unnamed contract")
        self._check_group(group, contract)
        self.pins[contract] = group

    def shard_of_contract(self, contract: str) -> int:
        """Owning group of a contract name (pin first, stable hash second)."""
        if not isinstance(contract, str) or not contract:
            raise ShardingError("contract name must be a non-empty string")
        pinned = self.pins.get(contract)
        if pinned is not None:
            return pinned
        return _stable_shard(f"contract/{contract}", self.shard_count)

    def shard_of_cas_key(self, digest: str) -> int:
        """Owning group of a CAS blob digest (the CAS namespace partition)."""
        if not isinstance(digest, str) or not digest:
            raise ShardingError("CAS digest must be a non-empty string")
        return _stable_shard(f"cas/{digest.lower()}", self.shard_count)

    def route_call(self, contract: str, method: str, args: dict[str, Any]) -> int:
        """Owning group of one ``(contract, method, args)`` invocation.

        Most calls route by contract name.  The two namespace-sharded
        system contracts route by the namespace entry they touch: CAS
        calls by blob digest (computed client-side for ``put``), deployer
        calls by the *name of the contract being deployed* — so a freshly
        deployed community contract is registered on the group that will
        own its traffic.
        """
        if contract == ContentAddressableStorage.DEFAULT_NAME:
            if method == "put":
                content_hex = str(args.get("content_hex", ""))
                text = content_hex[2:] if content_hex.startswith("0x") else content_hex
                try:
                    content = bytes.fromhex(text)
                except ValueError as exc:
                    raise ShardingError("cannot route a CAS put of non-hex content") from exc
                return self.shard_of_cas_key(ContentAddressableStorage.content_hash(content))
            digest = args.get("digest")
            if isinstance(digest, str) and digest:
                return self.shard_of_cas_key(digest)
            raise ShardingError(f"cannot route CAS method {method!r} without a digest")
        if contract == CommunityDeployer.DEFAULT_NAME:
            target = args.get("name")
            if isinstance(target, str) and target:
                return self.shard_of_contract(target)
            raise ShardingError("cannot route a deployment without a contract name")
        return self.shard_of_contract(contract)

    def groups_for_footprint(self, footprint: AccessFootprint) -> Optional[frozenset[int]]:
        """Groups an access footprint touches (None when undecidable).

        This is the pre-execution span check of the cross-shard protocol:
        every contract-qualified key of the footprint maps to its
        contract's owning group.  An *exclusive* footprint carries no key
        information, so span detection is undecidable (``None``) and the
        caller must fall back to routing by contract name alone.
        """
        if footprint.exclusive:
            return None
        contracts = {
            contract
            for keys in (footprint.reads, footprint.writes, footprint.deltas)
            for contract, _key in keys
        }
        return frozenset(self.shard_of_contract(contract) for contract in contracts)

    def to_data(self) -> dict[str, Any]:
        """JSON-serializable form (documentation and audit reports)."""
        return {"shard_count": self.shard_count, "pins": dict(sorted(self.pins.items()))}


@dataclass
class CellGroup:
    """One shard: a full Blockumulus consortium owning part of the namespace."""

    index: int
    deployment: BlockumulusDeployment

    @property
    def cells(self) -> list[BlockumulusCell]:
        """The group's consortium cells."""
        return self.deployment.cells

    @property
    def gateway(self) -> BlockumulusCell:
        """The group's designated cross-shard gateway cell."""
        return self.deployment.cells[GATEWAY_CELL_INDEX]

    def live_cells(self) -> list[BlockumulusCell]:
        """Cells currently running (not crashed)."""
        return [cell for cell in self.deployment.cells if not cell.fault.crashed]

    def cycle_execution_fingerprint(self, cycle: int) -> str:
        """The group's agreed per-cycle execution fingerprint.

        Every live cell of the group must report the same
        :meth:`~repro.core.ledger.TransactionLedger.cycle_execution_fingerprint`;
        divergence means the group itself is inconsistent, which the
        within-group confirmation protocol should have caught — so it is
        surfaced as an error rather than papered over.
        """
        fingerprints = {
            cell.ledger.cycle_execution_fingerprint(cycle) for cell in self.live_cells()
        }
        if len(fingerprints) != 1:
            raise ShardingError(
                f"group {self.index} cells disagree on cycle {cycle}: "
                f"{sorted(fingerprints)}"
            )
        return fingerprints.pop()


def chain_shard_digest(
    deployment_id: str,
    shard_count: int,
    per_cycle_fingerprints: Iterable[Iterable[str]],
) -> str:
    """Chain per-group execution fingerprints into one deployment digest.

    ``per_cycle_fingerprints`` yields, for each report cycle starting at
    cycle 0, the ordered list of per-group fingerprints
    ``[group 0, group 1, …]``.  The digest is a hash chain

    ``d_{-1} = H(genesis material)``;
    ``d_c = H({prev: d_{c-1}, cycle: c, groups: [fp_0 … fp_{N-1}]})``

    so it commits to every group's whole execution history in order.  It
    is a pure function of the fingerprints — an auditor who has verified
    each group's fingerprints independently can recompute it without any
    further cell interaction (:class:`~repro.audit.auditor.ShardedAuditor`
    does exactly that).
    """
    digest = "0x" + fast_hash(
        canonical_bytes(
            {"kind": "shard-digest", "deployment": deployment_id, "shards": shard_count}
        )
    ).hex()
    for cycle, fingerprints in enumerate(per_cycle_fingerprints):
        groups = list(fingerprints)
        if len(groups) != shard_count:
            raise ShardingError(
                f"cycle {cycle} carries {len(groups)} group fingerprints, "
                f"expected {shard_count}"
            )
        digest = "0x" + fast_hash(
            canonical_bytes({"prev": digest, "cycle": cycle, "groups": groups})
        ).hex()
    return digest


class ShardedDeployment:
    """N independent cell groups sharing one simulation, network, and chain.

    With ``config.shard_count == 1`` this constructs exactly one
    :class:`BlockumulusDeployment` from the **untouched** config — same
    deployment id, node names, seeds, and RNG draws — so the unsharded
    pipeline is preserved bit-for-bit and every existing experiment can
    be re-run through the sharded front door.

    With ``shard_count > 1`` each group ``g`` gets a derived config
    (``deployment_id`` suffixed ``/g<g>``, node namespace ``g<g>/``,
    seed offset by ``g``) and is built inside the shared environment /
    network / metrics / anchor chain.  The default community contracts
    are then deployed once each, on their hash-assigned owning groups,
    and every cell receives the shard directory that enables its
    cross-shard gateway role.
    """

    def __init__(self, config: Optional[DeploymentConfig] = None) -> None:
        self.config = config or DeploymentConfig()
        self.shard_map = ShardMap(self.config.shard_count)
        self.seeds = SeedSequence(self.config.seed)
        #: Community contracts deployed through this front door: name -> group.
        self.contract_locations: dict[str, int] = {}

        if self.config.shard_count == 1:
            primary = BlockumulusDeployment(self.config)
            self.groups: list[CellGroup] = [CellGroup(0, primary)]
            self.env = primary.env
            self.network = primary.network
            self.metrics = primary.metrics
            self.eth_node = primary.eth_node
            if self.config.deploy_default_contracts:
                for prototype in BlockumulusDeployment._default_contracts():
                    self.contract_locations[prototype.name] = 0
                    self.shard_map.pin(prototype.name, 0)
        else:
            self.env = Environment()
            self.metrics = MetricsRegistry()
            self.network = BlockumulusDeployment.build_network(
                self.env, self.seeds, self.config
            )
            self.eth_node = BlockumulusDeployment.build_eth_node(
                self.env, self.seeds, self.config
            )
            self.groups = []
            for index in range(self.config.shard_count):
                group_config = replace(
                    self.config,
                    deployment_id=f"{self.config.deployment_id}/g{index}",
                    node_namespace=f"g{index}/",
                    seed=self.config.seed + index,
                    deploy_default_contracts=False,
                )
                deployment = BlockumulusDeployment(
                    group_config,
                    env=self.env,
                    network=self.network,
                    metrics=self.metrics,
                    eth_node=self.eth_node,
                )
                self.groups.append(CellGroup(index, deployment))
            if self.config.deploy_default_contracts:
                self.deploy_contract_instances(BlockumulusDeployment._default_contracts())

        # The shard directory lists only each group's designated gateway:
        # decision certificates must carry votes from *the* gateway, and
        # sibling cells refuse XSHARD traffic altogether.
        directory = {
            group.index: frozenset({group.gateway.address}) for group in self.groups
        }
        for group in self.groups:
            for cell in group.cells:
                cell.install_shard_directory(
                    group.index, directory, gateway=(cell is group.gateway)
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of cell groups N."""
        return len(self.groups)

    def group(self, index: int) -> CellGroup:
        """Cell group by index."""
        try:
            return self.groups[index]
        except IndexError:
            raise ShardingError(f"no cell group with index {index}") from None

    def group_of_contract(self, contract: str) -> CellGroup:
        """The group that owns ``contract``; unknown contracts are an error.

        Namespace-sharded system contracts (CAS, deployer) exist on every
        group and route per call, not per contract — asking for a single
        owning group for them is also an error (use
        :meth:`ShardMap.route_call`).
        """
        if contract in NAMESPACE_SHARDED_CONTRACTS:
            raise ShardingError(
                f"{contract!r} is namespace-sharded; route individual calls instead"
            )
        group = self.contract_locations.get(contract)
        if group is None:
            raise ShardingError(f"no contract named {contract!r} is deployed in any group")
        return self.groups[group]

    # ------------------------------------------------------------------
    # Contract deployment
    # ------------------------------------------------------------------
    def deploy_contract_instances(
        self, prototype_list: list[Any], group: Optional[int] = None
    ) -> dict[str, int]:
        """Deploy each prototype on its owning group (all of that group's cells).

        ``group`` pins every prototype to an explicit group instead of the
        shard map's hash assignment — how per-shard application instances
        (e.g. one FastMoney per group) are placed.  Returns the name ->
        group placement that was applied.
        """
        placements: dict[str, int] = {}
        for prototype in prototype_list:
            target = group if group is not None else self.shard_map.shard_of_contract(
                prototype.name
            )
            self.shard_map.pin(prototype.name, target)
            self.groups[target].deployment.deploy_community_contract_instances([prototype])
            self.contract_locations[prototype.name] = target
            placements[prototype.name] = target
        return placements

    # ------------------------------------------------------------------
    # Dynamic membership (per-group crash / recover / standby surface)
    # ------------------------------------------------------------------
    # Thin, validated delegates to the owning group's BlockumulusDeployment,
    # so fault injectors (repro.chaos) and tests can target "cell c of
    # group g" without reaching into deployment internals — and so a bad
    # target fails loudly through ShardingError instead of an IndexError.

    def crash_cell(self, group: int, cell: int) -> None:
        """Crash cell ``cell`` of group ``group`` (drops in-flight work)."""
        self._group_cell(group, cell)
        self.group(group).deployment.crash_cell(cell)

    def exclude_cell(self, group: int, cell: int, cycle: Optional[int] = None) -> None:
        """Scripted consortium exclusion of one group member (Section V)."""
        self._group_cell(group, cell)
        self.group(group).deployment.exclude_cell(cell, cycle=cycle)

    def restore_cell(self, group: int, cell: int) -> None:
        """Bring a crashed cell's process and network endpoint back up."""
        self._group_cell(group, cell)
        self.group(group).deployment.restore_cell(cell)

    def recover_cell(self, group: int, cell: int, donor_index: Optional[int] = None) -> Process:
        """Run the full resync+rejoin recovery of one group member.

        Returns the recovery :class:`~repro.sim.events.Process` (as the
        underlying :meth:`BlockumulusDeployment.recover_cell` does).
        """
        self._group_cell(group, cell)
        return self.group(group).deployment.recover_cell(cell, donor_index=donor_index)

    def activate_standby(self, group: int, cell: int, donor_index: Optional[int] = None) -> Process:
        """Bootstrap a provisioned standby cell of one group into its quorum."""
        self._group_cell(group, cell)
        return self.group(group).deployment.activate_standby(cell, donor_index=donor_index)

    def _group_cell(self, group: int, cell: int) -> BlockumulusCell:
        """The addressed cell, or a ShardingError naming the bad coordinate."""
        deployment = self.group(group).deployment
        if not 0 <= cell < len(deployment.cells):
            raise ShardingError(
                f"group {group} has no cell {cell} "
                f"(cells are [0, {len(deployment.cells)}))"
            )
        return deployment.cells[cell]

    # ------------------------------------------------------------------
    # Simulation driving
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Advance the shared simulation clock (all groups together)."""
        self.env.run(until=until)

    def run_cycles(self, cycles: int) -> None:
        """Run all groups for an integer number of report cycles."""
        target = self.env.now + cycles * self.config.report_period + 1.0
        self.env.run(until=target)

    # ------------------------------------------------------------------
    # Global consistency (the shard digest)
    # ------------------------------------------------------------------
    def group_cycle_fingerprints(self, cycle: int) -> list[str]:
        """Per-group agreed execution fingerprints for one cycle, in order."""
        return [group.cycle_execution_fingerprint(cycle) for group in self.groups]

    def shard_digest(self, through_cycle: int) -> str:
        """The chained deployment digest over cycles ``0..through_cycle``.

        This is the global-consistency commitment: it covers every
        group's per-cycle execution fingerprints in group order, chained
        cycle by cycle (:func:`chain_shard_digest`).
        """
        if through_cycle < 0:
            raise ShardingError("the shard digest needs at least cycle 0")
        return chain_shard_digest(
            self.config.deployment_id,
            self.shard_count,
            (self.group_cycle_fingerprints(cycle) for cycle in range(through_cycle + 1)),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, Any]:
        """Aggregated deployment statistics, per group plus global totals."""
        return {
            "shard_count": self.shard_count,
            "shard_map": self.shard_map.to_data(),
            "contract_locations": dict(sorted(self.contract_locations.items())),
            "network_bytes": self.network.total_bytes(),
            "network_messages": self.network.total_messages(),
            "groups": [group.deployment.statistics() for group in self.groups],
        }
