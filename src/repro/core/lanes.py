"""Conflict-aware parallel intra-cycle execution (the lane engine).

The paper serializes every transaction of a report cycle through the
mutex-protected storage of Section V-A.  Most transactions of a real
workload touch disjoint contract state, so this module recovers the lost
parallelism without giving up the determinism the cross-cell confirmation
protocol depends on:

* each transaction's **access footprint** — the contract-qualified keys it
  reads, writes, or commutatively increments — is derived *before*
  execution from the target bContract's declared
  :meth:`~repro.contracts.interface.BContract.access_plan` (contracts
  without a plan fall back to a globally exclusive footprint, which is
  always safe);
* footprints that conflict (write/any or delta/read overlap) are never in
  flight at the same time, and conflicting transactions always start in
  canonical ledger order;
* non-conflicting transactions run concurrently on up to ``lanes``
  execution lanes — as simulated concurrency inside a cell (through
  :class:`~repro.sim.resources.ConflictGate`) and as real thread-pool
  concurrency in the offline :meth:`LaneSchedule.execute` drain;
* results are committed to the ledger in canonical sequence order, so
  ledgers, receipts, and per-cycle execution fingerprints are bit-identical
  to the serial schedule.

Why this is deterministic: non-conflicting transactions *commute* — their
write sets are disjoint from each other's read/write/delta sets, so each
one reads exactly the values it would have read serially, and the store's
XOR fingerprint is order-independent for disjoint final contents.  Pure
increments of a shared key are the one sanctioned read-modify-write
overlap: their sum is order-independent, and any method whose *result*
exposes the running value must declare the key as a write instead.
Conflicting transactions never overlap; the *offline*
:class:`LaneSchedule` additionally runs them in strict canonical
(sequence) order, making its replay exactly serial-equivalent.  The
*online* in-cell scheduler orders conflicting grants canonically among
queued waiters, but — like the legacy serial path, where execution order
is arrival order — it cannot see a conflicting transaction that has not
arrived yet.  A workload whose conflicting outcomes are order-sensitive
(e.g. racing an account to insolvency) is therefore timing-dependent
per cell under *every* schedule, serial included; the cross-cell
fingerprint comparison is what catches any divergence, exactly as in the
paper.  For workloads whose conflicting outcomes commute (what the
access-plan discipline is designed to encourage), ledgers, receipts, and
fingerprints are identical across all lane counts and the serial
schedule — the differential suite asserts this configuration matrix.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from ..contracts.registry import ContractRegistry
from ..contracts.state_store import AccessSet, access_sets_conflict
from ..sim.environment import Environment
from ..sim.events import Event
from ..sim.resources import ConflictGate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutionOutcome, TransactionExecutor
    from .ledger import LedgerEntry, TransactionLedger


class LaneError(Exception):
    """Raised for invalid lane-engine operations."""


#: A store key qualified by the contract that owns it.
QualifiedKey = tuple[str, str]


@dataclass(frozen=True)
class AccessFootprint:
    """A transaction's contract-qualified access sets, known pre-execution.

    ``exclusive`` footprints (unknown contracts, undeclared access plans,
    malformed calls) conflict with everything, which degrades those
    transactions to the serial schedule instead of risking a divergent
    interleaving.
    """

    reads: frozenset[QualifiedKey] = frozenset()
    writes: frozenset[QualifiedKey] = frozenset()
    deltas: frozenset[QualifiedKey] = frozenset()
    exclusive: bool = False

    @classmethod
    def exclusive_footprint(cls) -> "AccessFootprint":
        """The footprint that serializes against every other transaction."""
        return cls(exclusive=True)

    @classmethod
    def from_access_set(cls, contract: str, access: AccessSet) -> "AccessFootprint":
        """Qualify a contract-local access set with the contract's name."""
        return cls(
            reads=frozenset((contract, key) for key in access.reads),
            writes=frozenset((contract, key) for key in access.writes),
            deltas=frozenset((contract, key) for key in access.deltas),
        )

    def conflicts_with(self, other: "AccessFootprint") -> bool:
        """Whether the two transactions must not run concurrently."""
        if self.exclusive or other.exclusive:
            return True
        return access_sets_conflict(
            self.reads, self.writes, self.deltas,
            other.reads, other.writes, other.deltas,
        )


def compatible(a: AccessFootprint, b: AccessFootprint) -> bool:
    """Gate predicate: tokens may hold lanes together iff they don't conflict."""
    return not a.conflicts_with(b)


def footprint_for_entry(entry: "LedgerEntry", registry: ContractRegistry) -> AccessFootprint:
    """Derive the pre-execution footprint of one admitted ledger entry.

    Never raises: anything that stops a precise plan from being built
    (malformed payload, unknown contract, a plan method that errors)
    yields the exclusive footprint instead.
    """
    from .executor import TransactionExecutor

    try:
        contract_name, method, args = TransactionExecutor.parse_call(entry)
        contract = registry.get(contract_name)
        plan = contract.access_plan(
            method, args, sender=entry.envelope.sender.hex(), tx_id=entry.tx_id
        )
    except Exception:  # noqa: BLE001 - exclusive is the safe fallback
        return AccessFootprint.exclusive_footprint()
    if plan is None:
        return AccessFootprint.exclusive_footprint()
    return AccessFootprint.from_access_set(contract_name, plan)


# ----------------------------------------------------------------------
# Deterministic wave partition (the planning half of the engine)
# ----------------------------------------------------------------------
def partition_footprints(
    footprints: list[AccessFootprint], lanes: int
) -> list[list[int]]:
    """Partition transaction indices into parallel *waves*.

    Transactions are considered in canonical (index) order.  Each one is
    placed in the earliest wave that (a) is strictly later than every wave
    holding a transaction it conflicts with — conflicting transactions
    never share a wave and never lose their relative order — and (b) still
    has a free lane (waves are at most ``lanes`` wide).  Capacity overflow
    only ever pushes a transaction to a *later* wave, so rule (a) is
    preserved.  The partition is a pure function of the footprints, hence
    identical on every cell that holds the same ledger segment.

    Classic list scheduling: instead of scanning all earlier transactions
    (quadratic in segment length — ruinous for 20k-tx cycles), per-key
    maps remember the last wave that read, wrote, or delta'd each key, so
    planning costs O(transactions × keys-per-transaction).
    """
    if lanes < 1:
        raise LaneError("at least one execution lane is required")
    waves: list[list[int]] = []
    last_read: dict[QualifiedKey, int] = {}
    last_write: dict[QualifiedKey, int] = {}
    last_delta: dict[QualifiedKey, int] = {}
    last_exclusive = -1      # wave of the most recent exclusive transaction
    last_any = -1            # latest wave assigned to any transaction so far
    for index, footprint in enumerate(footprints):
        earliest = last_exclusive + 1
        if footprint.exclusive:
            earliest = max(earliest, last_any + 1)
        else:
            for key in footprint.reads:
                earliest = max(
                    earliest, last_write.get(key, -1) + 1, last_delta.get(key, -1) + 1
                )
            for key in footprint.writes:
                earliest = max(
                    earliest,
                    last_read.get(key, -1) + 1,
                    last_write.get(key, -1) + 1,
                    last_delta.get(key, -1) + 1,
                )
            for key in footprint.deltas:
                earliest = max(
                    earliest, last_read.get(key, -1) + 1, last_write.get(key, -1) + 1
                )
        wave = earliest
        while wave < len(waves) and len(waves[wave]) >= lanes:
            wave += 1
        while wave >= len(waves):
            waves.append([])
        waves[wave].append(index)
        last_any = max(last_any, wave)
        if footprint.exclusive:
            last_exclusive = max(last_exclusive, wave)
        else:
            for key in footprint.reads:
                last_read[key] = max(last_read.get(key, -1), wave)
            for key in footprint.writes:
                last_write[key] = max(last_write.get(key, -1), wave)
            for key in footprint.deltas:
                last_delta[key] = max(last_delta.get(key, -1), wave)
    return waves


@dataclass
class LaneSchedule:
    """A planned parallel execution of one ledger segment.

    ``waves`` holds ledger entries grouped into parallel waves; within a
    wave entries are in canonical sequence order and mutually
    non-conflicting.  :meth:`execute` drains the schedule (optionally on a
    real thread pool) and commits results in canonical ledger order.
    """

    entries: list["LedgerEntry"]
    footprints: list[AccessFootprint]
    lanes: int
    waves: list[list[int]] = field(default_factory=list)

    @classmethod
    def plan(
        cls,
        entries: Iterable["LedgerEntry"],
        registry: ContractRegistry,
        lanes: int,
    ) -> "LaneSchedule":
        """Build the deterministic wave partition for ``entries``."""
        ordered = sorted(entries, key=lambda entry: entry.sequence)
        footprints = [footprint_for_entry(entry, registry) for entry in ordered]
        schedule = cls(entries=ordered, footprints=footprints, lanes=lanes)
        schedule.waves = partition_footprints(footprints, lanes)
        return schedule

    @property
    def wave_count(self) -> int:
        """Number of sequential waves in the schedule."""
        return len(self.waves)

    @property
    def max_wave_width(self) -> int:
        """Widest wave (the achieved intra-cycle parallelism)."""
        return max((len(wave) for wave in self.waves), default=0)

    @property
    def exclusive_count(self) -> int:
        """Transactions that fell back to the exclusive footprint."""
        return sum(1 for footprint in self.footprints if footprint.exclusive)

    def conflict_pairs(self) -> int:
        """Number of conflicting transaction pairs (diagnostic only, O(n²))."""
        count = 0
        for i in range(len(self.footprints)):
            for j in range(i + 1, len(self.footprints)):
                if self.footprints[i].conflicts_with(self.footprints[j]):
                    count += 1
        return count

    def replay_order(self) -> list["LedgerEntry"]:
        """Entries in wave-major order — a serializable schedule.

        Replaying the entries serially in this order reproduces the serial
        store fingerprint: conflicting entries keep canonical order across
        waves, and entries reordered by capacity overflow are
        non-conflicting, hence commute.
        """
        return [self.entries[index] for wave in self.waves for index in wave]

    def execute(
        self,
        executor: "TransactionExecutor",
        ledger: Optional["TransactionLedger"] = None,
        threads: Optional[int] = None,
    ) -> list["ExecutionOutcome"]:
        """Drain the schedule and return outcomes in canonical order.

        With ``threads`` set, each wave's entries are executed on a thread
        pool, grouped by target contract — entries of the *same* contract
        stay on one thread because the store journal is not reentrant, so
        the thread pool parallelizes across contracts (and, under
        CPython's GIL, mainly wins when contract execution blocks).  The
        simulated lane mode inside :class:`~repro.core.cell.BlockumulusCell`
        is what models intra-contract lane parallelism deterministically.

        Ledger marks (when a ``ledger`` is supplied) are applied strictly
        in canonical sequence order after all waves have drained — the
        "commit in ledger order" half of the determinism argument.
        """
        outcomes: dict[int, "ExecutionOutcome"] = {}

        def run_group(group: list["LedgerEntry"]) -> list[tuple[int, Any]]:
            return [(entry.sequence, executor.execute_safely(entry)) for entry in group]

        for wave in self.waves:
            wave_entries = [self.entries[index] for index in wave]
            groups: dict[str, list["LedgerEntry"]] = {}
            for entry in wave_entries:
                target = str(entry.envelope.data.get("contract", ""))
                groups.setdefault(target, []).append(entry)
            if threads and threads > 1 and len(groups) > 1:
                with ThreadPoolExecutor(max_workers=threads) as pool:
                    for result in pool.map(run_group, groups.values()):
                        for sequence, outcome in result:
                            outcomes[sequence] = outcome
            else:
                for group in groups.values():
                    for sequence, outcome in run_group(group):
                        outcomes[sequence] = outcome

        ordered = [outcomes[entry.sequence] for entry in sorted(
            self.entries, key=lambda entry: entry.sequence
        )]
        if ledger is not None:
            for outcome in ordered:
                if outcome.ok:
                    ledger.mark_executed(
                        outcome.tx_id,
                        outcome.contract,
                        outcome.result,
                        outcome.fingerprint,
                        access=outcome.access,
                    )
                else:
                    ledger.mark_rejected(
                        outcome.tx_id, outcome.contract, outcome.error or "",
                        access=outcome.access,
                    )
        return ordered

    def statistics(self) -> dict[str, Any]:
        """Planning statistics for benchmarks and cell introspection."""
        return {
            "transactions": len(self.entries),
            "lanes": self.lanes,
            "waves": self.wave_count,
            "max_wave_width": self.max_wave_width,
            "exclusive_fallbacks": self.exclusive_count,
        }


# ----------------------------------------------------------------------
# Simulated lane scheduler (the in-cell, online half of the engine)
# ----------------------------------------------------------------------
class LaneScheduler:
    """Online conflict-aware lane admission for one simulated cell.

    Transactions request a lane as they are ready to execute; the
    underlying :class:`~repro.sim.resources.ConflictGate` grants at most
    ``lanes`` slots, never lets two conflicting footprints hold slots
    together, and biases conflicting grants toward canonical ledger order
    (waiters are kept sorted by sequence).
    """

    def __init__(self, env: Environment, lanes: int, registry: ContractRegistry,
                 name: str = "lanes") -> None:
        if lanes < 1:
            raise LaneError("at least one execution lane is required")
        self.lanes = lanes
        self.registry = registry
        self._tokens: dict[int, tuple[int, AccessFootprint]] = {}
        self._lane_of: dict[int, int] = {}
        #: Lane indices not currently held (lowest index granted first).
        self._free_lanes = list(range(lanes))
        self.executions = 0
        self.exclusive_fallbacks = 0
        self.gate = ConflictGate(
            env,
            capacity=lanes,
            compatible=lambda a, b: compatible(a[1], b[1]),
            name=name,
            order_key=lambda token: token[0],
        )

    def acquire(self, entry: "LedgerEntry") -> Event:
        """Request a lane for ``entry``; the event fires on grant."""
        footprint = footprint_for_entry(entry, self.registry)
        if footprint.exclusive:
            self.exclusive_fallbacks += 1
        token = (entry.sequence, footprint)
        if entry.sequence in self._tokens:
            raise LaneError(f"entry {entry.sequence} already holds or awaits a lane")
        self._tokens[entry.sequence] = token
        return self.gate.request(token)

    def granted(self, entry: "LedgerEntry") -> int:
        """Record the grant (after the acquire event fired); returns the lane.

        Lanes are allocated from the free set, so a lane index uniquely
        identifies one of the concurrently running invocations.
        """
        if not self._free_lanes:
            raise LaneError("lane granted with no free lane (release mismatch)")
        lane = self._free_lanes.pop(0)
        self._lane_of[entry.sequence] = lane
        self.executions += 1
        return lane

    def lane_of(self, entry: "LedgerEntry") -> Optional[int]:
        """The lane index granted to ``entry`` (informational)."""
        return self._lane_of.get(entry.sequence)

    def release(self, entry: "LedgerEntry") -> None:
        """Give the lane back after execution (or on failure paths)."""
        token = self._tokens.pop(entry.sequence, None)
        if token is None:
            return
        lane = self._lane_of.pop(entry.sequence, None)
        if lane is not None:
            self._free_lanes.append(lane)
            self._free_lanes.sort()
        self.gate.release(token)

    def statistics(self) -> dict[str, Any]:
        """Operational lane/conflict counters for cell introspection."""
        return {
            "lanes": self.lanes,
            "executions": self.executions,
            "exclusive_fallbacks": self.exclusive_fallbacks,
            "conflict_deferrals": self.gate.conflict_deferrals,
            "capacity_deferrals": self.gate.capacity_deferrals,
            "peak_parallel": self.gate.peak_in_use,
            "peak_queue": self.gate.peak_queue_length,
            "in_flight": self.gate.in_use,
        }
