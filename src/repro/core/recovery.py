"""Crash recovery and dynamic consortium membership (Section V).

The paper's security analysis argues that the overlay consensus *survives*
cell crashes, censorship, and tampering; this module closes the loop by
letting the consortium actually *recover*:

* :class:`MembershipManager` — the per-cell voting half.  A cell whose
  miss counter crossed the exclusion threshold broadcasts an exclusion
  proposal; every live peer probes the suspect with a PING and answers
  with a signed vote; a strict majority of agreeing votes is committed
  consortium-wide as a :class:`~repro.messages.membership.MembershipUpdate`
  so every cell's view of the active quorum converges.  The same manager
  answers rejoin requests by checking the rejoiner's claimed state
  fingerprint against its own contract data.

* :class:`RecoveryCoordinator` — the resync half, run by a rejoining (or
  brand-new standby) cell.  It downloads the donor's latest anchored
  snapshot and post-snapshot ledger tail in one ``CELL_SYNC`` exchange,
  restores contract state, backfills the ledger entries the snapshot
  already covers, replays the remainder through its own executor while
  matching the donor's recorded per-entry execution fingerprints, adopts
  the snapshot into its snapshot engine, requests readmission with the
  quorum handshake above, and — because state fingerprints cannot see
  transactions peers *admitted* but had not executed when they voted —
  runs a post-readmit delta backfill that fetches exactly that gap
  before the cell resumes anchoring.  The result is a cell whose ledger,
  contract state, and future snapshot fingerprints are indistinguishable
  from a cell that never crashed, even when the consortium kept serving
  full-rate traffic throughout the recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional, TYPE_CHECKING

from ..contracts.context import BContractError
from ..crypto.fingerprint import snapshot_fingerprint
from ..crypto.keys import Address
from ..messages.envelope import Envelope
from ..messages.membership import (
    ExclusionProposal,
    ExclusionVote,
    MembershipError,
    MembershipUpdate,
    RejoinAck,
    RejoinRequest,
    SyncRequest,
    SyncState,
)
from ..messages.opcodes import Opcode
from ..sim.events import Event
from .ledger import LedgerError
from .snapshot import DataSnapshot, SnapshotError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cell import BlockumulusCell


class RecoveryError(Exception):
    """Raised for unrecoverable resync failures (ledger divergence etc.)."""


@dataclass
class RecoveryResult:
    """Outcome of one crash→resync→rejoin cycle, for tests and benchmarks."""

    cell: str
    donor: str
    ok: bool
    reason: Optional[str] = None
    #: Whether the failure is a transient race (peers moved on during the
    #: handshake) that a fresh delta resync can fix — the structured flag
    #: the retry loop in :meth:`RecoveryCoordinator.resync` keys on.
    retryable: bool = False
    snapshot_cycle: Optional[int] = None
    backfilled: int = 0
    replayed: int = 0
    #: Local post-crash entries rolled back because the donor snapshot was
    #: older than this cell's ledger head (they are re-executed from the
    #: donor tail).
    truncated: int = 0
    skipped_contracts: list[str] = field(default_factory=list)
    fingerprint_matched: bool = False
    readmitted: bool = False
    ack_count: int = 0
    #: Full resync+rejoin attempts this recovery took (a rejoin vote can
    #: race live traffic: peers execute transactions between the donor
    #: sync and the fingerprint vote, so the coordinator re-syncs the
    #: delta and retries a bounded number of times).
    attempts: int = 1
    #: Entries admitted *after* the first full sync — by delta retries and
    #: the post-readmit backfill phase.  Under quiesced traffic this is 0;
    #: under load it is exactly the in-flight window the rejoin vote's
    #: state fingerprints could not see.
    live_backfilled: int = 0
    #: Post-readmit backfill rounds run (0 when every agreeing ack's
    #: admitted head was already covered by the synced ledger).
    backfill_rounds: int = 0
    #: Delta-only CELL_SYNC round-trips (retries + backfill rounds); full
    #: snapshot transfers happen exactly once per recovery, so this is the
    #: count that bounds recovery traffic under load.
    delta_syncs: int = 0
    #: Active-view peers that never answered the last rejoin vote (hex
    #: addresses).  Crashed-but-unexcluded peers land here; the
    #: coordinator opens exclusion votes on them so the next attempt's
    #: quorum is measured against peers that can actually answer.
    silent_peers: list[str] = field(default_factory=list)
    #: Replayed entries whose donor-recorded execution fingerprint did not
    #: match the ledger-order replay.  A live donor executes entries as
    #: they clear its invoker pool — under concurrent traffic that is not
    #: ledger order — so its per-entry fingerprints capture different
    #: intermediate states.  Non-zero skew is expected under load; actual
    #: divergence is caught by the readmission vote on the full state
    #: fingerprint.
    fingerprint_skews: int = 0
    started_at: float = 0.0
    completed_at: float = 0.0
    messages_used: int = 0
    bytes_used: int = 0

    @property
    def duration(self) -> float:
        """Recovery latency in simulated seconds (sync start to readmission)."""
        return self.completed_at - self.started_at


@dataclass
class RejoinOutcome:
    """What one rejoin vote produced, beyond the bare pass/fail.

    ``acks`` carry each voter's ``admitted_head`` — the input to the
    post-readmit backfill phase — and ``silent`` names the active-view
    peers that never answered at all, so the coordinator can open
    exclusion votes on them instead of counting unreachable peers in the
    next attempt's quorum denominator.
    """

    readmitted: bool
    acks: list[RejoinAck] = field(default_factory=list)
    silent: list[Address] = field(default_factory=list)


class _RejoinCollection:
    """Acks gathered for one rejoin attempt.

    Fires ``done`` when the required number of *agreeing* acks arrived —
    or as soon as every expected (active-view) voter has answered at
    all: once everyone reachable has spoken there is nothing left to
    wait for, so a failing vote resolves immediately instead of burning
    the full forwarding deadline.
    """

    def __init__(self, env: Any, required: int, expected: set[str]) -> None:
        self.required = required
        self.expected = expected
        self.acks: dict[str, RejoinAck] = {}
        self.done: Event = env.event()

    def add(self, ack: RejoinAck) -> None:
        """Record one verified ack, firing when quorum or all-answered."""
        self.acks[ack.voter.hex()] = ack
        if self.done.triggered:
            return
        agreeing = sum(1 for item in self.acks.values() if item.agree)
        if agreeing >= self.required:
            self.done.succeed(agreeing)
        elif self.expected and self.expected <= set(self.acks):
            self.done.succeed(agreeing)


class MembershipManager:
    """Quorum voting on exclusions and readmissions, for one cell."""

    def __init__(self, cell: "BlockumulusCell") -> None:
        self.cell = cell
        #: Pending PING / CELL_SYNC_STATE waiters, keyed by request nonce.
        self._waiters: dict[str, Event] = {}
        #: Votes collected for exclusion proposals this cell initiated,
        #: keyed by (suspect hex, cycle).
        self._exclusion_votes: dict[tuple[str, int], dict[str, ExclusionVote]] = {}
        #: Proposals already committed (so quorum is broadcast only once).
        self._committed: set[tuple[str, int]] = set()
        #: The in-flight rejoin attempt, if this cell is recovering.
        self._rejoin_collection: Optional[_RejoinCollection] = None
        #: Rejoiners this cell agreed to readmit but whose readmit commit
        #: has not arrived yet, keyed by hex address →
        #: (address, node, expiry).  The forwarding path treats them as
        #: extra targets so entries admitted inside the ack→commit window
        #: still reach the rejoiner; without this, peers forward only to
        #: active-view members and those entries are silently lost.
        self._provisional_forwards: dict[str, tuple[Address, str, float]] = {}

    # ------------------------------------------------------------------
    # Outgoing plumbing
    # ------------------------------------------------------------------
    def _send(
        self,
        dst_node: str,
        recipient: Address,
        operation: Opcode,
        data: dict[str, Any],
        reply_to: Optional[str] = None,
    ) -> Envelope:
        """Sign and send one membership envelope (crashed cells stay silent)."""
        cell = self.cell
        envelope = Envelope.create(
            signer=cell.signer,
            recipient=recipient,
            operation=operation,
            data=data,
            timestamp=cell.env.now,
            nonce=cell.nonces.next(),
            reply_to=reply_to,
        )
        if not cell.fault.crashed:
            cell.network.send(cell.node_name, dst_node, envelope, envelope.byte_size())
        return envelope

    def register_waiter(self, nonce: str) -> Event:
        """Create an event that fires when a reply to ``nonce`` arrives."""
        waiter = self.cell.env.event()
        self._waiters[nonce] = waiter
        return waiter

    def resolve_reply(self, envelope: Envelope) -> None:
        """Route PONG / CELL_SYNC_STATE / CELL_REJOIN_ACK replies."""
        if not envelope.verify():
            self.cell.metrics.increment(f"{self.cell.node_name}/membership_auth_failures")
            return
        if envelope.operation == Opcode.CELL_REJOIN_ACK:
            self._on_rejoin_ack(envelope)
            return
        reply_to = envelope.payload.reply_to
        if reply_to is None:
            return
        waiter = self._waiters.pop(reply_to, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(envelope)

    # ------------------------------------------------------------------
    # Exclusion: proposal, probing, votes, commit
    # ------------------------------------------------------------------
    def propose_exclusion(self, suspect: Address, cycle: int, reason: str) -> None:
        """Open a consortium-wide vote on excluding ``suspect``.

        Called by the cell when its own miss counter for ``suspect``
        crossed the threshold (it has already excluded the suspect
        locally); the proposal spreads that observation so every cell's
        membership view converges instead of each one burning its own
        misses against a dead peer.
        """
        cell = self.cell
        key = (suspect.hex(), cycle)
        if key in self._exclusion_votes or key in self._committed:
            return
        own_vote = ExclusionVote.create(cell.signer, suspect, cycle, agree=True)
        self._exclusion_votes[key] = {cell.address.hex(): own_vote}
        proposal = ExclusionProposal(suspect=suspect, cycle=cycle, reason=reason)
        # Broadcast to every peer (not just this cell's active view): a peer
        # this cell holds excluded may be live again and entitled to vote.
        for address, node in cell._peers.items():
            if address == suspect:
                continue
            self._send(node, address, Opcode.CELL_EXCLUDE, proposal.to_data())
        cell.metrics.increment(f"{cell.node_name}/exclusion_proposals")
        self._maybe_commit_exclusion(suspect, cycle)

    def handle_proposal(
        self, src_node: str, envelope: Envelope
    ) -> Generator[Event, Any, None]:
        """Probe the suspect named in a peer's proposal and vote (a process)."""
        cell = self.cell
        yield cell.env.timeout(cell.service_model.auth_overhead.sample(cell.rng))
        if not envelope.verify() or not cell.invariants.is_cell(envelope.sender):
            cell.metrics.increment(f"{cell.node_name}/membership_auth_failures")
            return
        try:
            proposal = ExclusionProposal.from_data(envelope.data)
        except MembershipError:
            cell.metrics.increment(f"{cell.node_name}/malformed_membership")
            return
        if proposal.suspect == cell.address or not cell.invariants.is_cell(proposal.suspect):
            return
        if not cell.consensus.is_active(proposal.suspect):
            agree = True  # our own observations already excluded the suspect
        else:
            agree = yield from self._probe(proposal.suspect)
        vote = ExclusionVote.create(cell.signer, proposal.suspect, proposal.cycle, agree)
        self._send(
            src_node,
            envelope.sender,
            Opcode.CELL_EXCLUDE_VOTE,
            vote.to_data(),
            reply_to=envelope.nonce,
        )
        cell.metrics.increment(f"{cell.node_name}/exclusion_votes_cast")

    def _probe(self, suspect: Address) -> Generator[Event, Any, bool]:
        """PING the suspect; True (= vote to exclude) if it stays silent."""
        cell = self.cell
        node = cell.peer_node(suspect)
        if node is None:
            return True
        ping = Envelope.create(
            signer=cell.signer,
            recipient=suspect,
            operation=Opcode.PING,
            data={"probe": True},
            timestamp=cell.env.now,
            nonce=cell.nonces.next(),
        )
        waiter = self.register_waiter(ping.nonce)
        accepted = cell.network.send(cell.node_name, node, ping, ping.byte_size())
        if not accepted:
            self._waiters.pop(ping.nonce, None)
            return True
        deadline = cell.env.timeout(cell.invariants.probe_deadline)
        yield cell.env.any_of([waiter, deadline])
        alive = waiter.triggered
        self._waiters.pop(ping.nonce, None)
        return not alive

    def handle_vote(self, envelope: Envelope) -> None:
        """Count one incoming vote on a proposal this cell initiated."""
        cell = self.cell
        if not envelope.verify() or not cell.invariants.is_cell(envelope.sender):
            cell.metrics.increment(f"{cell.node_name}/membership_auth_failures")
            return
        try:
            vote = ExclusionVote.from_data(envelope.data)
        except MembershipError:
            cell.metrics.increment(f"{cell.node_name}/malformed_membership")
            return
        if vote.voter != envelope.sender or not vote.verify():
            cell.metrics.increment(f"{cell.node_name}/membership_auth_failures")
            return
        collected = self._exclusion_votes.get((vote.suspect.hex(), vote.cycle))
        if collected is None:
            return
        collected[vote.voter.hex()] = vote
        self._maybe_commit_exclusion(vote.suspect, vote.cycle)

    def _maybe_commit_exclusion(self, suspect: Address, cycle: int) -> None:
        """Broadcast the quorum-backed exclusion once enough votes agree."""
        cell = self.cell
        key = (suspect.hex(), cycle)
        if key in self._committed:
            return
        collected = self._exclusion_votes.get(key, {})
        agreeing = tuple(vote for vote in collected.values() if vote.agree)
        if len(agreeing) < cell.consensus.exclusion_quorum(suspect):
            return
        self._committed.add(key)
        if cell.consensus.is_active(suspect):
            cell.consensus.exclude(suspect, cycle)
        update = MembershipUpdate(
            action="exclude", subject=suspect, cycle=cycle, votes=agreeing
        )
        # Commit goes to every peer so membership views converge even for
        # peers outside this cell's (possibly stale) active view.
        for address, node in cell._peers.items():
            if address == suspect:
                continue
            self._send(node, address, Opcode.MEMBERSHIP_UPDATE, update.to_data())
        cell.metrics.increment(f"{cell.node_name}/exclusions_committed")

    # ------------------------------------------------------------------
    # Membership updates (commit messages from peers)
    # ------------------------------------------------------------------
    def handle_update(self, envelope: Envelope) -> None:
        """Apply a quorum-backed exclude/readmit after re-verifying evidence."""
        cell = self.cell
        if not envelope.verify() or not cell.invariants.is_cell(envelope.sender):
            cell.metrics.increment(f"{cell.node_name}/membership_auth_failures")
            return
        try:
            update = MembershipUpdate.from_data(envelope.data)
        except MembershipError:
            cell.metrics.increment(f"{cell.node_name}/malformed_membership")
            return
        if update.subject == cell.address or not cell.invariants.is_cell(update.subject):
            return
        supporters = {
            address
            for address in update.verified_supporters()
            if cell.invariants.is_cell(address) and address != update.subject
        }
        standing = cell.consensus.standing(update.subject)
        if update.action == "exclude":
            if (
                standing.readmitted_cycle is not None
                and update.cycle < standing.readmitted_cycle
            ):
                # Replayed evidence from before the subject's readmission.
                return
            if len(supporters) < cell.consensus.exclusion_quorum(update.subject):
                return
            self._provisional_forwards.pop(update.subject.hex(), None)
            if cell.consensus.is_active(update.subject):
                cell.consensus.exclude(update.subject, update.cycle)
                cell.metrics.increment(f"{cell.node_name}/cells_excluded_by_quorum")
        else:
            if (
                standing.excluded_since_cycle is not None
                and update.cycle < standing.excluded_since_cycle
            ):
                # Acks gathered for an earlier recovery cannot readmit the
                # subject after a later exclusion.
                return
            if len(supporters) < cell.consensus.readmission_quorum(update.subject):
                return
            # The subject is (re)entering the active view: ordinary
            # forwarding covers it from here on.
            self._provisional_forwards.pop(update.subject.hex(), None)
            if not cell.consensus.is_active(update.subject):
                cell.consensus.readmit(update.subject, update.cycle)
                cell.metrics.increment(f"{cell.node_name}/cells_readmitted")

    def provisional_forward_targets(self) -> dict[Address, str]:
        """Rejoiners in their ack→readmit-commit window (address → node).

        Expired entries (votes that died without a commit either way) are
        pruned on access.  The forwarding path unions these with the
        active view, but does *not* count them toward the confirmation
        quorum — a mid-recovery rejoiner buffers forwards instead of
        confirming them.
        """
        now = self.cell.env.now
        expired = [
            key
            for key, (_, _, expiry) in self._provisional_forwards.items()
            if expiry <= now
        ]
        for key in expired:
            del self._provisional_forwards[key]
        return {
            address: node
            for address, node, _ in self._provisional_forwards.values()
        }

    # ------------------------------------------------------------------
    # Rejoin: fingerprint check (peer side) and quorum handshake (rejoiner)
    # ------------------------------------------------------------------
    def _combined_fingerprint_hex(self) -> str:
        """Combined fingerprint of this cell's non-excluded contract data."""
        return "0x" + snapshot_fingerprint(self.cell.contracts.fingerprints()).hex()

    def handle_rejoin(
        self, src_node: str, envelope: Envelope
    ) -> Generator[Event, Any, None]:
        """Check a rejoiner's state fingerprint and answer with a signed ack."""
        cell = self.cell
        yield cell.env.timeout(cell.service_model.auth_overhead.sample(cell.rng))
        if not envelope.verify() or not cell.invariants.is_cell(envelope.sender):
            cell.metrics.increment(f"{cell.node_name}/membership_auth_failures")
            return
        try:
            request = RejoinRequest.from_data(envelope.data)
        except MembershipError:
            cell.metrics.increment(f"{cell.node_name}/malformed_membership")
            return
        if request.cell != envelope.sender:
            return
        own_fingerprint = self._combined_fingerprint_hex()
        agree = own_fingerprint == request.fingerprint_hex
        ack = RejoinAck.create(
            cell.signer,
            rejoiner=request.cell,
            cycle=request.cycle,
            fingerprint_hex=own_fingerprint,
            agree=agree,
            admitted_head=len(cell.ledger),
        )
        if agree and not cell.consensus.is_active(request.cell):
            # Start forwarding to the rejoiner *now*: everything this cell
            # admits between this ack and the readmit commit would
            # otherwise never reach it (forwards only go to active-view
            # peers).  The entry expires in case the vote dies quietly.
            self._provisional_forwards[request.cell.hex()] = (
                request.cell,
                src_node,
                cell.env.now + 2 * cell.invariants.forwarding_deadline,
            )
        self._send(
            src_node,
            envelope.sender,
            Opcode.CELL_REJOIN_ACK,
            ack.to_data(),
            reply_to=envelope.nonce,
        )
        cell.metrics.increment(f"{cell.node_name}/rejoin_checks")

    def _on_rejoin_ack(self, envelope: Envelope) -> None:
        """Collect one ack for this cell's in-flight rejoin attempt."""
        cell = self.cell
        collection = self._rejoin_collection
        if collection is None:
            return
        try:
            ack = RejoinAck.from_data(envelope.data)
        except MembershipError:
            cell.metrics.increment(f"{cell.node_name}/malformed_membership")
            return
        if (
            ack.voter != envelope.sender
            or not cell.invariants.is_cell(ack.voter)
            or ack.rejoiner != cell.address
            or not ack.verify()
        ):
            cell.metrics.increment(f"{cell.node_name}/membership_auth_failures")
            return
        collection.add(ack)

    def request_rejoin(
        self, basis_cycle: int, last_sequence: int
    ) -> Generator[Event, Any, RejoinOutcome]:
        """Ask the live quorum to readmit this cell (a process).

        Broadcasts a :class:`RejoinRequest` carrying the post-resync state
        fingerprint, waits for a strict majority of agreeing signed acks
        (the wait resolves early once every active-view peer has answered,
        and gives up at the forwarding deadline), and on success commits
        the readmission consortium-wide with a :class:`MembershipUpdate`.
        The returned :class:`RejoinOutcome` names the active-view peers
        that stayed silent, so a failed vote can be turned into exclusion
        proposals instead of re-running against the same dead quorum.
        """
        cell = self.cell
        if not cell._peers:
            return RejoinOutcome(readmitted=True)
        active_peers = cell.active_peer_nodes()
        expected = {address.hex() for address in active_peers}
        required = cell.consensus.quorum_size(max(1, len(active_peers)))
        collection = _RejoinCollection(cell.env, required, expected)
        self._rejoin_collection = collection
        handshake_cycle = cell.consensus.cycle_of(cell.env.now)
        request = RejoinRequest(
            cell=cell.address,
            cycle=handshake_cycle,
            basis_cycle=basis_cycle,
            last_sequence=last_sequence,
            fingerprint_hex=self._combined_fingerprint_hex(),
        )
        # The request and the commit go to *every* peer: a peer this cell
        # holds excluded (e.g. a standby view that predates the crash) may
        # be live, and skipping it would permanently split the membership
        # views.  The quorum is still measured against the active view.
        for address, node in cell._peers.items():
            self._send(node, address, Opcode.CELL_REJOIN, request.to_data())
        deadline = cell.env.timeout(cell.invariants.forwarding_deadline)
        yield cell.env.any_of([collection.done, deadline])
        self._rejoin_collection = None
        acks = list(collection.acks.values())
        silent = [
            address
            for address in active_peers
            if address.hex() not in collection.acks
        ]
        agreeing = tuple(ack for ack in acks if ack.agree)
        if len(agreeing) < required:
            cell.metrics.increment(f"{cell.node_name}/rejoin_rejected")
            return RejoinOutcome(readmitted=False, acks=acks, silent=silent)
        update = MembershipUpdate(
            action="readmit", subject=cell.address, cycle=handshake_cycle, acks=agreeing
        )
        for address, node in cell._peers.items():
            self._send(node, address, Opcode.MEMBERSHIP_UPDATE, update.to_data())
        cell.metrics.increment(f"{cell.node_name}/rejoins_committed")
        return RejoinOutcome(readmitted=True, acks=acks, silent=silent)


class RecoveryCoordinator:
    """Bootstraps a rejoining (or fresh standby) cell from a live donor."""

    #: Resync+rejoin attempts before a recovery gives up.  More than one
    #: is needed exactly when the deployment is serving traffic *during*
    #: the recovery: peers keep executing between the donor sync and the
    #: rejoin fingerprint vote, so the first vote can legitimately find
    #: the rejoiner one step behind.  Each retry re-fetches only the
    #: delta past the already-synced tail (the full snapshot moves at
    #: most once per recovery); under any finite traffic burst the loop
    #: converges.
    REJOIN_ATTEMPTS = 3
    #: Post-readmit backfill: delta rounds before the coordinator accepts
    #: that anything still missing will arrive through ordinary (now
    #: re-enabled) forwarding, and the settle pause between rounds that
    #: lets in-flight admissions land at the donor.
    BACKFILL_ROUNDS = 8
    BACKFILL_SETTLE = 0.05

    def __init__(self, cell: "BlockumulusCell") -> None:
        self.cell = cell
        self.last_result: Optional[RecoveryResult] = None
        #: Escape hatch for the regression suite: with backfill disabled
        #: the pre-fix behaviour (readmit on fingerprint agreement alone)
        #: is reproduced so tests can prove the in-flight window is real.
        self.backfill_enabled = True

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _traffic_totals(self) -> tuple[int, int]:
        """(messages, bytes) observed so far on any link touching this cell."""
        node = self.cell.node_name
        messages = 0
        total_bytes = 0
        for (src, dst), counter in self.cell.network.traffic.items():
            if src == node or dst == node:
                messages += counter.messages
                total_bytes += counter.bytes
        return messages, total_bytes

    # ------------------------------------------------------------------
    # The resync process
    # ------------------------------------------------------------------
    def resync(
        self, donor: Address, donor_node: str
    ) -> Generator[Event, Any, RecoveryResult]:
        """Download, restore, replay, prove, and rejoin (a process).

        Returns a :class:`RecoveryResult`; ``ok`` is False when the donor
        is unreachable, the ledgers diverged, or any replayed entry's
        execution fingerprint failed to match the donor's record.  A
        failed recovery re-crashes the cell (it may hold half-restored
        state, so letting it run — and anchor fingerprints — would be
        worse than staying down); the operator can retry with a different
        donor via :meth:`BlockumulusDeployment.recover_cell`.

        A rejoin vote that merely *raced live traffic* — every peer
        answered, but their state had moved past the synced tail by the
        time they voted — is retried with a fresh delta sync, up to
        :data:`REJOIN_ATTEMPTS` attempts in total, so recovering under
        load converges instead of failing spuriously.
        """
        cell = self.cell
        started_at = cell.env.now
        messages_before, bytes_before = self._traffic_totals()
        cell.recovering = True
        try:
            attempt = 0
            carried: dict[str, int] = {}
            while True:
                attempt += 1
                result = RecoveryResult(
                    cell=cell.node_name,
                    donor=donor.hex(),
                    ok=False,
                    started_at=started_at,
                )
                # Delta/backfill traffic counters accumulate across
                # attempts so the final result reflects the whole
                # recovery, not just the winning attempt.
                result.live_backfilled = carried.get("live_backfilled", 0)
                result.delta_syncs = carried.get("delta_syncs", 0)
                result.fingerprint_skews = carried.get("fingerprint_skews", 0)
                result = yield from self._resync_body(
                    donor,
                    donor_node,
                    result,
                    messages_before,
                    bytes_before,
                    delta_only=attempt > 1,
                )
                result.attempts = attempt
                if result.ok or not result.retryable or attempt >= self.REJOIN_ATTEMPTS:
                    break
                cell.metrics.increment(f"{cell.node_name}/rejoin_retries")
                carried = {
                    "live_backfilled": result.live_backfilled,
                    "delta_syncs": result.delta_syncs,
                    "fingerprint_skews": result.fingerprint_skews,
                }
                if result.silent_peers:
                    # Active-view peers that never answered are most
                    # likely crashed-but-unexcluded: shrink the quorum
                    # denominator by voting them out before retrying,
                    # instead of waiting out their crash window.
                    yield from self._exclude_silent(result.silent_peers)
        finally:
            cell.recovering = False
        if not result.ok:
            # Half-restored state must not serve traffic or anchor
            # fingerprints; go back down until the operator retries.
            cell.fault.crashed = True
            cell.network.set_online(cell.node_name, False)
        cell.drain_recovery_forwards()
        return result

    def _resync_body(
        self,
        donor: Address,
        donor_node: str,
        result: RecoveryResult,
        messages_before: int,
        bytes_before: int,
        delta_only: bool = False,
    ) -> Generator[Event, Any, RecoveryResult]:
        cell = self.cell
        bundle = yield from self._fetch_sync_state(
            donor, donor_node, delta_only=delta_only
        )
        if delta_only:
            result.delta_syncs += 1
        if bundle is None:
            result.reason = "donor unreachable or sync request timed out"
            return self._finish(result, messages_before, bytes_before)
        self._adopt_membership_view(bundle)

        replay_base = -1
        snapshot: Optional[DataSnapshot] = None
        if bundle.snapshot is not None:
            try:
                snapshot = DataSnapshot.from_wire(bundle.snapshot, cell_id=cell.node_name)
            except SnapshotError as exc:
                result.reason = f"malformed donor snapshot: {exc}"
                return self._finish(result, messages_before, bytes_before)
            result.snapshot_cycle = snapshot.cycle
            replay_base = snapshot.last_sequence
            restore_error = self._restore_snapshot(snapshot, result)
            if restore_error is not None:
                result.reason = restore_error
                return self._finish(result, messages_before, bytes_before)

        replay_error = yield from self._replay_entries(bundle, replay_base, result)
        if replay_error is not None:
            result.reason = replay_error
            return self._finish(result, messages_before, bytes_before)
        result.fingerprint_matched = True

        if snapshot is not None and (
            cell.snapshots.latest_cycle is None
            or snapshot.cycle > cell.snapshots.latest_cycle
        ):
            cell.snapshots.adopt(snapshot)

        if snapshot is not None:
            basis_cycle = snapshot.cycle
        else:
            # Delta-only retries ride on the snapshot adopted by the
            # first attempt (0 for a consortium that never snapshotted).
            basis_cycle = cell.snapshots.latest_cycle or 0
        outcome = yield from cell.membership.request_rejoin(
            basis_cycle=basis_cycle, last_sequence=len(cell.ledger) - 1
        )
        result.readmitted = outcome.readmitted
        result.ack_count = len(outcome.acks)
        result.silent_peers = [address.hex() for address in outcome.silent]
        result.ok = outcome.readmitted
        if not outcome.readmitted:
            result.reason = "readmission quorum not reached"
            # Either peers answered but their state had moved past our
            # synced tail (live traffic during the handshake — a fresh
            # delta sync can catch up) or part of the quorum stayed
            # silent (the coordinator excludes them before retrying).
            result.retryable = True
        elif self.backfill_enabled:
            # The vote compared *state* fingerprints, which cannot see
            # entries peers admitted but had not executed yet.  Close
            # that window before this cell resumes anchoring: fetch the
            # delta past our head until the donor runs dry.
            backfill_error = yield from self._backfill(
                donor, donor_node, outcome.acks, result
            )
            if backfill_error is not None:
                result.ok = False
                result.reason = backfill_error
        cell.metrics.increment(f"{cell.node_name}/recoveries")
        return self._finish(result, messages_before, bytes_before)

    def _backfill(
        self,
        donor: Address,
        donor_node: str,
        acks: list[RejoinAck],
        result: RecoveryResult,
    ) -> Generator[Event, Any, Optional[str]]:
        """Admit the entries the rejoin vote's fingerprints could not see.

        Every agreeing ack carries the voter's ledger head at check time;
        if any head is past this cell's ledger, peers admitted
        transactions our sync missed.  Delta-fetch from the donor until
        two consecutive rounds apply nothing and the donor's own head is
        covered — in-flight admissions settle between rounds.  Returns an
        error string on divergence, None once converged (a process).
        """
        cell = self.cell
        heads = [
            ack.admitted_head
            for ack in acks
            if ack.agree and ack.admitted_head >= 0
        ]
        if not heads or max(heads) <= len(cell.ledger):
            # Every agreeing voter's head was already covered by the
            # synced tail: the quiesced fast path, zero extra messages.
            return None
        dry = 0
        while result.backfill_rounds < self.BACKFILL_ROUNDS:
            result.backfill_rounds += 1
            bundle = yield from self._fetch_sync_state(
                donor, donor_node, delta_only=True
            )
            result.delta_syncs += 1
            if bundle is None:
                return "donor unreachable during post-readmit backfill"
            applied_before = result.replayed
            error = yield from self._replay_entries(bundle, -1, result)
            if error is not None:
                return error
            applied = result.replayed - applied_before
            result.live_backfilled += applied
            if applied == 0 and bundle.head <= len(cell.ledger):
                dry += 1
                if dry >= 2:
                    return None
            else:
                dry = 0
            yield cell.env.timeout(self.BACKFILL_SETTLE)
        return None

    def _exclude_silent(
        self, silent_hex: list[str]
    ) -> Generator[Event, Any, None]:
        """Open exclusion votes on peers that ignored the rejoin vote.

        A crashed-but-unexcluded peer inflates the readmission quorum
        denominator while never contributing an ack, forcing recoveries
        to wait out its crash window.  Proposing its exclusion makes the
        live peers probe it; once the vote commits, the next rejoin
        attempt measures its quorum against peers that can actually
        answer (a process).
        """
        cell = self.cell
        cycle = cell.consensus.cycle_of(cell.env.now)
        proposed = False
        for hex_address in silent_hex:
            address = next(
                (peer for peer in cell._peers if peer.hex() == hex_address), None
            )
            if address is None or not cell.consensus.is_active(address):
                continue
            cell.membership.propose_exclusion(
                address, cycle, "no answer to rejoin vote"
            )
            proposed = True
        if proposed:
            # Give the live peers time to probe the suspects and vote
            # before the next attempt measures its quorum.
            yield cell.env.timeout(cell.invariants.probe_deadline + 1.0)

    def _finish(
        self, result: RecoveryResult, messages_before: int, bytes_before: int
    ) -> RecoveryResult:
        """Stamp timing/traffic totals and remember the result."""
        messages_after, bytes_after = self._traffic_totals()
        result.completed_at = self.cell.env.now
        result.messages_used = messages_after - messages_before
        result.bytes_used = bytes_after - bytes_before
        self.last_result = result
        return result

    def _fetch_sync_state(
        self, donor: Address, donor_node: str, delta_only: bool = False
    ) -> Generator[Event, Any, Optional[SyncState]]:
        """One CELL_SYNC round-trip to the donor (None on timeout).

        ``delta_only`` asks the donor to skip the snapshot payload and
        ship just the ledger entries past this cell's head — what rejoin
        retries and the post-readmit backfill use, so only the first
        attempt of a recovery ever moves a full snapshot.
        """
        cell = self.cell
        request = Envelope.create(
            signer=cell.signer,
            recipient=donor,
            operation=Opcode.CELL_SYNC,
            data=SyncRequest(
                since_sequence=len(cell.ledger), delta_only=delta_only
            ).to_data(),
            timestamp=cell.env.now,
            nonce=cell.nonces.next(),
        )
        waiter = cell.membership.register_waiter(request.nonce)
        accepted = cell.network.send(
            cell.node_name, donor_node, request, request.byte_size()
        )
        if not accepted:
            return None
        deadline = cell.env.timeout(cell.invariants.forwarding_deadline)
        yield cell.env.any_of([waiter, deadline])
        if not waiter.triggered:
            return None
        reply: Envelope = waiter.value
        try:
            return SyncState.from_data(reply.data)
        except MembershipError:
            return None

    def _adopt_membership_view(self, bundle: SyncState) -> None:
        """Replace this cell's stale membership view with the donor's.

        A cell that was down (or a standby that never served) has no way to
        have tracked exclusions and readmissions that happened in the
        meantime; the donor's current view is the best available and comes
        from the same peer trusted for state.  The rejoiner's own standing
        is skipped — its peers decide that through the rejoin vote.
        """
        cell = self.cell
        excluded = set(bundle.excluded)
        cycle = cell.consensus.cycle_of(cell.env.now)
        for address in cell.invariants.cell_addresses:
            if address == cell.address:
                continue
            if address.hex() in excluded:
                if cell.consensus.is_active(address):
                    cell.consensus.exclude(address, cycle)
            elif not cell.consensus.is_active(address):
                cell.consensus.readmit(address, cycle)

    def _restore_snapshot(
        self, snapshot: DataSnapshot, result: RecoveryResult
    ) -> Optional[str]:
        """Overwrite local contract state from the donor snapshot.

        Proof step 1: every restored contract must hash to the fingerprint
        the donor's snapshot (and hence its anchored report) claims for it.
        If the snapshot is *older* than this cell's ledger head, the local
        entries past the snapshot boundary are rolled back first — their
        effects vanish with the restore, and they are re-executed from the
        donor's tail.  Returns an error string on mismatch, None on
        success.
        """
        cell = self.cell
        result.truncated = cell.ledger.truncate(snapshot.last_sequence)
        state_export = snapshot.materialized_state()
        for name, state in state_export.items():
            if not cell.contracts.contains(name):
                # A community contract deployed while this cell was down and
                # before the donor snapshot: its source is no longer in the
                # ledger tail, so it cannot be rebuilt here.  Recorded so
                # operators can redeploy it explicitly.
                result.skipped_contracts.append(name)
                continue
            contract = cell.contracts.get(name)
            contract.restore_state(state)
            expected = snapshot.contract_fingerprints.get(name)
            if expected is not None and contract.fingerprint() != expected:
                return f"restored state of {name!r} does not match the donor fingerprint"
        for name in snapshot.excluded_contracts:
            if cell.contracts.contains(name):
                cell.contracts.exclude(name)
        return None

    def _replay_entries(
        self, bundle: SyncState, replay_base: int, result: RecoveryResult
    ) -> Generator[Event, Any, Optional[str]]:
        """Backfill snapshot-covered entries and re-execute the tail.

        Proof step 2: every re-executed entry's post-execution contract
        fingerprint must equal the donor's recorded one — matching the
        consortium's execution fingerprints entry by entry is what
        qualifies the cell to rejoin the confirmation quorum.
        """
        cell = self.cell
        for item in bundle.entries:
            summary = item.get("summary", {})
            sequence = int(summary.get("sequence", -1))
            if sequence < len(cell.ledger):
                local_tx = cell.ledger.entry_at(sequence).tx_id
                if local_tx == summary.get("tx_id"):
                    continue
                divergence = self._drop_admitted_suffix(sequence, summary, result)
                if divergence is not None:
                    return divergence
                # The admitted-only local suffix is gone; fall through and
                # admit the donor's entry at this now-free sequence.
            try:
                envelope = Envelope.from_wire(item["envelope"])
            except (KeyError, ValueError) as exc:
                return f"malformed donor ledger entry at sequence {sequence}: {exc}"
            if not envelope.verify():
                return f"donor ledger entry {sequence} has an invalid client signature"
            if sequence <= replay_base:
                try:
                    cell.ledger.backfill(envelope, summary, item.get("result"))
                except LedgerError as exc:
                    return f"ledger backfill failed: {exc}"
                result.backfilled += 1
                continue
            # Re-execute the post-snapshot tail, paying the same simulated
            # CPU cost as live execution so recovery latency is honest.
            yield from cell.cpu.use(cell.service_model.invoke_cpu)
            try:
                entry = cell.ledger.admit(
                    envelope,
                    cycle=int(summary.get("cycle", 0)),
                    contingency=bool(summary.get("contingency", False)),
                )
            except LedgerError as exc:
                return f"ledger replay admission failed: {exc}"
            try:
                outcome = cell.executor.execute(entry)
            except BContractError as exc:
                return f"replay of sequence {sequence} failed: {exc}"
            if outcome.ok:
                cell.ledger.mark_executed(
                    outcome.tx_id, outcome.contract, outcome.result, outcome.fingerprint
                )
            else:
                cell.ledger.mark_rejected(
                    outcome.tx_id, outcome.contract, outcome.error or ""
                )
            donor_status = summary.get("status")
            # A donor status of "admitted" is not a claim about execution:
            # the donor simply had not executed the entry yet when it
            # served the sync (the backfill phase fetches exactly such
            # entries).  Executing ahead of the donor is safe — execution
            # is deterministic in ledger order.
            if donor_status not in (None, "admitted") and outcome.status != donor_status:
                return (
                    f"replay of sequence {sequence} diverged: local status "
                    f"{outcome.status!r} vs donor {donor_status!r}"
                )
            donor_fingerprint = summary.get("fingerprint")
            if (
                donor_fingerprint is not None
                and outcome.ok
                and "0x" + outcome.fingerprint.hex() != donor_fingerprint
            ):
                # Not fatal: the donor executes entries as they clear its
                # invoker pool, which under concurrent traffic is not
                # ledger order, so its recorded per-entry fingerprint can
                # capture a different intermediate state than this
                # ledger-order replay.  Real state divergence is caught by
                # the readmission vote over the full combined fingerprint.
                result.fingerprint_skews += 1
            result.replayed += 1
        return None

    def _drop_admitted_suffix(
        self, sequence: int, summary: dict[str, Any], result: RecoveryResult
    ) -> Optional[str]:
        """Roll back a local admitted-only suffix that diverged from the donor.

        A cell can crash holding entries it admitted but never executed
        (or forwarded) — the batch dispatcher flushes on a quantum, so a
        crash can strand them locally.  Such entries changed no contract
        state and no peer ever saw them, so dropping them in favour of the
        donor's stream is safe; the client simply never gets a receipt,
        exactly as if the submission had been lost with the crash.  Any
        *executed* entry in the divergent suffix is real divergence and
        stays fatal.  Returns an error string or None after truncating.
        """
        cell = self.cell
        for seq in range(sequence, len(cell.ledger)):
            entry = cell.ledger.entry_at(seq)
            if entry.status != "admitted":
                local_tx = cell.ledger.entry_at(sequence).tx_id
                return (
                    f"ledger divergence at sequence {sequence}: "
                    f"local {local_tx} vs donor {summary.get('tx_id')} "
                    f"with executed entries in the divergent suffix"
                )
        result.truncated += cell.ledger.truncate(sequence - 1)
        return None
