"""Transaction execution against a cell's deployed bContracts.

This is the invocation half of the bContract interface of Sections III-C7
and III-D3: the executor is the deterministic part of transaction
processing — given an
admitted ledger entry it locates the target bContract, builds the
invocation context (using only values that are identical on every cell —
the signed client payload and the ledger cycle), invokes the method, and
returns the result together with the contract's post-execution fingerprint.
The surrounding cell logic (timing, CPU accounting, forwarding,
confirmations) lives in :mod:`repro.core.cell`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..contracts.context import BContractError, InvocationContext
from ..contracts.registry import ContractRegistry
from ..contracts.state_store import AccessSet
from ..contracts.system.cas import ContentAddressableStorage
from ..crypto.fingerprint import canonical_bytes
from ..crypto.hashing import fast_hash
from .ledger import LedgerEntry


@dataclass(frozen=True)
class ExecutionOutcome:
    """The result of executing one transaction on one cell."""

    tx_id: str
    contract: str
    method: str
    status: str                  # "executed" | "rejected"
    result: Any
    error: Optional[str]
    fingerprint: bytes
    #: Observed store access of the invocation (None when the call never
    #: reached a contract).  Excluded from both fingerprints: access sets
    #: are per-cell diagnostics, not part of the cross-cell agreement.
    access: Optional[AccessSet] = None

    @property
    def ok(self) -> bool:
        """True if the invocation committed."""
        return self.status == "executed"

    def fingerprint_hex(self) -> str:
        """0x-prefixed post-execution contract *state* fingerprint."""
        return "0x" + self.fingerprint.hex()

    def execution_fingerprint(self) -> bytes:
        """Order-independent fingerprint of this transaction's execution.

        Confirmations exchanged between cells compare this value: it covers
        the transaction id, the target contract/method, the status, and the
        result, so two cells agree iff the transaction had the same effect
        on both — regardless of how other concurrent transactions happened
        to interleave locally.  Whole-state fingerprints are compared at
        report-cycle boundaries through the anchored snapshots instead; this
        is what lets the stress test of Fig. 9/10 run 20,000 simultaneous
        transactions without spurious mismatches, matching the paper's
        observation of zero failures.
        """
        return fast_hash(
            canonical_bytes(
                {
                    "tx_id": self.tx_id,
                    "contract": self.contract,
                    "method": self.method,
                    "status": self.status,
                    "result": self.result,
                    "error": self.error,
                }
            )
        )

    def execution_fingerprint_hex(self) -> str:
        """0x-prefixed execution fingerprint."""
        return "0x" + self.execution_fingerprint().hex()


class TransactionExecutor:
    """Executes admitted transactions against a contract registry."""

    def __init__(self, cell_id: str, registry: ContractRegistry) -> None:
        self.cell_id = cell_id
        self.registry = registry
        #: Keys read by the most recent :meth:`query` (view read tracking).
        self.last_view_reads: frozenset[str] = frozenset()

    def _cas(self) -> Optional[ContentAddressableStorage]:
        name = ContentAddressableStorage.DEFAULT_NAME
        if self.registry.contains(name):
            contract = self.registry.get(name)
            if isinstance(contract, ContentAddressableStorage):
                return contract
        return None

    @staticmethod
    def parse_call(entry: LedgerEntry) -> tuple[str, str, dict[str, Any]]:
        """Extract (contract, method, args) from a TX_SUBMIT payload."""
        data = entry.envelope.data
        contract = data.get("contract")
        method = data.get("method")
        args = data.get("args", {})
        if not isinstance(contract, str) or not contract:
            raise BContractError("transaction does not name a target bContract")
        if not isinstance(method, str) or not method:
            raise BContractError("transaction does not name a method")
        if not isinstance(args, dict):
            raise BContractError("transaction arguments must be an object")
        return contract, method, args

    def execute(self, entry: LedgerEntry, lane: Optional[int] = None) -> ExecutionOutcome:
        """Run the transaction in ``entry`` and return the outcome.

        Both success and contract-level rejection are normal outcomes (the
        rejection is reported back to the client and recorded in the
        ledger); only malformed envelopes raise.  ``lane`` tags the
        invocation context with the execution lane that ran it
        (informational — never part of the deterministic inputs).
        """
        contract_name, method, args = self.parse_call(entry)
        contract = self.registry.get(contract_name)
        context = InvocationContext(
            sender=entry.envelope.sender,
            tx_id=entry.tx_id,
            # The *signed* client timestamp is used so every cell passes an
            # identical value to the contract regardless of local clock.
            timestamp=entry.envelope.payload.timestamp,
            cell_id=self.cell_id,
            cycle=entry.cycle,
            cas=self._cas(),
            lane=lane,
            extra={"contingency": entry.contingency},
        )
        try:
            result = contract.invoke(context, method, args)
            status, error = "executed", None
        except BContractError as exc:
            result, status, error = None, "rejected", str(exc)
        return ExecutionOutcome(
            tx_id=entry.tx_id,
            contract=contract_name,
            method=method,
            status=status,
            result=result,
            error=error,
            fingerprint=contract.fingerprint(),
            access=contract.last_access,
        )

    def execute_safely(self, entry: LedgerEntry, lane: Optional[int] = None) -> ExecutionOutcome:
        """Like :meth:`execute`, but malformed calls reject instead of raising.

        Malformed payloads and unknown contracts revert rather than crash
        the executing cell; the client receives the reason in its TX_ERROR
        reply.  Shared by the cell's execution paths and the offline
        :meth:`~repro.core.lanes.LaneSchedule.execute` drain.
        """
        try:
            return self.execute(entry, lane=lane)
        except BContractError as exc:
            data = entry.envelope.data
            return ExecutionOutcome(
                tx_id=entry.tx_id,
                contract=str(data.get("contract", "")),
                method=str(data.get("method", "")),
                status="rejected",
                result=None,
                error=str(exc),
                fingerprint=b"\x00" * 32,
            )

    def query(self, contract_name: str, view: str, args: dict[str, Any]) -> Any:
        """Run a read-only view (service-cell only, no consensus round).

        The view executes under the store's read-only guard: a buggy view
        that attempts a write is rejected (it can never pollute the write
        set or change the fingerprint), and the keys it read are exposed
        through :attr:`last_view_reads`.
        """
        contract = self.registry.get(contract_name)
        try:
            return contract.query(view, args)
        finally:
            # Also updated when the view raises (including a rejected write
            # attempt) — the guard records reads up to the failure point.
            self.last_view_reads = contract.last_view_reads
