"""The Blockumulus cell: the unit of the cloud consortium.

A cell (Section III-B2/III-C) authenticates incoming client transactions,
admits them to its mutex-protected ledger, forwards them to every other
consortium cell, executes them against its local bContract instances,
collects the other cells' signed confirmations, and returns an aggregated
multi-signature receipt to the client (Fig. 7 of the paper).  At every
report-cycle boundary it fingerprints all contract data into a snapshot and
anchors the fingerprint in the Ethereum :class:`SnapshotRegistry` contract,
then executes any contingency transactions users submitted directly
on-chain (the censorship escape hatch of Section V-B).

The cell runs entirely inside the discrete-event simulation: message
handling is event-driven, protocol steps are generator processes, and all
service times come from the deployment's :class:`CellServiceModel`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

if TYPE_CHECKING:
    import random

from ..contracts.registry import ContractRegistry
from ..contracts.system.cas import ContentAddressableStorage
from ..contracts.system.deployer import CommunityDeployer
from ..crypto.keys import Address, PrivateKey
from ..ethchain.contracts.snapshot_registry import SnapshotRegistry
from ..ethchain.provider import Web3Provider
from ..messages.batch import BatchError, ForwardBatch
from ..messages.envelope import Envelope, NonceFactory
from ..messages.membership import MembershipError, SyncRequest, SyncState
from ..messages.opcodes import Opcode
from ..messages.signer import Signer
from ..messages.xshard import (
    CrossShardDecision,
    CrossShardError,
    CrossShardPrepare,
    CrossShardVote,
    CrossShardVoucher,
    CrossShardVoucherTransfer,
)
from ..sim.environment import Environment
from ..sim.events import Event
from ..sim.latency import CellServiceModel
from ..sim.metrics import MetricsRegistry
from ..sim.network import Network
from ..sim.resources import Resource
from .batching import BatchDispatcher
from .config import SystemInvariants
from .consensus import OverlayConsensus
from .executor import ExecutionOutcome, TransactionExecutor
from .faults import FaultPlan
from .lanes import LaneScheduler
from .ledger import LedgerEntry, LedgerError, TransactionLedger
from .receipts import AggregatedReceipt, Confirmation, ConfirmationBatch, ReceiptError
from .recovery import MembershipManager, RecoveryCoordinator
from .snapshot import SnapshotEngine
from .subscription import PricingPolicy, SubscriptionManager, SubscriptionError

#: Error string of a transaction shed by the admission controller.  The
#: prefix is the client-visible contract (``TransactionResult.shed``
#: matches on it); the reply reuses the existing ``TX_ERROR`` opcode so
#: shedding needs no new protocol message.
OVERLOADED_ERROR = "OVERLOADED: the cell's admission queue is full"


def _flip_fingerprint(fingerprint_hex: str) -> str:
    """The bitwise complement of a ``0x``-hex fingerprint.

    What an *equivocating* cell signs on one of its two channels: a
    well-formed fingerprint of the right width that deterministically
    differs from the honest one (unlike the zeroed fingerprint of
    ``tamper_fingerprint``, which is self-consistently wrong everywhere).
    """
    honest = bytes.fromhex(fingerprint_hex[2:])
    return "0x" + bytes(byte ^ 0xFF for byte in honest).hex()


class _ServiceResult:
    """What the shared service pipeline learned about one transaction.

    Produced by :meth:`BlockumulusCell._service_pipeline` for both the
    client-facing ``TX_SUBMIT`` path and the cross-shard gateway path,
    which differ only in how they report this result back.
    """

    def __init__(
        self,
        *,
        entry: Optional[LedgerEntry] = None,
        outcome: Optional[ExecutionOutcome] = None,
        cycle: int = 0,
        receipt: Optional[AggregatedReceipt] = None,
        missing: Optional[list[Address]] = None,
        mismatched: Optional[list[Address]] = None,
        rejected: Optional[list["Confirmation"]] = None,
        admit_error: Optional[str] = None,
        aborted: bool = False,
    ) -> None:
        self.entry = entry
        self.outcome = outcome
        self.cycle = cycle
        self.receipt = receipt
        self.missing = missing or []
        self.mismatched = mismatched or []
        self.rejected = rejected or []
        self.admit_error = admit_error
        self.aborted = aborted

    @property
    def confirmed(self) -> bool:
        """True when the transaction earned a full aggregated receipt."""
        return self.receipt is not None

    def failure_reason(self) -> str:
        """Human-readable reason the transaction reverted."""
        if self.admit_error is not None:
            return self.admit_error
        return BlockumulusCell._failure_reason(
            self.outcome, self.missing, self.mismatched, self.rejected
        )


class _PendingTransaction:
    """Book-keeping for a transaction this cell is servicing."""

    def __init__(self, env: Environment, tx_id: str, expected_cells: set[Address]) -> None:
        self.tx_id = tx_id
        self.expected_cells = set(expected_cells)
        self.confirmations: dict[Address, Confirmation] = {}
        self.all_received: Event = env.event()

    def add(self, confirmation: Confirmation) -> None:
        """Record one confirmation, firing the completion event if done."""
        if confirmation.cell not in self.expected_cells:
            return
        self.confirmations[confirmation.cell] = confirmation
        if len(self.confirmations) >= len(self.expected_cells) and not self.all_received.triggered:
            self.all_received.succeed(self.confirmations)


class BlockumulusCell:
    """One consortium member, attached to the simulated network."""

    def __init__(
        self,
        env: Environment,
        index: int,
        node_name: str,
        signer: Signer,
        eth_key: PrivateKey,
        invariants: SystemInvariants,
        network: Network,
        rng: random.Random,
        service_model: CellServiceModel,
        metrics: MetricsRegistry,
        eth_provider: Optional[Web3Provider] = None,
        registry_contract: Optional[SnapshotRegistry] = None,
        pricing: Optional[PricingPolicy] = None,
        enforce_subscriptions: bool = False,
        auto_report: bool = True,
        snapshots_retained: int = 3,
        message_batching: bool = True,
        batch_quantum: float = 0.02,
        execution_lanes: int = 1,
        max_inflight: Optional[int] = None,
    ) -> None:
        self.env = env
        self.index = index
        self.node_name = node_name
        self.signer = signer
        self.eth_key = eth_key
        self.invariants = invariants
        self.network = network
        self.rng = rng
        self.service_model = service_model
        self.metrics = metrics
        self.eth = eth_provider
        self.registry_contract = registry_contract
        self.auto_report = auto_report

        # Protocol state.
        self.contracts = ContractRegistry()
        self.ledger = TransactionLedger(env, node_name)
        self.consensus = OverlayConsensus(invariants)
        self.snapshots = SnapshotEngine(node_name, self.contracts, retain=snapshots_retained)
        self.executor = TransactionExecutor(node_name, self.contracts)
        self.subscriptions = SubscriptionManager(
            policy=pricing or PricingPolicy(), enforce=enforce_subscriptions
        )
        self.fault = FaultPlan()
        self.nonces = NonceFactory(signer.address)
        self.membership = MembershipManager(self)
        self.recovery = RecoveryCoordinator(self)
        # Batched overlay pipeline: outgoing forwards/confirmations for the
        # same destination coalesce into one envelope per scheduling quantum.
        # The ``offline`` gate keeps a crashed cell from flushing batches it
        # queued before the crash (a per-transaction sender would never have
        # queued them), so both pipeline modes crash identically.
        self.batcher: Optional[BatchDispatcher] = (
            BatchDispatcher(
                env=env,
                network=network,
                signer=signer,
                nonces=self.nonces,
                node_name=node_name,
                quantum=batch_quantum,
                metrics=metrics,
                offline=lambda: self.fault.crashed,
            )
            if message_batching
            else None
        )

        # Simulated hardware.
        self.cpu = Resource(env, capacity=service_model.cpu_workers, name=f"{node_name}-cpu")
        self.invokers = Resource(
            env, capacity=service_model.max_parallel_invocations, name=f"{node_name}-invokers"
        )
        # Conflict-aware execution lanes (repro.core.lanes).  With lanes=1
        # the legacy path is kept bit-for-bit: executions gate on the
        # ``invokers`` pool exactly as before.  With lanes>1 the lane
        # scheduler replaces that gate for the execution stage: at most
        # ``execution_lanes`` transactions run concurrently, never two with
        # conflicting access footprints.
        self.lanes: Optional[LaneScheduler] = (
            LaneScheduler(env, execution_lanes, self.contracts, name=f"{node_name}-lanes")
            if execution_lanes > 1
            else None
        )

        # Admission control (backpressure).  The counter tracks client
        # transactions currently being serviced end to end (ingress to
        # reply); with a bound, arrivals beyond it are shed *before* any
        # signature verification or ledger admission, so a shed
        # transaction leaves no protocol trace anywhere — which is what
        # keeps the conservation and differential oracles oblivious to
        # shedding by construction.  Forwarded transactions from peer
        # cells are never shed: they were already admitted by their
        # service cell, and dropping them here would diverge the ledgers.
        self.max_inflight = max_inflight
        self._inflight = 0
        self._inflight_peak = 0
        self._shed_count = 0

        # Peer routing: consortium address -> network node name.
        self._peers: dict[Address, str] = {}
        # Client routing: client address -> network node name (learned from traffic).
        self._client_nodes: dict[Address, str] = {}
        self._pending: dict[str, _PendingTransaction] = {}

        # Contract-state sharding (repro.core.sharding).  In a sharded
        # deployment exactly one cell per group is the cross-shard
        # *gateway*: the directory maps group index -> gateway addresses
        # (used to verify decision certificates), and the gateway's
        # per-xtx state machine rejects out-of-order or contradictory
        # phases.  Non-gateway cells refuse XSHARD traffic outright —
        # were siblings allowed to serve it, a duplicate prepare to a
        # sibling would yield a signed no-vote (the group-wide escrow
        # rejects the replay) while the hold stands, manufacturing abort
        # evidence against a commit-eligible transaction.
        self.shard_group: Optional[int] = None
        self.is_xshard_gateway: bool = False
        self._shard_directory: Optional[dict[int, frozenset[Address]]] = None
        self._xshard_state: dict[str, str] = {}

        # While a resync is in flight the cell must not take snapshots: it
        # would anchor fingerprints of half-restored state.  For the same
        # reason it sheds client ingress (half-restored state must never
        # service transactions) and buffers forwarded transactions from
        # peers instead of admitting them — the replay path needs the
        # ledger to stay donor-aligned until the resync settles, and the
        # buffered forwards drain immediately afterwards.
        self.recovering = False
        self._shed_recovering = 0
        self._recovery_forward_buffer: list[tuple[str, Address, Envelope, str]] = []
        # Report-stage state: when True, incoming executions queue on the event.
        self.in_report_stage = False
        self._stage_resume: Event = env.event()
        self._contingencies_executed = 0
        self._reports_submitted: list[dict[str, Any]] = []

        self._deploy_system_contracts()
        network.register(node_name, handler=self._on_message)

    # ------------------------------------------------------------------
    # Identity and wiring
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        """The cell's Blockumulus identity (message-layer address)."""
        return self.signer.address

    def set_peers(self, peers: dict[Address, str]) -> None:
        """Install the address -> node-name map of the other consortium cells."""
        self._peers = {
            address: node for address, node in peers.items() if address != self.address
        }

    def peer_node(self, address: Address) -> Optional[str]:
        """Network node name of the peer cell at ``address`` (None if unknown)."""
        return self._peers.get(address)

    def active_peer_nodes(self) -> dict[Address, str]:
        """Peers currently part of the confirmation quorum (this cell's view)."""
        return {
            address: node
            for address, node in self._peers.items()
            if self.consensus.is_active(address)
        }

    def _deploy_system_contracts(self) -> None:
        cas = ContentAddressableStorage(ContentAddressableStorage.DEFAULT_NAME)
        deployer = CommunityDeployer(CommunityDeployer.DEFAULT_NAME)
        deployer.bind(self.contracts.register, self.contracts.remove)
        self.contracts.register(cas)
        self.contracts.register(deployer)

    def deploy_contract(self, contract: Any) -> None:
        """Deploy a pre-built bContract instance (deployment orchestration)."""
        self.contracts.register(contract)

    def install_shard_directory(
        self, group: int, directory: dict[int, frozenset[Address]], gateway: bool = False
    ) -> None:
        """Install this cell's sharding identity.

        ``group`` is the cell group this cell belongs to; ``directory``
        lists every group's designated *gateway* addresses, which is what
        lets a gateway verify that a decision certificate's prepare votes
        really come from the other groups' gateways.  Only the cell
        installed with ``gateway=True`` serves ``XSHARD_*`` traffic: the
        2PC state machine must have one authoritative owner per group.
        Installed by :class:`~repro.core.sharding.ShardedDeployment`;
        unsharded deployments never call this and reject all ``XSHARD_*``
        traffic.
        """
        self.shard_group = group
        self.is_xshard_gateway = gateway
        self._shard_directory = {g: frozenset(addresses) for g, addresses in directory.items()}

    def start(self) -> None:
        """Start the cell's background processes (report cycle lifecycle)."""
        self.env.process(self._lifecycle())

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _on_message(self, src_node: str, payload: Any, size: int) -> None:
        if self.fault.crashed:
            return
        if not isinstance(payload, Envelope):
            self.metrics.increment(f"{self.node_name}/malformed_messages")
            return
        envelope = payload
        operation = envelope.operation
        if operation in (Opcode.TX_SUBMIT, Opcode.DEPLOY_CONTRACT):
            self._client_nodes[envelope.sender] = src_node
            self.subscriptions.record_traffic(envelope.sender, size)
            self.env.process(self._serve_transaction(src_node, envelope))
        elif operation == Opcode.TX_FORWARD:
            self.env.process(self._process_forwarded(src_node, envelope))
        elif operation == Opcode.TX_FORWARD_BATCH:
            self.env.process(self._process_forward_batch(src_node, envelope))
        elif operation in (Opcode.TX_CONFIRM, Opcode.TX_REJECT):
            self._accept_confirmation(envelope)
        elif operation == Opcode.TX_CONFIRM_BATCH:
            self._accept_confirmation_batch(envelope)
        elif operation == Opcode.SUBSCRIBE:
            self._client_nodes[envelope.sender] = src_node
            self.env.process(self._serve_subscription(src_node, envelope))
        elif operation == Opcode.QUERY_STATE:
            self._client_nodes[envelope.sender] = src_node
            self.env.process(self._serve_query(src_node, envelope))
        elif operation in (Opcode.XSHARD_PREPARE, Opcode.XSHARD_COMMIT, Opcode.XSHARD_ABORT):
            self._client_nodes[envelope.sender] = src_node
            self.subscriptions.record_traffic(envelope.sender, size)
            self.env.process(self._serve_xshard(src_node, envelope))
        elif operation == Opcode.XSHARD_VOUCHER:
            self._client_nodes[envelope.sender] = src_node
            self.subscriptions.record_traffic(envelope.sender, size)
            self.env.process(self._serve_xshard_voucher(src_node, envelope))
        elif operation == Opcode.SNAPSHOT_REQUEST:
            self.env.process(self._serve_snapshot_request(src_node, envelope))
        elif operation == Opcode.LEDGER_REQUEST:
            self.env.process(self._serve_ledger_request(src_node, envelope))
        elif operation == Opcode.CELL_SYNC:
            self.env.process(self._serve_sync(src_node, envelope))
        elif operation == Opcode.CELL_EXCLUDE:
            self.env.process(self.membership.handle_proposal(src_node, envelope))
        elif operation == Opcode.CELL_EXCLUDE_VOTE:
            self.membership.handle_vote(envelope)
        elif operation == Opcode.CELL_REJOIN:
            self.env.process(self.membership.handle_rejoin(src_node, envelope))
        elif operation == Opcode.MEMBERSHIP_UPDATE:
            self.membership.handle_update(envelope)
        elif operation in (Opcode.CELL_SYNC_STATE, Opcode.CELL_REJOIN_ACK, Opcode.PONG):
            self.membership.resolve_reply(envelope)
        elif operation == Opcode.PING:
            self._reply(src_node, envelope, Opcode.PONG, {"node": self.node_name})
        else:
            self.metrics.increment(f"{self.node_name}/unhandled_{operation.value}")

    def _reply(
        self, dst_node: str, request: Envelope, operation: Opcode, data: dict[str, Any]
    ) -> None:
        """Sign and send a reply to ``request`` (crashed cells stay silent)."""
        if self.fault.crashed:
            return
        reply = Envelope.create(
            signer=self.signer,
            recipient=request.sender,
            operation=operation,
            data=data,
            timestamp=self.env.now,
            nonce=self.nonces.next(),
            reply_to=request.nonce,
        )
        size = reply.byte_size()
        if request.sender in self._client_nodes or operation in (
            Opcode.TX_RECEIPT,
            Opcode.TX_ERROR,
            Opcode.QUERY_RESULT,
            Opcode.SUBSCRIBE_ACK,
        ):
            self.subscriptions.record_traffic(request.sender, size)
        self.network.send(self.node_name, dst_node, reply, size)

    # ------------------------------------------------------------------
    # Client transaction servicing (Fig. 7 steps 1-4)
    # ------------------------------------------------------------------
    def _admit_ingress(self) -> bool:
        """Admission gate: take an inflight slot or shed the arrival.

        Runs *before* signature verification and ledger admission — the
        point of load shedding is to refuse work before paying for it,
        and a shed transaction must leave no protocol trace (no ledger
        entry, no forwards, no state), so the oracles never see it.
        Returns ``False`` when the arrival must be shed.
        """
        if self.recovering:
            # Mid-resync the cell holds half-restored state: servicing a
            # transaction from it could admit on top of a ledger that is
            # about to be truncated or replayed.  Shed with the same
            # OVERLOADED outcome as backpressure — clients retry
            # elsewhere, and no protocol trace is left.
            self._shed_recovering += 1
            self.metrics.increment(f"{self.node_name}/transactions_shed_recovering")
            return False
        if self.max_inflight is not None and self._inflight >= self.max_inflight:
            self._shed_count += 1
            self.metrics.increment(f"{self.node_name}/transactions_shed")
            return False
        self._inflight += 1
        self._inflight_peak = max(self._inflight_peak, self._inflight)
        return True

    def _serve_transaction(self, src_node: str, envelope: Envelope) -> Generator[Event, Any, None]:
        started = self.env.now
        if not self._admit_ingress():
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": OVERLOADED_ERROR, "shed": True},
            )
            return
        try:
            yield from self._serve_admitted_transaction(src_node, envelope, started)
        finally:
            self._inflight -= 1

    def _serve_admitted_transaction(
        self, src_node: str, envelope: Envelope, started: float
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))

        if not envelope.verify() or envelope.recipient != self.address:
            self.metrics.increment(f"{self.node_name}/auth_failures")
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": "authentication failed"})
            return
        if self.fault.is_censored(envelope):
            # A censoring cell silently drops the transaction (Section V-B).
            self.metrics.increment(f"{self.node_name}/censored")
            return
        try:
            self.subscriptions.check_access(envelope.sender)
        except SubscriptionError as exc:
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": str(exc)})
            return

        result = yield from self._service_pipeline(envelope)
        if result.aborted:
            # The cell crashed mid-service; it stays silent.
            return
        if result.admit_error is not None:
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": result.admit_error})
            return

        self.subscriptions.record_transaction(envelope.sender)

        if result.confirmed:
            self.metrics.increment(f"{self.node_name}/transactions_confirmed")
            self.metrics.record_latency(f"{self.node_name}/service_latency", started, self.env.now)
            self._reply(
                src_node, envelope, Opcode.TX_RECEIPT, {"receipt": result.receipt.to_wire()}
            )
            return

        # Failure path: the transaction reverts from the client's viewpoint.
        if result.mismatched:
            self.metrics.increment(f"{self.node_name}/fingerprint_mismatches")
        self.metrics.increment(f"{self.node_name}/transactions_failed")
        self._reply(
            src_node,
            envelope,
            Opcode.TX_ERROR,
            {
                "error": result.failure_reason(),
                "tx_id": result.entry.tx_id,
                "missing_cells": [address.hex() for address in result.missing],
                "mismatched_cells": [address.hex() for address in result.mismatched],
            },
        )

    def _service_pipeline(self, envelope: Envelope) -> Generator[Event, Any, _ServiceResult]:
        """Admit, replicate, and aggregate one transaction (Fig. 7 steps 2-4).

        The shared core of transaction servicing: admission under the
        ledger mutex, forwarding to every active peer, local execution,
        confirmation collection against the forwarding deadline, and
        fingerprint aggregation into a multi-signature receipt.  Used by
        the client-facing ``TX_SUBMIT`` path and by the cross-shard
        gateway (which services the inner prepare/commit/abort
        transactions of a two-phase cross-shard commit); only the reply
        that reports the returned :class:`_ServiceResult` differs.
        """
        # Admission: the ordering point, under the ledger mutex.
        yield self.ledger.mutex.request()
        try:
            if self.in_report_stage:
                yield self._stage_resume
            cycle = self.consensus.cycle_of(self.env.now)
            try:
                entry = self.ledger.admit(envelope, cycle)
            except LedgerError as exc:
                return _ServiceResult(admit_error=str(exc), cycle=cycle)
        finally:
            self.ledger.mutex.release()

        # Forward to every active consortium peer — plus any rejoiner this
        # cell agreed to readmit whose commit is still in flight.  Without
        # the provisional targets, everything admitted between the rejoin
        # ack and the readmit commit would silently never reach the
        # rejoiner (it is not in the active view yet).  Provisional
        # targets buffer the forward mid-resync and are *not* part of the
        # confirmation quorum, so they never gate the receipt.
        active_peers = self.active_peer_nodes()
        forward_targets = dict(active_peers)
        for address, node in self.membership.provisional_forward_targets().items():
            forward_targets.setdefault(address, node)
        pending = _PendingTransaction(self.env, entry.tx_id, set(active_peers))
        self._pending[entry.tx_id] = pending
        for peer_address, peer_node in forward_targets.items():
            yield from self.cpu.use(self.service_model.forward_cpu_per_cell)
            if self.fault.crashed:
                return _ServiceResult(entry=entry, cycle=cycle, aborted=True)
            if self.batcher is not None:
                # Batched pipeline: the client envelope joins this peer's next
                # batch flush instead of costing a dedicated network message.
                self.batcher.queue_forward(peer_node, peer_address, envelope)
                continue
            forward = Envelope.create(
                signer=self.signer,
                recipient=peer_address,
                operation=Opcode.TX_FORWARD,
                data={"client_envelope": envelope.to_wire()},
                timestamp=self.env.now,
                nonce=self.nonces.next(),
            )
            self.network.send(self.node_name, peer_node, forward, forward.byte_size())

        # Execute locally while peers work in parallel.
        outcome = yield from self._execute_entry(entry)

        # Wait for all confirmations or the forwarding deadline.
        if active_peers:
            deadline = self.env.timeout(self.invariants.forwarding_deadline)
            yield self.env.any_of([pending.all_received, deadline])
        self._pending.pop(entry.tx_id, None)

        # The service cell checks every returned fingerprint (Fig. 7 step 4);
        # the paper attributes most of this step's cost to re-running the
        # external fingerprinting tool per confirmation.
        if active_peers:
            yield self.env.timeout(
                self.service_model.aggregate_overhead_per_cell * len(active_peers)
            )

        missing = [address for address in active_peers if address not in pending.confirmations]
        mismatched: list[Address] = []
        rejected: list[Confirmation] = []
        expected_fingerprint = outcome.execution_fingerprint_hex()
        for address, confirmation in pending.confirmations.items():
            self.consensus.record_success(address)
            if confirmation.status != "executed":
                rejected.append(confirmation)
            elif confirmation.fingerprint_hex != expected_fingerprint:
                mismatched.append(address)
        for address in missing:
            newly_excluded = self.consensus.record_miss(address, cycle)
            if newly_excluded:
                self.metrics.increment(f"{self.node_name}/cells_excluded")
                # Spread the observation: open a consortium-wide vote so the
                # other cells stop forwarding to the dead peer as well.
                self.membership.propose_exclusion(
                    address, cycle, reason="forwarding deadline missed"
                )

        receipt: Optional[AggregatedReceipt] = None
        if outcome.ok and not missing and not mismatched and not rejected:
            own_confirmation = Confirmation.create(
                self.signer,
                tx_id=entry.tx_id,
                contract=outcome.contract,
                fingerprint_hex=expected_fingerprint,
                status="executed",
                timestamp=self.env.now,
            )
            receipt = AggregatedReceipt(
                tx_id=entry.tx_id,
                contract=outcome.contract,
                method=outcome.method,
                result=outcome.result,
                service_cell=self.address,
                fingerprint_hex=expected_fingerprint,
                cycle=cycle,
                submitted_at=envelope.payload.timestamp,
                completed_at=self.env.now,
                confirmations=[own_confirmation] + list(pending.confirmations.values()),
            )
        return _ServiceResult(
            entry=entry,
            outcome=outcome,
            cycle=cycle,
            receipt=receipt,
            missing=missing,
            mismatched=mismatched,
            rejected=rejected,
        )

    @staticmethod
    def _failure_reason(
        outcome: ExecutionOutcome,
        missing: list[Address],
        mismatched: list[Address],
        rejected: list[Confirmation],
    ) -> str:
        if not outcome.ok:
            return outcome.error or "execution rejected"
        if rejected:
            return rejected[0].error or "execution rejected by a consortium cell"
        if missing:
            return "forwarding deadline missed by one or more cells"
        if mismatched:
            return "fingerprint mismatch across consortium cells"
        return "transaction reverted"

    # ------------------------------------------------------------------
    # Forwarded transactions from other cells (Fig. 7 step 3)
    # ------------------------------------------------------------------
    def _process_forwarded(self, src_node: str, forward: Envelope) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not forward.verify() or not self.invariants.is_cell(forward.sender):
            self.metrics.increment(f"{self.node_name}/forward_auth_failures")
            return
        try:
            client_envelope = Envelope.from_wire(forward.data["client_envelope"])
        except (KeyError, ValueError) as exc:
            self.metrics.increment(f"{self.node_name}/malformed_forwards")
            return
        yield from self._handle_forwarded(src_node, forward.sender, client_envelope, forward.nonce)

    def _process_forward_batch(
        self, src_node: str, batch_envelope: Envelope
    ) -> Generator[Event, Any, None]:
        """Authenticate one batch envelope, then fan out its transactions.

        The authentication overhead is paid once per batch — this is where
        the batched pipeline saves cell time on top of network messages.
        Each inner transaction still runs in its own process (parallel up to
        the service model's invocation limit), exactly like singletons.
        """
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not batch_envelope.verify() or not self.invariants.is_cell(batch_envelope.sender):
            self.metrics.increment(f"{self.node_name}/forward_auth_failures")
            return
        try:
            client_envelopes = ForwardBatch.from_data(batch_envelope.data).envelopes()
        except BatchError:
            self.metrics.increment(f"{self.node_name}/malformed_forwards")
            return
        for client_envelope in client_envelopes:
            self.env.process(
                self._handle_forwarded(
                    src_node, batch_envelope.sender, client_envelope, batch_envelope.nonce
                )
            )

    def _handle_forwarded(
        self,
        src_node: str,
        origin: Address,
        client_envelope: Envelope,
        reply_nonce: str,
    ) -> Generator[Event, Any, None]:
        """Admit, execute, and confirm one forwarded client transaction."""
        if self.fault.crashed:
            # The cell crashed after the forward (or its batch) was already
            # delivered: drop the work exactly as per-transaction traffic
            # arriving after the crash would have been dropped.
            return
        if self.recovering:
            # Mid-resync the ledger must stay aligned with the donor's
            # stream (the replay path hard-fails on interleaved local
            # admissions), so park the forward and re-handle it once the
            # resync settles.  Recovery completes well inside the
            # forwarding deadline, so the confirmation still reaches the
            # origin in time; if the recovery fails, the re-crashed cell
            # drops the buffer exactly like in-flight traffic at a crash.
            self._recovery_forward_buffer.append(
                (src_node, origin, client_envelope, reply_nonce)
            )
            return
        if not client_envelope.verify():
            self._confirm(src_node, origin, reply_nonce, client_envelope.payload.hash_hex(),
                          contract="", fingerprint_hex="0x" + "00" * 32,
                          status="rejected", error="client signature invalid")
            return
        if self.fault.extra_confirm_delay:
            self.fault.record("delay", seconds=self.fault.extra_confirm_delay)
            yield self.env.timeout(self.fault.extra_confirm_delay)
        if self.fault.crashed:
            # Crashed while the transaction was waiting in this cell: it is
            # never admitted, exactly as if the envelope had been dropped.
            return

        duplicate = None
        yield self.ledger.mutex.request()
        try:
            if self.in_report_stage:
                yield self._stage_resume
            cycle = self.consensus.cycle_of(self.env.now)
            try:
                entry = self.ledger.admit(client_envelope, cycle)
            except LedgerError:
                # Already admitted: a duplicate submission through another
                # cell, or a forward drained from the recovery buffer whose
                # entry the post-readmit backfill admitted first.
                duplicate = self.ledger.get(client_envelope.payload.hash_hex())
        finally:
            self.ledger.mutex.release()

        if duplicate is not None:
            # Report the recorded outcome instead of re-executing — but an
            # entry that is merely *admitted* has an execution still in
            # flight (or about to be replayed); calling it rejected would
            # manufacture a spurious failed confirmation.  Wait it out,
            # bounded by the forwarding deadline the origin is under
            # anyway.
            wait_deadline = self.env.now + self.invariants.forwarding_deadline
            while duplicate.status == "admitted" and self.env.now < wait_deadline:
                yield self.env.timeout(0.01)
            if duplicate.status == "executed":
                # The origin compares the order-independent *execution*
                # fingerprint, not the stored post-execution state
                # fingerprint — recompute it from the recorded outcome.
                recorded = ExecutionOutcome(
                    tx_id=duplicate.tx_id,
                    contract=duplicate.contract or "",
                    method=duplicate.envelope.data.get("method", ""),
                    status="executed",
                    result=duplicate.result,
                    error=duplicate.error,
                    fingerprint=duplicate.fingerprint or b"",
                )
                self._confirm(
                    src_node, origin, reply_nonce, duplicate.tx_id,
                    duplicate.contract or "", recorded.execution_fingerprint_hex(),
                    status="executed", error=duplicate.error,
                )
            else:
                self._confirm(
                    src_node, origin, reply_nonce, duplicate.tx_id,
                    duplicate.contract or "", "0x" + "00" * 32,
                    status="rejected",
                    error=duplicate.error or "duplicate transaction",
                )
            return

        outcome = yield from self._execute_entry(entry)
        self._confirm(
            src_node,
            origin,
            reply_nonce,
            outcome.tx_id,
            outcome.contract,
            outcome.execution_fingerprint_hex(),
            status=outcome.status,
            error=outcome.error,
        )

    def drain_recovery_forwards(self) -> None:
        """Re-handle the forwards that arrived mid-resync.

        Called by the recovery coordinator once ``recovering`` clears.
        After a *failed* recovery the cell is crashed again and the
        buffered work is dropped, exactly like in-flight traffic at a
        crash; after a successful one each forward runs through the
        normal handler — entries the backfill already admitted take the
        duplicate path and confirm from the recorded outcome.
        """
        buffered, self._recovery_forward_buffer = self._recovery_forward_buffer, []
        if self.fault.crashed:
            return
        for src_node, origin, client_envelope, reply_nonce in buffered:
            self.env.process(
                self._handle_forwarded(src_node, origin, client_envelope, reply_nonce)
            )

    def _confirm(
        self,
        dst_node: str,
        origin: Address,
        reply_nonce: str,
        tx_id: str,
        contract: str,
        fingerprint_hex: str,
        status: str,
        error: Optional[str] = None,
    ) -> None:
        """Send a signed confirmation back to the service cell at ``origin``.

        A cell that crashed between executing the transaction and this point
        sends nothing — matching what its peers observe in either pipeline
        mode (the batch dispatcher applies the same gate at flush time).
        """
        if self.fault.crashed:
            return
        if self.fault.equivocate and status == "executed":
            # Equivocation: sign a *different* execution fingerprint for
            # roughly half the service cells (split deterministically by
            # the origin address), so two honest peers end up holding
            # contradictory signed confirmations for the same execution.
            if int(origin.hex()[-1], 16) % 2 == 0:
                fingerprint_hex = _flip_fingerprint(fingerprint_hex)
                self.fault.record(
                    "equivocate", channel="confirmation", tx_id=tx_id, to=origin.hex()
                )
        confirmation = Confirmation.create(
            self.signer,
            tx_id=tx_id,
            contract=contract,
            fingerprint_hex=fingerprint_hex,
            status=status,
            timestamp=self.env.now,
            error=error,
        )
        if self.batcher is not None:
            # The confirmation joins the next batch owed to the service cell;
            # routing at the receiver is by tx_id, so no reply_to is needed.
            self.batcher.queue_confirmation(dst_node, origin, confirmation)
            return
        opcode = Opcode.TX_CONFIRM if status == "executed" else Opcode.TX_REJECT
        reply = Envelope.create(
            signer=self.signer,
            recipient=origin,
            operation=opcode,
            data={"confirmation": confirmation.to_wire()},
            timestamp=self.env.now,
            nonce=self.nonces.next(),
            reply_to=reply_nonce,
        )
        self.network.send(self.node_name, dst_node, reply, reply.byte_size())

    def _accept_confirmation(self, envelope: Envelope) -> None:
        """Handle TX_CONFIRM / TX_REJECT arriving at the service cell."""
        if not envelope.verify() or not self.invariants.is_cell(envelope.sender):
            self.metrics.increment(f"{self.node_name}/confirm_auth_failures")
            return
        try:
            confirmation = Confirmation.from_wire(envelope.data["confirmation"])
        except (KeyError, ValueError):
            self.metrics.increment(f"{self.node_name}/malformed_confirmations")
            return
        self._register_confirmation(envelope.sender, confirmation)

    def _accept_confirmation_batch(self, envelope: Envelope) -> None:
        """Handle a TX_CONFIRM_BATCH arriving at the service cell."""
        if not envelope.verify() or not self.invariants.is_cell(envelope.sender):
            self.metrics.increment(f"{self.node_name}/confirm_auth_failures")
            return
        try:
            batch = ConfirmationBatch.from_data(envelope.data)
        except ReceiptError:
            self.metrics.increment(f"{self.node_name}/malformed_confirmations")
            return
        for confirmation in batch.confirmations:
            self._register_confirmation(envelope.sender, confirmation)

    def _register_confirmation(self, sender: Address, confirmation: Confirmation) -> None:
        """Verify one confirmation and route it to its waiting transaction."""
        if confirmation.cell != sender or not confirmation.verify():
            self.metrics.increment(f"{self.node_name}/confirm_auth_failures")
            return
        pending = self._pending.get(confirmation.tx_id)
        if pending is not None:
            pending.add(confirmation)

    # ------------------------------------------------------------------
    # Local execution (shared by service and forwarded paths)
    # ------------------------------------------------------------------
    def _execute_entry(self, entry: LedgerEntry) -> Generator[Event, Any, ExecutionOutcome]:
        if self.lanes is None:
            # Legacy serial schedule: the execution stage gates on the
            # invoker pool only (conflict-oblivious).
            yield self.invokers.request()
            try:
                yield self.env.timeout(self.service_model.invoke_overhead.sample(self.rng))
                yield from self.cpu.use(self.service_model.invoke_cpu)
            finally:
                self.invokers.release()
            outcome = self.executor.execute_safely(entry)
        else:
            # Lane-parallel schedule: the transaction holds an execution
            # lane for its whole invocation, and the conflict gate
            # guarantees no conflicting transaction is in flight with it.
            yield self.lanes.acquire(entry)
            try:
                lane = self.lanes.granted(entry)
                yield self.env.timeout(self.service_model.invoke_overhead.sample(self.rng))
                yield from self.cpu.use(self.service_model.invoke_cpu)
                outcome = self.executor.execute_safely(entry, lane=lane)
            finally:
                self.lanes.release(entry)
        if self.fault.tamper_state and outcome.ok:
            # A compromised cell silently corrupts its contract data; its
            # fingerprints now diverge from the honest cells.
            contract = self.contracts.get(outcome.contract)
            contract.store.put("__tampered__", self.env.now)
            self.fault.record("tamper_state", contract=outcome.contract)
            outcome = ExecutionOutcome(
                tx_id=outcome.tx_id,
                contract=outcome.contract,
                method=outcome.method,
                status=outcome.status,
                result=outcome.result,
                error=outcome.error,
                fingerprint=contract.fingerprint(),
                access=outcome.access,
            )
        if outcome.ok:
            self.ledger.mark_executed(
                outcome.tx_id, outcome.contract, outcome.result, outcome.fingerprint,
                access=outcome.access,
            )
            self.metrics.increment(f"{self.node_name}/transactions_executed")
        else:
            self.ledger.mark_rejected(
                outcome.tx_id, outcome.contract, outcome.error or "", access=outcome.access
            )
            self.metrics.increment(f"{self.node_name}/transactions_rejected")
        return outcome

    # ------------------------------------------------------------------
    # Subscriptions and queries
    # ------------------------------------------------------------------
    def _serve_subscription(self, src_node: str, envelope: Envelope) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not envelope.verify():
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": "authentication failed"})
            return
        subscription = self.subscriptions.subscribe(envelope.sender, self.env.now)
        self._reply(
            src_node,
            envelope,
            Opcode.SUBSCRIBE_ACK,
            {
                "cell": self.address.hex(),
                "opened_at": subscription.opened_at,
                "price_per_mbyte": subscription.policy.price_per_mbyte,
            },
        )

    def _serve_query(self, src_node: str, envelope: Envelope) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not envelope.verify():
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": "authentication failed"})
            return
        data = envelope.data
        try:
            result = self.executor.query(
                data.get("contract", ""), data.get("view", ""), data.get("args", {})
            )
            self._reply(src_node, envelope, Opcode.QUERY_RESULT, {"result": result})
        except Exception as exc:  # noqa: BLE001 - report query errors to the client
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": str(exc)})

    # ------------------------------------------------------------------
    # Cross-shard gateway (contract-state sharding, two-phase commit)
    # ------------------------------------------------------------------
    def _serve_xshard(self, src_node: str, envelope: Envelope) -> Generator[Event, Any, None]:
        """Serve one phase of a cross-shard transaction for this group.

        The coordinator's outer envelope carries this group's inner
        client-signed transaction (hold, settle/credit, or refund/cancel).
        The gateway enforces the 2PC state machine — no commit without a
        verified certificate of every participant's prepare vote, no
        decision reversal — and services the inner transaction through
        the exact pipeline directly submitted transactions use, so the
        group's ledgers, receipts, and fingerprints treat cross-shard
        traffic like any other traffic.  The reply is the gateway's
        signed :class:`CrossShardVote` for the phase.

        Admission control covers *prepares* only: a prepare is new work,
        and shedding it before any escrow hold exists simply aborts the
        cross-shard transaction (the coordinator reads the ``TX_ERROR``
        as a no-vote).  Commit/abort decisions are never shed — they
        complete a transaction whose funds are already held, and the
        timeout contingencies expect the decision to land eventually.
        """
        prepare = envelope.operation == Opcode.XSHARD_PREPARE
        if prepare and not self._admit_ingress():
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": OVERLOADED_ERROR, "shed": True},
            )
            return
        try:
            yield from self._serve_xshard_admitted(src_node, envelope)
        finally:
            if prepare:
                self._inflight -= 1

    def _serve_xshard_admitted(
        self, src_node: str, envelope: Envelope
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not envelope.verify() or envelope.recipient != self.address:
            self.metrics.increment(f"{self.node_name}/auth_failures")
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": "authentication failed"})
            return
        if self.shard_group is None or self._shard_directory is None:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": "this deployment is not sharded"},
            )
            return
        if not self.is_xshard_gateway:
            # One authoritative 2PC state machine per group: a sibling
            # cell serving the same xtx could be tricked into signing a
            # verdict that contradicts the gateway's.
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": f"{self.node_name} is not the cross-shard gateway of its group"},
            )
            return
        try:
            # Cross-shard phases are client traffic: the same access
            # subscription that gates TX_SUBMIT gates them.
            self.subscriptions.check_access(envelope.sender)
        except SubscriptionError as exc:
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": str(exc)})
            return

        phase = {
            Opcode.XSHARD_PREPARE: "prepare",
            Opcode.XSHARD_COMMIT: "commit",
            Opcode.XSHARD_ABORT: "abort",
        }[envelope.operation]
        try:
            if phase == "prepare":
                body: Any = CrossShardPrepare.from_data(envelope.data)
            else:
                body = CrossShardDecision.from_data(envelope.data)
                if (phase == "commit") != (body.decision == "commit"):
                    raise CrossShardError("decision does not match the envelope opcode")
        except CrossShardError as exc:
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": str(exc)})
            return
        if body.group != self.shard_group:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": f"cell group {self.shard_group} is not group {body.group}"},
            )
            return

        refusal = self._xshard_refusal(phase, body)
        if refusal is not None:
            # Protocol refusals are plain errors, never signed votes: a
            # signed no-vote is abort *evidence*, and a coordinator must
            # not be able to manufacture one by, say, sending a duplicate
            # prepare to a group that actually holds funds.
            self._reply(
                src_node, envelope, Opcode.TX_ERROR, {"error": refusal, "xtx": body.xtx}
            )
            return

        try:
            inner = Envelope.from_wire(body.transaction)
        except Exception:  # noqa: BLE001 - malformed inner envelopes vote no
            inner = None
        if inner is None or (
            not inner.verify()
            or inner.sender != envelope.sender
            or inner.operation != Opcode.TX_SUBMIT
            or inner.recipient != self.address
        ):
            # The inner transaction must be an ordinary TX_SUBMIT, signed
            # by the same client that coordinates the cross-shard
            # transaction (a coordinator can only move funds it could
            # have moved with direct submissions), and addressed to
            # *this* cell — otherwise one signed envelope could be
            # replayed onto several groups, breaking the namespace
            # partition the routing layer guarantees.  A failed prepare
            # poisons the xtx state so a later well-formed prepare cannot
            # coexist with this signed no-vote (which is abort evidence).
            if phase == "prepare":
                self._xshard_state[body.xtx] = "prepare-failed"
            self._xshard_vote(
                src_node, envelope, body.xtx, body.participants, phase, ok=False,
                error="inner transaction invalid for this gateway",
            )
            return
        if self.fault.is_censored(inner):
            # A censoring cell drops cross-shard traffic exactly as it
            # drops direct submissions (Section V-B).
            self.metrics.increment(f"{self.node_name}/censored")
            return

        result = yield from self._service_pipeline(inner)
        if result.aborted:
            return
        ok = result.confirmed
        if result.admit_error is None:
            # Bill the inner transaction exactly like a direct TX_SUBMIT
            # (which records serviced transactions whether or not the
            # confirmation round succeeded).
            self.subscriptions.record_transaction(envelope.sender)
        if phase == "prepare":
            self._xshard_state[body.xtx] = "prepared" if ok else "prepare-failed"
        elif ok:
            self._xshard_state[body.xtx] = "committed" if phase == "commit" else "aborted"
        self.metrics.increment(f"{self.node_name}/xshard_{phase}_{'ok' if ok else 'failed'}")
        self._xshard_vote(
            src_node, envelope, body.xtx, body.participants, phase, ok=ok,
            receipt=result.receipt.to_wire() if result.receipt is not None else None,
            error=None if ok else result.failure_reason(),
        )

    def _xshard_refusal(self, phase: str, body: Any) -> Optional[str]:
        """Why this phase must be refused outright (None to proceed).

        Encodes the per-xtx 2PC state machine: one prepare, then exactly
        one of commit/abort, and a commit only with a verified
        certificate.  The contract-level escrow status machine enforces
        the same transitions group-wide; this check merely refuses bad
        decisions before they waste a full confirmation round.
        """
        state = self._xshard_state.get(body.xtx)
        if phase == "prepare":
            if state is not None:
                return f"cross-shard transaction {body.xtx} was already prepared"
            return None
        if state is None or state == "prepare-failed":
            return f"no prepared cross-shard transaction {body.xtx}"
        if state in ("committed", "aborted"):
            return f"cross-shard transaction {body.xtx} was already {state}"
        # Both decisions need evidence: commit a full yes-certificate,
        # abort at least one genuine no-vote (mutually exclusive).
        assert self._shard_directory is not None
        certificate_error = body.certificate_error(self._shard_directory)
        if certificate_error is not None:
            # The directory-verified certificate caught a half-commit
            # (forged, missing, or wrong-shaped votes) — count it so the
            # chaos attribution oracle can name this mechanism.
            self.metrics.increment(f"{self.node_name}/xshard_certificate_refusals")
            return certificate_error
        return None

    def _xshard_vote(
        self,
        src_node: str,
        request: Envelope,
        xtx: str,
        participants: tuple[int, ...],
        phase: str,
        *,
        ok: bool,
        receipt: Optional[dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Sign and send this gateway's vote / acknowledgement for a phase."""
        assert self.shard_group is not None
        if self.fault.lying_gateway in ("forge", "withhold") and phase == "prepare":
            # The "voucher" lying mode corrupts voucher mints instead of
            # 2PC prepare votes (see _voucher_reply); it must leave the
            # vote path honest so its probe traffic isolates the forgery.
            mode = self.fault.lying_gateway
            self.fault.record("lying_gateway", mode=mode, xtx=xtx, honest_ok=ok)
            self.metrics.increment(f"{self.node_name}/xshard_votes_{mode}d")
            if mode == "withhold":
                # The gateway never answers: no signed yes-vote can exist,
                # so no commit certificate over this group can assemble.
                return
            # Forge: an always-yes vote whose signature cannot verify —
            # the coordinator and every certificate check must refuse it
            # (destroying a genuine no-vote's abort evidence on the way).
            body = CrossShardVote.signing_body(
                self.signer.address, xtx, self.shard_group, tuple(participants),
                phase, True,
            )
            forged = CrossShardVote(
                voter=self.signer.address,
                xtx=xtx,
                group=self.shard_group,
                participants=tuple(participants),
                phase=phase,
                ok=True,
                signature=bytes(byte ^ 0xFF for byte in self.signer.sign(body)),
                scheme=self.signer.scheme,
            )
            self._reply(
                src_node, request, Opcode.XSHARD_VOTE,
                forged.to_data(receipt=receipt, error=error),
            )
            return
        vote = CrossShardVote.create(
            self.signer, xtx, self.shard_group, participants, phase, ok
        )
        self._reply(
            src_node, request, Opcode.XSHARD_VOTE, vote.to_data(receipt=receipt, error=error)
        )

    # ------------------------------------------------------------------
    # Cross-shard voucher fast path (one-way credit vouchers)
    # ------------------------------------------------------------------
    def _serve_xshard_voucher(
        self, src_node: str, envelope: Envelope
    ) -> Generator[Event, Any, None]:
        """Serve one leg of the voucher fast path for this group.

        Both legs are new work for their group (unlike 2PC decisions,
        which complete an already-held escrow), so both pass admission
        control: a shed mint simply fails the transfer before any value
        moves, and a shed redeem behaves exactly like a lost voucher —
        the value stays in transit until the source holder reclaims it.
        """
        if not self._admit_ingress():
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": OVERLOADED_ERROR, "shed": True},
            )
            return
        try:
            yield from self._serve_xshard_voucher_admitted(src_node, envelope)
        finally:
            self._inflight -= 1

    def _serve_xshard_voucher_admitted(
        self, src_node: str, envelope: Envelope
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not envelope.verify() or envelope.recipient != self.address:
            self.metrics.increment(f"{self.node_name}/auth_failures")
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": "authentication failed"})
            return
        if self.shard_group is None or self._shard_directory is None:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": "this deployment is not sharded"},
            )
            return
        if not self.is_xshard_gateway:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": f"{self.node_name} is not the cross-shard gateway of its group"},
            )
            return
        try:
            self.subscriptions.check_access(envelope.sender)
        except SubscriptionError as exc:
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": str(exc)})
            return
        try:
            body = CrossShardVoucherTransfer.from_data(envelope.data)
        except CrossShardError as exc:
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": str(exc)})
            return
        if body.group != self.shard_group:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": f"cell group {self.shard_group} is not group {body.group}"},
            )
            return
        if body.phase == "mint":
            yield from self._voucher_mint(src_node, envelope, body)
        else:
            yield from self._voucher_redeem(src_node, envelope, body)

    def _voucher_inner(
        self, envelope: Envelope, body: CrossShardVoucherTransfer, method: str
    ) -> Optional[Envelope]:
        """Parse and authenticate a voucher leg's inner transaction.

        Same rules as the 2PC inner transactions — client-signed
        ``TX_SUBMIT`` from the coordinating sender, addressed to this
        cell — plus the leg's method and xtx must match the outer
        request, so a gateway never signs a voucher (or credits one)
        over a transaction that does something else.
        """
        try:
            inner = Envelope.from_wire(body.transaction)
        except Exception:  # noqa: BLE001 - malformed inner envelopes are refused
            return None
        if (
            not inner.verify()
            or inner.sender != envelope.sender
            or inner.operation != Opcode.TX_SUBMIT
            or inner.recipient != self.address
        ):
            return None
        data = inner.data
        if data.get("method") != method:
            return None
        if data.get("args", {}).get("xtx") != body.xtx:
            return None
        return inner

    def _voucher_mint(
        self, src_node: str, envelope: Envelope, body: CrossShardVoucherTransfer
    ) -> Generator[Event, Any, None]:
        """Service a voucher mint and reply with the signed voucher."""
        state = self._xshard_state.get(body.xtx)
        if state is not None:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": f"cross-shard transaction {body.xtx} was already used",
                 "xtx": body.xtx},
            )
            return
        inner = self._voucher_inner(envelope, body, "xshard_voucher_mint")
        if inner is not None:
            args = inner.data.get("args", {})
            try:
                recipient = str(args["to"])
                amount = int(args["amount"])
                expires_at = float(args["expires_at"])
            except (KeyError, TypeError, ValueError):
                inner = None
        if inner is None:
            # Refused before anything executes: no debit, no voucher,
            # and the xtx is poisoned against a later well-formed mint
            # (single-use ids, exactly as in the 2PC state machine).
            self._xshard_state[body.xtx] = "voucher-failed"
            self.metrics.increment(f"{self.node_name}/xshard_voucher_mint_failed")
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": "inner transaction invalid for this gateway", "xtx": body.xtx},
            )
            return
        if self.fault.is_censored(inner):
            self.metrics.increment(f"{self.node_name}/censored")
            return
        result = yield from self._service_pipeline(inner)
        if result.aborted:
            return
        ok = result.confirmed
        if result.admit_error is None:
            self.subscriptions.record_transaction(envelope.sender)
        self._xshard_state[body.xtx] = "voucher-minted" if ok else "voucher-failed"
        self.metrics.increment(
            f"{self.node_name}/xshard_voucher_mint_{'ok' if ok else 'failed'}"
        )
        if not ok:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": result.failure_reason() or "voucher mint failed",
                 "xtx": body.xtx},
            )
            return
        assert self.shard_group is not None and body.target_group is not None
        if self.fault.lying_gateway == "voucher":
            # The Byzantine voucher forger: the debit is real, but the
            # emitted voucher's signature cannot verify — every
            # directory check at the destination must refuse it, so the
            # value stays in transit and nothing credits.
            self.fault.record(
                "lying_gateway", mode="voucher", xtx=body.xtx, honest_ok=ok
            )
            self.metrics.increment(f"{self.node_name}/xshard_vouchers_forged")
            signing = CrossShardVoucher.signing_body(
                self.signer.address, body.xtx, self.shard_group, body.target_group,
                str(body.target_contract), recipient, amount, expires_at,
            )
            voucher = CrossShardVoucher(
                issuer=self.signer.address,
                xtx=body.xtx,
                source_group=self.shard_group,
                target_group=body.target_group,
                contract=str(body.target_contract),
                recipient=recipient,
                amount=amount,
                expires_at=expires_at,
                signature=bytes(byte ^ 0xFF for byte in self.signer.sign(signing)),
                scheme=self.signer.scheme,
            )
        else:
            voucher = CrossShardVoucher.create(
                self.signer, body.xtx, self.shard_group, body.target_group,
                str(body.target_contract), recipient, amount, expires_at,
            )
        if self.fault.drop_voucher:
            # The voucher is lost in flight: the debit stands, the reply
            # never leaves, and the source holder reclaims after the
            # deadline (the lost-voucher recovery path).
            self.fault.record("voucher_loss", xtx=body.xtx)
            self.metrics.increment(f"{self.node_name}/xshard_vouchers_dropped")
            return
        self._reply(
            src_node, envelope, Opcode.XSHARD_VOUCHER,
            {
                "phase": "minted",
                "xtx": body.xtx,
                "voucher": voucher.to_wire(),
                "receipt": result.receipt.to_wire() if result.receipt is not None else None,
            },
        )

    def _voucher_redeem(
        self, src_node: str, envelope: Envelope, body: CrossShardVoucherTransfer
    ) -> Generator[Event, Any, None]:
        """Verify a voucher against the directory and credit its recipient."""
        state = self._xshard_state.get(body.xtx)
        if state == "voucher-redeemed":
            # The redeemed-voucher registry: duplicate delivery is a
            # no-op acknowledged as such, never a second credit.
            self.metrics.increment(f"{self.node_name}/xshard_voucher_duplicates")
            self._reply(
                src_node, envelope, Opcode.XSHARD_VOUCHER,
                {"phase": "redeemed", "xtx": body.xtx, "duplicate": True},
            )
            return
        if state is not None:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": f"cross-shard transaction {body.xtx} was already used",
                 "xtx": body.xtx},
            )
            return
        try:
            voucher = CrossShardVoucher.from_wire(body.voucher or {})
        except CrossShardError as exc:
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": str(exc)})
            return
        refusal: Optional[str] = None
        if voucher.xtx != body.xtx:
            refusal = "voucher is for a different cross-shard transaction"
        elif voucher.target_group != self.shard_group:
            refusal = f"voucher targets group {voucher.target_group}, not this group"
        else:
            assert self._shard_directory is not None
            refusal = voucher.verify_against(self._shard_directory)
        if refusal is not None:
            # A forged (or misdirected) voucher dies here, before any
            # credit — the voucher analogue of certificate refusals,
            # counted for the chaos attribution oracle.
            self.metrics.increment(f"{self.node_name}/xshard_voucher_refusals")
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": refusal, "xtx": body.xtx},
            )
            return
        inner = self._voucher_inner(envelope, body, "xshard_voucher_redeem")
        if inner is not None:
            args = inner.data.get("args", {})
            if (
                str(args.get("to")) != voucher.recipient
                or args.get("amount") != voucher.amount
                or args.get("expires_at") != voucher.expires_at
                or inner.data.get("contract") != voucher.contract
            ):
                # The inner credit must spend exactly what the voucher
                # vouches for — nothing more, nowhere else.
                inner = None
        if inner is None:
            self._xshard_state[body.xtx] = "voucher-redeem-failed"
            self.metrics.increment(f"{self.node_name}/xshard_voucher_redeem_failed")
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": "inner transaction does not match the voucher", "xtx": body.xtx},
            )
            return
        if self.fault.is_censored(inner):
            self.metrics.increment(f"{self.node_name}/censored")
            return
        result = yield from self._service_pipeline(inner)
        if result.aborted:
            return
        ok = result.confirmed
        if result.admit_error is None:
            self.subscriptions.record_transaction(envelope.sender)
        self._xshard_state[body.xtx] = (
            "voucher-redeemed" if ok else "voucher-redeem-failed"
        )
        self.metrics.increment(
            f"{self.node_name}/xshard_voucher_redeem_{'ok' if ok else 'failed'}"
        )
        if not ok:
            self._reply(
                src_node, envelope, Opcode.TX_ERROR,
                {"error": result.failure_reason() or "voucher redeem failed",
                 "xtx": body.xtx},
            )
            return
        self._reply(
            src_node, envelope, Opcode.XSHARD_VOUCHER,
            {
                "phase": "redeemed",
                "xtx": body.xtx,
                "duplicate": False,
                "receipt": result.receipt.to_wire() if result.receipt is not None else None,
            },
        )
        if self.fault.duplicate_voucher:
            # The network redelivers the redeem: the registry answers it
            # as a duplicate without touching the pipeline — observable
            # through the metric, inert on state.
            self.fault.record("voucher_duplication", xtx=body.xtx)
            self.metrics.increment(f"{self.node_name}/xshard_voucher_duplicates")
            self._reply(
                src_node, envelope, Opcode.XSHARD_VOUCHER,
                {"phase": "redeemed", "xtx": body.xtx, "duplicate": True},
            )

    # ------------------------------------------------------------------
    # Auditor interface
    # ------------------------------------------------------------------
    def _serve_snapshot_request(self, src_node: str, envelope: Envelope) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not envelope.verify():
            self.metrics.increment(f"{self.node_name}/auditor_auth_failures")
            return
        cycle = envelope.data.get("cycle")
        if cycle is None and self.snapshots.latest_cycle is not None:
            cycle = self.snapshots.latest_cycle
        if cycle is None or not self.snapshots.has(int(cycle)):
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": f"no snapshot for cycle {cycle}"})
            return
        snapshot = self.snapshots.get(int(cycle))
        self._reply(
            src_node, envelope, Opcode.SNAPSHOT_RESPONSE, {"snapshot": snapshot.to_wire()}
        )

    def _serve_ledger_request(self, src_node: str, envelope: Envelope) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not envelope.verify():
            self.metrics.increment(f"{self.node_name}/auditor_auth_failures")
            return
        first = int(envelope.data.get("first_cycle", 0))
        last = int(envelope.data.get("last_cycle", first))
        segment = self.ledger.segment(first, last)
        self._reply(
            src_node,
            envelope,
            Opcode.LEDGER_RESPONSE,
            {"first_cycle": first, "last_cycle": last, "entries": segment},
        )

    # ------------------------------------------------------------------
    # Resync donor interface (crash recovery, Section V)
    # ------------------------------------------------------------------
    def _serve_sync(self, src_node: str, envelope: Envelope) -> Generator[Event, Any, None]:
        """Serve a recovering peer the snapshot + ledger tail it is missing.

        Any consortium cell may ask — including one this cell currently
        holds excluded, since the whole point of the request is to get back
        into the quorum.
        """
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        if not envelope.verify() or not self.invariants.is_cell(envelope.sender):
            self.metrics.increment(f"{self.node_name}/membership_auth_failures")
            return
        try:
            request = SyncRequest.from_data(envelope.data)
        except MembershipError as exc:
            self._reply(src_node, envelope, Opcode.TX_ERROR, {"error": str(exc)})
            return
        snapshot_wire = None
        start = request.since_sequence
        if request.delta_only:
            # Rejoin retries and the post-readmit backfill already carry
            # the snapshot from their first sync: ship only the entries
            # past the requester's head, so repeated catch-up rounds cost
            # bytes proportional to the gap, not to the state size.
            pass
        elif self.snapshots.latest_cycle is not None:
            latest = self.snapshots.latest()
            snapshot_wire = latest.to_wire(include_state=True)
            # If the snapshot predates what the requester already has, the
            # requester will roll back to the snapshot boundary — ship the
            # whole post-snapshot tail so it can re-execute forward again.
            start = min(start, latest.last_sequence + 1)
        bundle = SyncState(
            donor=self.address,
            snapshot=snapshot_wire,
            entries=tuple(self.ledger.sync_segment(start)),
            excluded=tuple(
                address.hex() for address in self.consensus.excluded_cells()
            ),
            head=len(self.ledger),
        )
        self.metrics.increment(f"{self.node_name}/syncs_served")
        self._reply(src_node, envelope, Opcode.CELL_SYNC_STATE, bundle.to_data())

    # ------------------------------------------------------------------
    # Report-cycle lifecycle (Fig. 6)
    # ------------------------------------------------------------------
    def _lifecycle(self) -> Generator[Event, Any, None]:
        while True:
            next_deadline = self.consensus.next_deadline(self.env.now)
            yield self.env.timeout(max(0.0, next_deadline - self.env.now))
            if self.fault.crashed or self.recovering:
                continue
            completed_cycle = self.consensus.cycle_of(self.env.now) - 1
            if completed_cycle < 0:
                continue
            yield from self._report_stage(completed_cycle)

    def _report_stage(self, completed_cycle: int) -> Generator[Event, Any, None]:
        # Enter the report stage: new executions queue until the snapshot
        # fingerprint is taken (Section III-D2).
        self.in_report_stage = True
        yield self.env.timeout(self.service_model.auth_overhead.sample(self.rng))
        entries = [entry for entry in self.ledger if entry.cycle <= completed_cycle]
        first_sequence = min((entry.sequence for entry in entries), default=0)
        last_sequence = max((entry.sequence for entry in entries), default=-1)
        snapshot = self.snapshots.take_snapshot(
            cycle=completed_cycle,
            timestamp=self.env.now,
            first_sequence=first_sequence,
            last_sequence=last_sequence,
        )
        # Execution resumes as soon as the fingerprint exists; the on-chain
        # submission continues in the background.
        self.in_report_stage = False
        resume, self._stage_resume = self._stage_resume, self.env.event()
        if not resume.triggered:
            resume.succeed()
        self.metrics.increment(f"{self.node_name}/snapshots_taken")

        if self.auto_report and self.eth is not None and self.registry_contract is not None:
            fingerprint_hex = snapshot.fingerprint_hex()
            if self.fault.tamper_fingerprint:
                fingerprint_hex = "0x" + bytes(32).hex()
                self.fault.record("tamper_fingerprint", cycle=completed_cycle)
            elif self.fault.equivocate:
                # The cell *anchors* one signed fingerprint while serving
                # auditors the honest snapshot behind another — the same
                # logical report, two payloads, both apparently valid.
                fingerprint_hex = _flip_fingerprint(fingerprint_hex)
                self.fault.record("equivocate", channel="anchor", cycle=completed_cycle)
            # The on-chain submission runs in the background: execution has
            # already resumed, and waiting for block inclusion here would
            # make the cell miss the next report deadline on slow chains.
            self.env.process(self._submit_report(completed_cycle, fingerprint_hex))

        # Execute contingency transactions submitted directly on-chain.
        yield from self._execute_contingencies()

    def _submit_report(self, cycle: int, fingerprint_hex: str) -> Generator[Event, Any, None]:
        receipt_event = self.eth.transact_and_wait(
            self.eth_key,
            self.registry_contract.address,
            "report",
            {"cycle": cycle, "fingerprint": fingerprint_hex},
        )
        receipt = yield receipt_event
        self._reports_submitted.append(
            {
                "cycle": cycle,
                "fingerprint": fingerprint_hex,
                "tx_hash": receipt.tx_hash,
                "gas_used": receipt.gas_used,
                "success": receipt.success,
                "reported_at": self.env.now,
            }
        )
        self.metrics.increment(f"{self.node_name}/reports_submitted")
        self.metrics.series(f"{self.node_name}/report_gas").add(receipt.gas_used)

    def _execute_contingencies(self) -> Generator[Event, Any, None]:
        if self.eth is None or self.registry_contract is None:
            return
        contingencies = self.eth.call(self.registry_contract.address, "all_contingencies")
        for wire in contingencies[self._contingencies_executed:]:
            try:
                envelope = Envelope.from_wire(wire)
            except Exception:  # noqa: BLE001 - a malformed contingency is skipped
                self._contingencies_executed += 1
                continue
            self._contingencies_executed += 1
            if not envelope.verify():
                continue
            tx_id = envelope.payload.hash_hex()
            if self.ledger.contains(tx_id):
                continue
            yield self.ledger.mutex.request()
            try:
                cycle = self.consensus.cycle_of(self.env.now)
                entry = self.ledger.admit(envelope, cycle, contingency=True)
            except LedgerError:
                continue
            finally:
                self.ledger.mutex.release()
            yield from self._execute_entry(entry)
            self.metrics.increment(f"{self.node_name}/contingencies_executed")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reports_submitted(self) -> list[dict[str, Any]]:
        """Snapshot reports this cell has anchored on Ethereum."""
        return list(self._reports_submitted)

    def statistics(self) -> dict[str, Any]:
        """Operational counters for this cell."""
        return {
            "cell": self.node_name,
            "address": self.address.hex(),
            "ledger": self.ledger.statistics(),
            "contracts": self.contracts.names(),
            "excluded_contracts": self.contracts.excluded(),
            "excluded_cells": [address.hex() for address in self.consensus.excluded_cells()],
            "snapshots": self.snapshots.retained_cycles(),
            "reports_submitted": len(self._reports_submitted),
            "contingencies_executed": self._contingencies_executed,
            "cpu_utilization": self.cpu.utilization(),
            "subscriber_count": len(self.subscriptions.subscribers()),
            "batching": self.batcher.statistics() if self.batcher is not None else None,
            "lanes": self.lanes.statistics() if self.lanes is not None else None,
            "admission": {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "peak_inflight": self._inflight_peak,
                "shed": self._shed_count,
                "shed_recovering": self._shed_recovering,
            },
            "shard_group": self.shard_group,
            "xshard_transactions": len(self._xshard_state),
            "recovering": self.recovering,
            "last_recovery": (
                {
                    "ok": self.recovery.last_result.ok,
                    "duration": self.recovery.last_result.duration,
                    "replayed": self.recovery.last_result.replayed,
                    "backfilled": self.recovery.last_result.backfilled,
                }
                if self.recovery.last_result is not None
                else None
            ),
        }
