"""Fault injection for the security scenarios of Section V.

A :class:`FaultPlan` attached to a cell makes it misbehave in controlled
ways so the integration tests and examples can demonstrate that the overlay
consensus detects or tolerates the behaviour:

* **crash** — the cell stops responding entirely (availability analysis,
  missed-deadline exclusion).
* **censor** — the cell silently drops transactions matching a predicate
  (the transaction-filtering attack of Section V-B).
* **tamper_fingerprint** — the cell reports a corrupted snapshot
  fingerprint to the anchor contract (consortium conspiracy / compromised
  cell, Sections V-C and V-D); auditors catch the mismatch.
* **tamper_state** — the cell mutates bContract state outside any
  transaction, so its execution fingerprints diverge from the honest cells.
* **delay** — the cell adds a fixed extra delay to every confirmation
  (deadline-miss exclusion).
* **equivocate** — the cell signs *different* payloads for the same
  logical message to different observers: its anchored snapshot
  fingerprint diverges from the snapshots it serves, and peers receive
  contradictory signed confirmations for the same execution.
* **lying_gateway** — a cell-group gateway forges (corrupted signature,
  always-yes) or withholds its signed 2PC prepare votes, or mints
  fast-path credit vouchers with corrupted signatures; the
  directory-verified certificates must refuse the half-commit (or the
  forged voucher).

Alongside the per-cell switches, this module defines the *scheduled* fault
vocabulary used by the chaos engine (:mod:`repro.chaos`): a
:class:`ScheduledFault` names one fault kind, its target cell (by group and
cell index), and the simulated time window it covers, and a
:class:`FaultSchedule` is a validated collection of them.  Both validate
their arguments at construction — a schedule naming a cell that does not
exist raises a clear :class:`FaultError` instead of silently never firing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..messages.envelope import Envelope

#: Predicate deciding whether a given transaction envelope is censored.
CensorPredicate = Callable[[Envelope], bool]


class FaultError(ValueError):
    """Raised for invalid fault plans or fault schedules."""


@dataclass
class FaultPlan:
    """Misbehaviour switches for one cell (all off by default)."""

    crashed: bool = False
    censor: Optional[CensorPredicate] = None
    tamper_fingerprint: bool = False
    tamper_state: bool = False
    extra_confirm_delay: float = 0.0
    #: Equivocation: the cell anchors a signed fingerprint that differs
    #: from the one backing the snapshots it serves, and signs divergent
    #: confirmations for the same execution to different peers.
    equivocate: bool = False
    #: Lying 2PC gateway: ``"forge"`` replaces every signed prepare vote
    #: with an always-yes vote carrying a corrupted signature;
    #: ``"withhold"`` never answers XSHARD_VOTE prepares at all;
    #: ``"voucher"`` mints fast-path credit vouchers with corrupted
    #: signatures (the destination's directory check must refuse them).
    lying_gateway: Optional[str] = None
    #: Voucher fast path: withhold the minted-voucher reply (the voucher
    #: is lost in flight; the escrowed value must reclaim cleanly).
    drop_voucher: bool = False
    #: Voucher fast path: answer a successful redeem a second time (the
    #: redeemed-voucher registry must make the duplicate a no-op).
    duplicate_voucher: bool = False
    #: Log of faults actually exercised, for assertions in tests.
    events: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.censor is not None and not callable(self.censor):
            raise FaultError("censor must be a callable predicate over envelopes")
        if self.lying_gateway is not None and self.lying_gateway not in LYING_GATEWAY_MODES:
            raise FaultError(
                f"lying_gateway must be None or one of {list(LYING_GATEWAY_MODES)}, "
                f"got {self.lying_gateway!r}"
            )
        if not isinstance(self.extra_confirm_delay, (int, float)) or isinstance(
            self.extra_confirm_delay, bool
        ):
            raise FaultError("extra_confirm_delay must be a number of seconds")
        if self.extra_confirm_delay < 0:
            raise FaultError(
                f"extra_confirm_delay cannot be negative, got {self.extra_confirm_delay!r}"
            )

    def record(self, kind: str, **details: Any) -> None:
        """Remember that a fault path fired."""
        self.events.append({"kind": kind, **details})

    def is_censored(self, envelope: Envelope) -> bool:
        """Whether this cell censors the given transaction."""
        if self.censor is None:
            return False
        censored = bool(self.censor(envelope))
        if censored:
            self.record("censor", tx_id=envelope.payload.hash_hex())
        return censored


def censor_sender(address_hex: str) -> CensorPredicate:
    """Censor every transaction originating from ``address_hex``."""
    normalized = address_hex.lower()

    def predicate(envelope: Envelope) -> bool:
        return envelope.sender.hex().lower() == normalized

    return predicate


def censor_method(contract: str, method: str) -> CensorPredicate:
    """Censor calls to one specific contract method (e.g. dividend withdrawal)."""

    def predicate(envelope: Envelope) -> bool:
        data = envelope.data
        return data.get("contract") == contract and data.get("method") == method

    return predicate


# ----------------------------------------------------------------------
# Scheduled faults (the chaos engine's fault vocabulary)
# ----------------------------------------------------------------------
#: Fault kinds the consortium must *tolerate*: a scenario carrying only
#: these is expected to pass its whole oracle stack.  ``crash_recover``
#: crashes the target at ``at`` and runs the full resync+rejoin recovery
#: at ``until``; ``crash_rejoin`` additionally scripts the consortium
#: exclusion of Section V while the cell is down; ``standby_activate``
#: bootstraps a provisioned standby cell at ``at``; ``censor_window``
#: drops one account's transactions on the target cell during
#: ``[at, until)``; ``delay_window`` adds a fixed sub-deadline
#: confirmation delay during ``[at, until)``; ``partition_window`` cuts
#: the target cell off from every other node (peers, clients) at the
#: network layer during ``[at, until)``, then heals the cut and runs the
#: resync+rejoin recovery; ``skew_window`` skews the target cell's
#: scheduling by a fixed per-message latency offset during
#: ``[at, until)`` (its clock effectively runs behind its peers').
#:
#: The chaos engine's default :class:`~repro.chaos.scenario.ScenarioSpace`
#: samples exactly this tuple — it is ordered so ``seed % len(...)``
#: stratification is stable.
RECOVERABLE_FAULT_KINDS = (
    "crash_recover",
    "crash_rejoin",
    "standby_activate",
    "censor_window",
    "delay_window",
    "partition_window",
    "skew_window",
)

#: *Byzantine* fault kinds the oracle stack must **catch**, not survive:
#: a scenario carrying one is expected to fail its audit (or have the
#: misbehaviour refused at the certificate layer) with findings that
#: attribute the fault.  ``tamper_state`` and ``tamper_fingerprint``
#: switch the corresponding compromised-cell behaviours on at ``at``
#: (they stay on — tampering is not something a cell undoes);
#: ``equivocate`` makes the cell sign *different* payloads for the same
#: logical message to different observers (anchored fingerprints vs.
#: served snapshots, and per-peer confirmations); ``lying_gateway``
#: makes a 2PC gateway forge (``params['mode'] = 'forge'``) or withhold
#: (``'withhold'``) its signed XSHARD_VOTE prepare votes, or forge the
#: signatures on the fast-path credit vouchers it mints (``'voucher'``).
BYZANTINE_FAULT_KINDS = (
    "tamper_state",
    "tamper_fingerprint",
    "equivocate",
    "lying_gateway",
)

#: Voucher-fast-path delivery faults: tolerated kinds that only make
#: sense on a gateway cell while the credit-voucher fast path is active.
#: ``voucher_loss`` withholds minted-voucher replies during
#: ``[at, until)`` (the voucher is lost in flight; the escrow reclaims
#: after its deadline), ``voucher_duplication`` re-delivers successful
#: redeem replies (the redeemed-voucher registry must keep the duplicate
#: a no-op).  They are sampled as *extra* draws on top of the lead-fault
#: stratification, never as lead kinds — ``RECOVERABLE_FAULT_KINDS`` must
#: keep its length so ``seed % 7`` stays stable.
VOUCHER_FAULT_KINDS = (
    "voucher_loss",
    "voucher_duplication",
)

#: Every fault kind a schedule may carry.
FAULT_KINDS = (
    frozenset(RECOVERABLE_FAULT_KINDS)
    | frozenset(BYZANTINE_FAULT_KINDS)
    | frozenset(VOUCHER_FAULT_KINDS)
)

#: Kinds whose injection takes the target cell offline for a while (a
#: partitioned cell stays up but is unreachable, which for scheduling
#: purposes — one outage per group, donor must stay live — is the same).
OUTAGE_KINDS = frozenset({"crash_recover", "crash_rejoin", "partition_window"})

#: Kinds that require an end-of-window time (``until``).
WINDOWED_KINDS = frozenset(
    {
        "crash_recover",
        "crash_rejoin",
        "censor_window",
        "delay_window",
        "partition_window",
        "skew_window",
        "voucher_loss",
        "voucher_duplication",
    }
)

#: Valid ``params['mode']`` values of a ``lying_gateway`` fault.
LYING_GATEWAY_MODES = ("forge", "withhold", "voucher")


@dataclass(frozen=True)
class ScheduledFault:
    """One fault injection: what, where (group/cell), and when.

    Pure data — the chaos runner (:mod:`repro.chaos.runner`) turns it
    into concrete :class:`FaultPlan` flips and deployment crash/recover
    calls at the scheduled simulated times.  All arguments are validated
    here; the *topology* (does the target cell exist?) is validated by
    :meth:`FaultSchedule.validate_for`, which must be called before
    injection so a schedule can never silently target a ghost cell.
    """

    kind: str
    group: int
    cell: int
    at: float
    until: Optional[float] = None
    #: Kind-specific parameters (e.g. ``account`` for ``censor_window``,
    #: ``seconds`` for ``delay_window``).
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; known kinds: {sorted(FAULT_KINDS)}"
            )
        if not isinstance(self.group, int) or isinstance(self.group, bool) or self.group < 0:
            raise FaultError(f"fault group must be a non-negative integer, got {self.group!r}")
        if not isinstance(self.cell, int) or isinstance(self.cell, bool) or self.cell < 0:
            raise FaultError(f"fault cell must be a non-negative integer, got {self.cell!r}")
        if not isinstance(self.at, (int, float)) or self.at < 0:
            raise FaultError(f"fault time must be a non-negative number, got {self.at!r}")
        if self.kind in WINDOWED_KINDS:
            if self.until is None:
                raise FaultError(f"fault kind {self.kind!r} needs an end time (until)")
            if not isinstance(self.until, (int, float)) or self.until <= self.at:
                raise FaultError(
                    f"fault window must end after it starts ({self.until!r} <= {self.at!r})"
                )
        elif self.until is not None:
            raise FaultError(f"fault kind {self.kind!r} does not take an end time")
        if self.kind == "delay_window":
            seconds = self.params.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds <= 0:
                raise FaultError("delay_window needs positive params['seconds']")
        if self.kind == "skew_window":
            seconds = self.params.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds <= 0:
                raise FaultError("skew_window needs positive params['seconds']")
        if self.kind == "censor_window":
            account = self.params.get("account")
            if not isinstance(account, int) or isinstance(account, bool) or account < 0:
                raise FaultError(
                    "censor_window needs a non-negative account index in "
                    "params['account']"
                )
        if self.kind == "lying_gateway":
            mode = self.params.get("mode", "forge")
            if mode not in LYING_GATEWAY_MODES:
                raise FaultError(
                    f"lying_gateway params['mode'] must be one of "
                    f"{list(LYING_GATEWAY_MODES)}, got {mode!r}"
                )

    def to_data(self) -> dict[str, Any]:
        """JSON-serializable form (scenario specs, reports)."""
        data: dict[str, Any] = {
            "kind": self.kind,
            "group": self.group,
            "cell": self.cell,
            "at": self.at,
        }
        if self.until is not None:
            data["until"] = self.until
        if self.params:
            data["params"] = dict(sorted(self.params.items()))
        return data

    @classmethod
    def from_data(cls, data: dict[str, Any]) -> "ScheduledFault":
        """Inverse of :meth:`to_data` (validates on construction)."""
        return cls(
            kind=data["kind"],
            group=int(data["group"]),
            cell=int(data["cell"]),
            at=float(data["at"]),
            until=float(data["until"]) if data.get("until") is not None else None,
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A validated, ordered collection of scheduled faults."""

    faults: tuple[ScheduledFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, ScheduledFault):
                raise FaultError(f"fault schedules hold ScheduledFault objects, not {fault!r}")

    def __iter__(self) -> Iterator[ScheduledFault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def validate_for(self, shard_count: int, cells_per_group: int, standby_cells: int = 0) -> None:
        """Check every fault targets a cell that actually exists.

        ``cells_per_group`` counts the *active* consortium cells of each
        group; ``standby_cells`` the provisioned standbys beyond them
        (their indices start at ``cells_per_group``).  A
        ``standby_activate`` fault must target a standby index; every
        other kind must target an active cell.  Raises a precise
        :class:`FaultError` naming the offending fault — the old
        behaviour (a fault naming a ghost cell just never fired) hid
        scenario-generation bugs.
        """
        total = cells_per_group + standby_cells
        for fault in self.faults:
            where = f"{fault.kind} fault at t={fault.at}"
            if not 0 <= fault.group < shard_count:
                raise FaultError(
                    f"{where} targets cell group {fault.group}, but the deployment "
                    f"has {shard_count} group(s)"
                )
            if fault.kind == "standby_activate":
                if not cells_per_group <= fault.cell < total:
                    raise FaultError(
                        f"{where} targets cell {fault.cell}, which is not a standby "
                        f"(standby indices are [{cells_per_group}, {total}))"
                    )
            elif not 0 <= fault.cell < cells_per_group:
                raise FaultError(
                    f"{where} targets unknown cell {fault.cell} of group {fault.group} "
                    f"(active cells are [0, {cells_per_group}))"
                )

    def kinds(self) -> set[str]:
        """The distinct fault kinds this schedule exercises."""
        return {fault.kind for fault in self.faults}

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the ``index``-th fault removed (for shrinking)."""
        if not 0 <= index < len(self.faults):
            raise FaultError(f"no fault with index {index} to remove")
        return FaultSchedule(self.faults[:index] + self.faults[index + 1 :])

    def to_data(self) -> list[dict[str, Any]]:
        """JSON-serializable form."""
        return [fault.to_data() for fault in self.faults]

    @classmethod
    def from_data(cls, data: list[dict[str, Any]]) -> "FaultSchedule":
        """Inverse of :meth:`to_data`."""
        return cls(tuple(ScheduledFault.from_data(item) for item in data))
