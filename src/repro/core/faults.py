"""Fault injection for the security scenarios of Section V.

A :class:`FaultPlan` attached to a cell makes it misbehave in controlled
ways so the integration tests and examples can demonstrate that the overlay
consensus detects or tolerates the behaviour:

* **crash** — the cell stops responding entirely (availability analysis,
  missed-deadline exclusion).
* **censor** — the cell silently drops transactions matching a predicate
  (the transaction-filtering attack of Section V-B).
* **tamper_fingerprint** — the cell reports a corrupted snapshot
  fingerprint to the anchor contract (consortium conspiracy / compromised
  cell, Sections V-C and V-D); auditors catch the mismatch.
* **tamper_state** — the cell mutates bContract state outside any
  transaction, so its execution fingerprints diverge from the honest cells.
* **delay** — the cell adds a fixed extra delay to every confirmation
  (deadline-miss exclusion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..messages.envelope import Envelope

#: Predicate deciding whether a given transaction envelope is censored.
CensorPredicate = Callable[[Envelope], bool]


@dataclass
class FaultPlan:
    """Misbehaviour switches for one cell (all off by default)."""

    crashed: bool = False
    censor: Optional[CensorPredicate] = None
    tamper_fingerprint: bool = False
    tamper_state: bool = False
    extra_confirm_delay: float = 0.0
    #: Log of faults actually exercised, for assertions in tests.
    events: list[dict[str, Any]] = field(default_factory=list)

    def record(self, kind: str, **details: Any) -> None:
        """Remember that a fault path fired."""
        self.events.append({"kind": kind, **details})

    def is_censored(self, envelope: Envelope) -> bool:
        """Whether this cell censors the given transaction."""
        if self.censor is None:
            return False
        censored = bool(self.censor(envelope))
        if censored:
            self.record("censor", tx_id=envelope.payload.hash_hex())
        return censored


def censor_sender(address_hex: str) -> CensorPredicate:
    """Censor every transaction originating from ``address_hex``."""
    normalized = address_hex.lower()

    def predicate(envelope: Envelope) -> bool:
        return envelope.sender.hex().lower() == normalized

    return predicate


def censor_method(contract: str, method: str) -> CensorPredicate:
    """Censor calls to one specific contract method (e.g. dividend withdrawal)."""

    def predicate(envelope: Envelope) -> bool:
        data = envelope.data
        return data.get("contract") == contract and data.get("method") == method

    return predicate
