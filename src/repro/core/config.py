"""System invariants and deployment configuration.

Section III-C4: some parameters of a Blockumulus deployment are fixed for
its whole lifetime — the *system invariants*: the deployment id, the
identities (addresses) of the consortium cells, the report period λ, and
the initial timestamp t0.  Everything else (latency models, service-time
profiles, fault injection, subscription policy) is an operational knob of
this reproduction and lives in :class:`DeploymentConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.keys import Address
from ..sim.latency import (
    CellServiceModel,
    LatencyModel,
    azure_b1ms_service_model,
    wan_cell_to_cell,
    wan_client_to_cell,
)


class ConfigError(ValueError):
    """Raised for inconsistent deployment parameters."""


@dataclass(frozen=True)
class SystemInvariants:
    """Parameters fixed at deployment time (Section III-C4)."""

    deployment_id: str
    cell_addresses: tuple[Address, ...]
    report_period: float            # λ, seconds
    initial_timestamp: float        # t0, seconds
    #: Maximum forwarding+response delay δ before a transaction reverts.
    forwarding_deadline: float = 10.0
    #: Consecutive missed deadlines before a cell is temporarily excluded.
    miss_threshold: int = 5
    #: How long an exclusion-vote liveness probe (PING) waits for a PONG.
    probe_deadline: float = 2.0

    def __post_init__(self) -> None:
        if not self.deployment_id:
            raise ConfigError("deployment_id must be non-empty")
        if len(self.cell_addresses) < 1:
            raise ConfigError("a deployment needs at least one cell")
        if len(set(self.cell_addresses)) != len(self.cell_addresses):
            raise ConfigError("cell addresses must be unique")
        if self.report_period <= 0:
            raise ConfigError("the report period λ must be positive")
        if self.initial_timestamp < 0:
            raise ConfigError("the initial timestamp t0 cannot be negative")
        if self.forwarding_deadline <= 0:
            raise ConfigError("the forwarding deadline δ must be positive")
        if self.miss_threshold < 1:
            raise ConfigError("the miss threshold must be at least 1")
        if self.probe_deadline <= 0:
            raise ConfigError("the probe deadline must be positive")

    @property
    def consortium_size(self) -> int:
        """Number of cells M in the consortium."""
        return len(self.cell_addresses)

    def is_cell(self, address: Address) -> bool:
        """Whether ``address`` belongs to the consortium."""
        return address in self.cell_addresses


@dataclass
class DeploymentConfig:
    """Operational configuration of a simulated Blockumulus deployment."""

    #: Number of cells M (2, 4, and 8 in the paper's evaluation).
    consortium_size: int = 2
    #: Report period λ in seconds (paper's Table III sweeps 10 min – 24 h).
    report_period: float = 600.0
    #: Forwarding deadline δ.
    forwarding_deadline: float = 10.0
    #: Missed-deadline threshold for temporary cell exclusion.
    miss_threshold: int = 5
    #: Exclusion-vote liveness-probe timeout (seconds).
    probe_deadline: float = 2.0
    #: Standby cells provisioned in the system invariants but booted into
    #: the excluded state: they hold no data and receive no traffic until
    #: :meth:`BlockumulusDeployment.activate_standby` bootstraps them from
    #: a live donor and they pass the rejoin quorum (dynamic membership).
    standby_cells: int = 0
    #: Deployment identifier.
    deployment_id: str = "blockumulus-sim"
    #: Random seed for the whole experiment.
    seed: int = 2021
    #: Latency model between clients and cells (one way).
    client_cell_latency: LatencyModel = field(default_factory=wan_client_to_cell)
    #: Latency model between cells (one way).
    cell_cell_latency: LatencyModel = field(default_factory=wan_cell_to_cell)
    #: Cell processing profile.
    service_model: CellServiceModel = field(default_factory=azure_b1ms_service_model)
    #: Signature scheme for protocol messages: "ecdsa" (real) or "sim" (fast).
    signature_scheme: str = "ecdsa"
    #: Whether cells require an access subscription before serving a client.
    enforce_subscriptions: bool = False
    #: Price (arbitrary currency units) per megabyte of client traffic.
    price_per_mbyte: float = 0.05
    #: How many past snapshots each cell keeps for auditors (paper: 3 total).
    snapshots_retained: int = 3
    #: Whether cells automatically submit snapshot reports to Ethereum.
    auto_report: bool = True
    #: Ethereum target block interval in seconds (Ropsten-like).
    eth_block_interval: float = 13.0
    #: Deploy the standard community contracts (FastMoney etc.) at boot.
    deploy_default_contracts: bool = True
    #: Coalesce inter-cell forwards/confirmations into per-destination batch
    #: envelopes flushed once per scheduling quantum.  Disable for the
    #: per-transaction ablation that reproduces the paper's Table II counts.
    message_batching: bool = True
    #: Scheduling quantum (seconds) between batch flushes to one destination.
    batch_quantum: float = 0.02
    #: Conflict-aware parallel execution lanes per cell.  ``1`` (default)
    #: keeps today's serial schedule; ``N > 1`` lets up to N transactions
    #: with non-conflicting access footprints execute concurrently, with
    #: results committed in canonical ledger order so ledgers, receipts,
    #: and fingerprints are identical to the serial run (``repro.core.lanes``).
    execution_lanes: int = 1
    #: Number of independent cell groups (shards) the contract-state
    #: namespace is partitioned across (``repro.core.sharding``).  ``1``
    #: (default) is today's unsharded pipeline, bit-for-bit; ``N > 1``
    #: makes :class:`~repro.core.sharding.ShardedDeployment` build N
    #: consortium groups of ``consortium_size`` cells each, sharing one
    #: simulation environment, network fabric, and anchor chain.  A plain
    #: :class:`~repro.core.deployment.BlockumulusDeployment` ignores the
    #: knob (it always builds exactly one group).
    shard_count: int = 1
    #: Prefix for this deployment's network node names (e.g. ``"g1/"``).
    #: A sharded deployment gives each cell group its own namespace so the
    #: groups can share one network fabric without name collisions; the
    #: empty default keeps the historical ``cell-<i>`` names.
    node_namespace: str = ""
    #: Per-cell admission limit: the maximum number of client transactions
    #: a cell services concurrently (``TX_SUBMIT`` / ``DEPLOY_CONTRACT``
    #: plus new cross-shard prepares).  ``None`` (default) keeps today's
    #: unbounded behaviour bit-for-bit; with a bound, arrivals above it
    #: are *shed* deterministically — rejected before ledger admission
    #: with a client-visible ``OVERLOADED`` error — so sustained overload
    #: degrades gracefully instead of growing queues without bound.
    max_inflight: Optional[int] = None

    def __post_init__(self) -> None:
        if self.consortium_size < 1:
            raise ConfigError("consortium_size must be at least 1")
        if self.signature_scheme not in ("ecdsa", "sim"):
            raise ConfigError("signature_scheme must be 'ecdsa' or 'sim'")
        if self.report_period <= 0:
            raise ConfigError("report_period must be positive")
        if self.snapshots_retained < 2:
            raise ConfigError("at least two snapshots must be retained for auditing")
        if self.batch_quantum < 0:
            raise ConfigError("batch_quantum cannot be negative")
        if self.standby_cells < 0:
            raise ConfigError("standby_cells cannot be negative")
        if self.probe_deadline <= 0:
            raise ConfigError("probe_deadline must be positive")
        if self.execution_lanes < 1:
            raise ConfigError("execution_lanes must be at least 1")
        if self.shard_count < 1:
            raise ConfigError("shard_count must be at least 1")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigError("max_inflight must be at least 1 (or None for unbounded)")

    def cell_name(self, index: int) -> str:
        """Canonical node name of cell ``index`` (namespaced per group)."""
        return f"{self.node_namespace}cell-{index}"

    def make_invariants(self, cell_addresses: list[Address], t0: float) -> SystemInvariants:
        """Freeze the system invariants once cell identities are known."""
        return SystemInvariants(
            deployment_id=self.deployment_id,
            cell_addresses=tuple(cell_addresses),
            report_period=self.report_period,
            initial_timestamp=t0,
            forwarding_deadline=self.forwarding_deadline,
            miss_threshold=self.miss_threshold,
            probe_deadline=self.probe_deadline,
        )
