"""Client access subscriptions and pricing (Section III-B4).

Blockumulus is permissionless for clients, but — like the ISP model — a
client buys access through one of the cells, which charges for transferred
data or active time rather than per-transaction fees.  Each cell runs its
own :class:`PricingPolicy`, competing with the other access providers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.keys import Address


class SubscriptionError(Exception):
    """Raised when a client without a valid subscription submits work."""


@dataclass(frozen=True)
class PricingPolicy:
    """A cell's access pricing."""

    #: Price per megabyte of client traffic (both directions).
    price_per_mbyte: float = 0.05
    #: Price per hour of active subscription time.
    price_per_hour: float = 0.0
    #: One-time activation fee.
    activation_fee: float = 0.0

    def traffic_cost(self, transferred_bytes: int) -> float:
        """Cost of ``transferred_bytes`` of client traffic."""
        return self.price_per_mbyte * transferred_bytes / 1_000_000

    def time_cost(self, active_seconds: float) -> float:
        """Cost of ``active_seconds`` of subscription time."""
        return self.price_per_hour * active_seconds / 3600.0


@dataclass
class Subscription:
    """One client's subscription with a cell."""

    client: Address
    opened_at: float
    policy: PricingPolicy
    transferred_bytes: int = 0
    transactions: int = 0
    closed_at: Optional[float] = None

    @property
    def is_active(self) -> bool:
        """Whether the subscription is currently open."""
        return self.closed_at is None

    def record_traffic(self, size_bytes: int) -> None:
        """Account client traffic against the subscription."""
        self.transferred_bytes += size_bytes

    def record_transaction(self) -> None:
        """Count a served transaction."""
        self.transactions += 1

    def bill(self, now: float) -> float:
        """Total charge accrued so far."""
        active_until = self.closed_at if self.closed_at is not None else now
        return (
            self.policy.activation_fee
            + self.policy.traffic_cost(self.transferred_bytes)
            + self.policy.time_cost(max(0.0, active_until - self.opened_at))
        )


class SubscriptionManager:
    """Tracks all subscriptions held with one cell."""

    def __init__(self, policy: PricingPolicy | None = None, enforce: bool = True) -> None:
        self.policy = policy or PricingPolicy()
        self.enforce = enforce
        self._subscriptions: dict[Address, Subscription] = {}

    def subscribe(self, client: Address, now: float) -> Subscription:
        """Open (or return the existing) subscription for ``client``."""
        existing = self._subscriptions.get(client)
        if existing is not None and existing.is_active:
            return existing
        subscription = Subscription(client=client, opened_at=now, policy=self.policy)
        self._subscriptions[client] = subscription
        return subscription

    def unsubscribe(self, client: Address, now: float) -> Subscription:
        """Close a client's subscription."""
        subscription = self._require(client)
        subscription.closed_at = now
        return subscription

    def is_subscribed(self, client: Address) -> bool:
        """Whether ``client`` currently holds an active subscription."""
        subscription = self._subscriptions.get(client)
        return subscription is not None and subscription.is_active

    def check_access(self, client: Address) -> None:
        """Raise unless the client may submit transactions through this cell."""
        if self.enforce and not self.is_subscribed(client):
            raise SubscriptionError(
                f"{client.hex()} has no active subscription with this cell"
            )

    def record_traffic(self, client: Address, size_bytes: int) -> None:
        """Attribute traffic to the client's subscription (if any)."""
        subscription = self._subscriptions.get(client)
        if subscription is not None and subscription.is_active:
            subscription.record_traffic(size_bytes)

    def record_transaction(self, client: Address) -> None:
        """Attribute one transaction to the client's subscription (if any)."""
        subscription = self._subscriptions.get(client)
        if subscription is not None and subscription.is_active:
            subscription.record_transaction()

    def bill(self, client: Address, now: float) -> float:
        """Current bill of ``client``."""
        return self._require(client).bill(now)

    def subscribers(self) -> list[Address]:
        """Addresses of all clients with an active subscription."""
        return [
            client
            for client, subscription in self._subscriptions.items()
            if subscription.is_active
        ]

    def total_revenue(self, now: float) -> float:
        """Total billing across all subscriptions."""
        return sum(sub.bill(now) for sub in self._subscriptions.values())

    def _require(self, client: Address) -> Subscription:
        try:
            return self._subscriptions[client]
        except KeyError:
            raise SubscriptionError(f"{client.hex()} never subscribed with this cell") from None
