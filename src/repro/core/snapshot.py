"""Data snapshots and the snapshot engine.

At every report-cycle boundary a cell asks each deployed bContract to clone
and fingerprint its data, combines the per-contract fingerprints into the
*data snapshot fingerprint*, and retains the snapshot (including a full
state export) so auditors can download it during the next main stage
(Sections III-A2, III-D2).  The paper's storage analysis assumes three
retained snapshots: the one being built plus two kept for auditing.

State exports are **copy-on-write**: taking a snapshot is O(1) per
contract, only keys written after the snapshot get their old values
preserved, and the frozen export dict is materialized lazily the first
time somebody (an auditor, the wire encoder) actually reads it.  Report
cycles whose snapshots are pruned unread never pay for a full state copy.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..contracts.registry import ContractRegistry
from ..contracts.state_store import StateExport
from ..crypto.fingerprint import snapshot_fingerprint


class SnapshotError(Exception):
    """Raised for invalid snapshot queries."""


class LazySnapshotExport(Mapping):
    """Per-contract copy-on-write exports behind a read-only mapping.

    Reads behave exactly like the eager ``{contract: state}`` dict the
    engine used to build at snapshot time, but the underlying data is only
    copied when first accessed.  Once materialized the result is cached and
    immutable, so repeated auditor downloads serve the same frozen dicts.
    """

    def __init__(self, exports: dict[str, StateExport]) -> None:
        self._exports = exports
        self._frozen: Optional[dict[str, dict[str, Any]]] = None

    def _materialize(self) -> dict[str, dict[str, Any]]:
        if self._frozen is None:
            self._frozen = {name: export.materialize() for name, export in self._exports.items()}
        return self._frozen

    @property
    def materialized(self) -> bool:
        """Whether the frozen per-contract dicts have been built."""
        return self._frozen is not None

    def release(self) -> None:
        """Drop the copy-on-write handles without materializing."""
        if self._frozen is None:
            for export in self._exports.values():
                export.release()

    def __getitem__(self, name: str) -> dict[str, Any]:
        return self._materialize()[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._exports)

    def __len__(self) -> int:
        return len(self._exports)

    def __contains__(self, name: object) -> bool:
        return name in self._exports

    def to_dict(self) -> dict[str, dict[str, Any]]:
        """The materialized ``{contract: state}`` export."""
        return self._materialize()


@dataclass(frozen=True)
class DataSnapshot:
    """An immutable snapshot of a cell's bContract data for one cycle."""

    cycle: int
    taken_at: float
    cell_id: str
    #: Per-contract fingerprints included in the snapshot.
    contract_fingerprints: dict[str, bytes]
    #: Contracts excluded from this snapshot (mismatch/divergence).
    excluded_contracts: tuple[str, ...]
    #: The combined data snapshot fingerprint anchored on Ethereum.
    fingerprint: bytes
    #: Per-contract type tags (``BContract.TYPE``), so an auditor can
    #: reconstruct *any* instance for replay — per-shard application
    #: instances (``fastmoney@s1``) and renamed deployments included,
    #: not just contracts that happen to use their default names.
    contract_types: dict[str, str] = field(default_factory=dict)
    #: Full state export per contract (what auditors download).  Either a
    #: plain dict or a :class:`LazySnapshotExport` that materializes on read.
    state_export: Mapping[str, dict[str, Any]] = field(default_factory=dict, repr=False)
    #: Sequence numbers of ledger entries covered by this snapshot.
    first_sequence: int = 0
    last_sequence: int = -1

    def fingerprint_hex(self) -> str:
        """0x-prefixed snapshot fingerprint."""
        return "0x" + self.fingerprint.hex()

    def contract_fingerprint_hex(self, name: str) -> str:
        """0x-prefixed fingerprint of one contract inside the snapshot."""
        try:
            return "0x" + self.contract_fingerprints[name].hex()
        except KeyError:
            raise SnapshotError(f"contract {name!r} is not part of this snapshot") from None

    def to_wire(self, include_state: bool = True) -> dict[str, Any]:
        """JSON-serializable form (auditor download)."""
        payload: dict[str, Any] = {
            "cycle": self.cycle,
            "taken_at": self.taken_at,
            "cell_id": self.cell_id,
            "fingerprint": self.fingerprint_hex(),
            "contract_fingerprints": {
                name: "0x" + digest.hex()
                for name, digest in sorted(self.contract_fingerprints.items())
            },
            "excluded_contracts": list(self.excluded_contracts),
            "contract_types": dict(sorted(self.contract_types.items())),
            "first_sequence": self.first_sequence,
            "last_sequence": self.last_sequence,
        }
        if include_state:
            payload["state_export"] = self.materialized_state()
        return payload

    @classmethod
    def from_wire(cls, raw: dict[str, Any], cell_id: Optional[str] = None) -> "DataSnapshot":
        """Rebuild a snapshot from its wire form (cell resync).

        ``cell_id`` overrides the recorded owner so a recovering cell can
        adopt a donor's snapshot under its own identity.
        """
        try:
            return cls(
                cycle=int(raw["cycle"]),
                taken_at=float(raw["taken_at"]),
                cell_id=cell_id if cell_id is not None else str(raw["cell_id"]),
                contract_fingerprints={
                    name: bytes.fromhex(value[2:])
                    for name, value in sorted(raw["contract_fingerprints"].items())
                },
                excluded_contracts=tuple(raw.get("excluded_contracts", [])),
                contract_types=dict(raw.get("contract_types", {})),
                fingerprint=bytes.fromhex(raw["fingerprint"][2:]),
                state_export=dict(raw.get("state_export", {})),
                first_sequence=int(raw.get("first_sequence", 0)),
                last_sequence=int(raw.get("last_sequence", -1)),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise SnapshotError(f"malformed snapshot wire form: {exc}") from exc

    def materialized_state(self) -> dict[str, dict[str, Any]]:
        """The state export as a plain dict (forces materialization)."""
        if isinstance(self.state_export, LazySnapshotExport):
            return self.state_export.to_dict()
        return dict(self.state_export)

    def release_state(self) -> None:
        """Drop an unmaterialized lazy export (called when pruned unread)."""
        if isinstance(self.state_export, LazySnapshotExport):
            self.state_export.release()


class SnapshotEngine:
    """Builds and retains data snapshots for one cell."""

    def __init__(self, cell_id: str, registry: ContractRegistry, retain: int = 3) -> None:
        if retain < 2:
            raise SnapshotError("the engine must retain at least two snapshots")
        self.cell_id = cell_id
        self.registry = registry
        self.retain = retain
        self._snapshots: dict[int, DataSnapshot] = {}
        self._latest_cycle: Optional[int] = None
        #: Canonical-JSON size cache: snapshots are immutable once taken, so
        #: each is serialized at most once for the storage accounting.
        self._wire_sizes: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Snapshot creation
    # ------------------------------------------------------------------
    def take_snapshot(
        self,
        cycle: int,
        timestamp: float,
        first_sequence: int,
        last_sequence: int,
        include_state: bool = True,
    ) -> DataSnapshot:
        """Clone and fingerprint every non-excluded contract."""
        if self._latest_cycle is not None and cycle <= self._latest_cycle:
            raise SnapshotError(
                f"snapshot for cycle {cycle} taken out of order (latest is {self._latest_cycle})"
            )
        fingerprints: dict[str, bytes] = {}
        types: dict[str, str] = {}
        for contract in self.registry:
            if self.registry.is_excluded(contract.name):
                continue
            clone = contract.clone_snapshot()
            fingerprints[contract.name] = clone.fingerprint
            types[contract.name] = contract.TYPE
        combined = snapshot_fingerprint(fingerprints)
        snapshot = DataSnapshot(
            cycle=cycle,
            taken_at=timestamp,
            cell_id=self.cell_id,
            contract_fingerprints=fingerprints,
            excluded_contracts=tuple(self.registry.excluded()),
            contract_types=types,
            fingerprint=combined,
            state_export=(
                LazySnapshotExport(self.registry.export_all_lazy()) if include_state else {}
            ),
            first_sequence=first_sequence,
            last_sequence=last_sequence,
        )
        self._snapshots[cycle] = snapshot
        self._latest_cycle = cycle
        self._prune()
        return snapshot

    def adopt(self, snapshot: DataSnapshot) -> DataSnapshot:
        """Install a donor's snapshot as this cell's own (crash recovery).

        A cell that was down for one or more report cycles cannot take the
        snapshots it missed; adopting the donor's latest snapshot re-anchors
        the engine's cycle sequence so (a) ``take_snapshot`` succeeds at the
        next boundary and (b) auditors running the succession audit on the
        recovered cell find the predecessor snapshot they need.
        """
        if self._latest_cycle is not None and snapshot.cycle <= self._latest_cycle:
            raise SnapshotError(
                f"cannot adopt snapshot for cycle {snapshot.cycle}: "
                f"local engine is already at cycle {self._latest_cycle}"
            )
        self._snapshots[snapshot.cycle] = snapshot
        self._latest_cycle = snapshot.cycle
        self._prune()
        return snapshot

    def _prune(self) -> None:
        while len(self._snapshots) > self.retain:
            oldest = min(self._snapshots)
            self._snapshots[oldest].release_state()
            del self._snapshots[oldest]
            self._wire_sizes.pop(oldest, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def latest_cycle(self) -> Optional[int]:
        """Cycle number of the most recent snapshot (None before the first)."""
        return self._latest_cycle

    def latest(self) -> DataSnapshot:
        """The most recent snapshot."""
        if self._latest_cycle is None:
            raise SnapshotError("no snapshot has been taken yet")
        return self._snapshots[self._latest_cycle]

    def get(self, cycle: int) -> DataSnapshot:
        """Snapshot of a specific cycle (if still retained)."""
        try:
            return self._snapshots[cycle]
        except KeyError:
            raise SnapshotError(f"no retained snapshot for cycle {cycle}") from None

    def has(self, cycle: int) -> bool:
        """Whether a snapshot for ``cycle`` is retained."""
        return cycle in self._snapshots

    def retained_cycles(self) -> list[int]:
        """Cycles of all retained snapshots, oldest first."""
        return sorted(self._snapshots)

    def storage_bytes(self) -> int:
        """Approximate bytes devoted to retained snapshots (Section IV-C).

        Measuring the serialized size necessarily materializes any
        still-lazy state exports, so call this only when the storage
        accounting is actually wanted.  Snapshots are immutable once taken,
        so each retained snapshot is serialized at most once; repeated
        calls reuse the cached sizes instead of re-encoding every
        snapshot's full state.
        """
        from ..encoding import canonical_json

        total = 0
        for cycle, snapshot in self._snapshots.items():
            size = self._wire_sizes.get(cycle)
            if size is None:
                size = len(canonical_json.dump_bytes(snapshot.to_wire(include_state=True)))
                self._wire_sizes[cycle] = size
            total += size
        return total
