"""Workload generators mirroring the paper's test harness (Section VI-B).

The paper drives its evaluation from eight client-pool VMs scattered across
regions, generating a fresh random account for every request "to simulate
different clients and avoid potential caching".  The generators here do the
same inside the simulation:

* :func:`run_sequential_transfers` — 500 consecutive FastMoney transfers
  (Fig. 8, one experiment per consortium size).
* :func:`run_burst_cas_uploads` — N simultaneous CAS ``put`` requests
  (Fig. 9).
* :func:`run_burst_transfers` — N simultaneous FastMoney transfers
  (Fig. 10 / the 20,000-transaction headline).
* :func:`run_contended_transfers` — N simultaneous transfers with a
  tunable write-conflict rate (the execution-lane benchmark workload).

Each returns a :class:`WorkloadReport` with the raw per-transaction results
plus the latency series and throughput figures the benchmark harness
prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..contracts.community import FastMoney
from ..core.deployment import BlockumulusDeployment
from ..crypto.keys import Address
from ..sim.events import Event
from ..sim.metrics import SampleSeries, ThroughputResult
from .apps import CasClient, FastMoneyClient
from .client import BlockumulusClient, TransactionResult

#: Number of client-pool machines in the paper's harness.
DEFAULT_CLIENT_POOLS = 8


class WorkloadError(Exception):
    """Raised when a workload cannot complete."""


@dataclass
class WorkloadReport:
    """Everything measured while running one workload."""

    label: str
    consortium_size: int
    results: list[TransactionResult] = field(default_factory=list)

    @property
    def successes(self) -> list[TransactionResult]:
        """Transactions that received a valid aggregated receipt."""
        return [result for result in self.results if result.ok]

    @property
    def failures(self) -> list[TransactionResult]:
        """Transactions that reverted or timed out."""
        return [result for result in self.results if not result.ok]

    @property
    def failure_count(self) -> int:
        """Number of failed transactions."""
        return len(self.failures)

    def latencies(self) -> SampleSeries:
        """Latency series over successful transactions."""
        series = SampleSeries(self.label)
        series.extend(result.latency for result in self.successes)
        return series

    def throughput(self) -> ThroughputResult:
        """Throughput over successful transactions (burst workloads)."""
        successes = self.successes
        if not successes:
            raise WorkloadError(f"workload {self.label!r} produced no successful transactions")
        return ThroughputResult(
            operations=len(successes),
            first_start=min(result.submitted_at for result in successes),
            last_end=max(result.completed_at for result in successes),
        )

    def summary(self) -> dict[str, Any]:
        """Headline numbers for EXPERIMENTS.md and the benchmark output."""
        latencies = self.latencies()
        throughput = self.throughput()
        return {
            "label": self.label,
            "cells": self.consortium_size,
            "transactions": len(self.results),
            "failures": self.failure_count,
            "latency_p50": latencies.p50(),
            "latency_p90": latencies.p90(),
            "latency_p99": latencies.p99(),
            "latency_max": latencies.max(),
            "makespan": throughput.makespan,
            "throughput_tps": throughput.throughput,
        }


def build_client_pools(
    deployment: BlockumulusDeployment,
    pools: int = DEFAULT_CLIENT_POOLS,
    subscribe: bool = False,
) -> list[BlockumulusClient]:
    """Create client-pool machines, assigned round-robin to the cells."""
    if pools < 1:
        raise WorkloadError("at least one client pool is required")
    clients = []
    for index in range(pools):
        client = BlockumulusClient(
            deployment,
            signer=deployment.make_client_signer(f"pool/{index}"),
            service_cell_index=index % deployment.consortium_size,
            node_name=f"client-pool-{index}",
        )
        clients.append(client)
    if subscribe or deployment.config.enforce_subscriptions:
        waiters = [client.subscribe() for client in clients]
        deployment.env.run(deployment.env.all_of(waiters))
    return clients


def _collect(
    deployment: BlockumulusDeployment, events: list[Event], horizon: float
) -> list[TransactionResult]:
    """Run the simulation until all result events fire (or the horizon)."""
    env = deployment.env
    done = env.all_of(events)
    guard = env.any_of([done, env.timeout(horizon)])
    env.run(guard)
    results = []
    for event in events:
        if event.processed or event.triggered:
            results.append(event.value)
        else:
            results.append(
                TransactionResult(
                    ok=False,
                    submitted_at=env.now - horizon,
                    completed_at=env.now,
                    error="workload horizon exceeded before a reply arrived",
                )
            )
    return results


def _fund_pools(
    deployment: BlockumulusDeployment,
    pool_clients: list[BlockumulusClient],
    amount: int,
    horizon: float = 3_600.0,
) -> None:
    """Give every pool account a large FastMoney balance (not measured)."""
    events = [FastMoneyClient(client).faucet(amount) for client in pool_clients]
    results = _collect(deployment, events, horizon)
    failed = [result for result in results if not result.ok]
    if failed:
        raise WorkloadError(f"pool funding failed: {failed[0].error}")


def _fresh_recipient(index: int) -> str:
    """A deterministic throwaway recipient address for transfer ``index``."""
    from ..crypto.hashing import fast_hash

    return "0x" + fast_hash(f"recipient/{index}".encode())[-20:].hex()


# ----------------------------------------------------------------------
# Fig. 8 — consecutive transfers under normal load
# ----------------------------------------------------------------------
def run_sequential_transfers(
    deployment: BlockumulusDeployment,
    count: int = 500,
    pools: int = DEFAULT_CLIENT_POOLS,
    amount: int = 5,
    label: Optional[str] = None,
    per_transaction_timeout: float = 120.0,
) -> WorkloadReport:
    """Execute ``count`` consecutive FastMoney transfers and measure latency."""
    clients = build_client_pools(deployment, pools)
    _fund_pools(deployment, clients, amount * count * 2)
    report = WorkloadReport(
        label=label or f"fig8/{deployment.consortium_size}cells",
        consortium_size=deployment.consortium_size,
    )
    env = deployment.env

    def driver() -> Generator[Event, Any, None]:
        for index in range(count):
            client = clients[index % len(clients)]
            result_event = FastMoneyClient(client).transfer(_fresh_recipient(index), amount)
            guard = env.any_of([result_event, env.timeout(per_transaction_timeout)])
            yield guard
            if result_event.triggered:
                report.results.append(result_event.value)
            else:
                report.results.append(
                    TransactionResult(
                        ok=False,
                        submitted_at=env.now - per_transaction_timeout,
                        completed_at=env.now,
                        error="per-transaction timeout",
                    )
                )

    process = env.process(driver())
    env.run(process)
    return report


# ----------------------------------------------------------------------
# Fig. 9 — simultaneous CAS uploads
# ----------------------------------------------------------------------
def run_burst_cas_uploads(
    deployment: BlockumulusDeployment,
    count: int = 5_000,
    pools: int = DEFAULT_CLIENT_POOLS,
    blob_bytes: int = 64,
    label: Optional[str] = None,
    horizon: float = 3_600.0,
) -> WorkloadReport:
    """Submit ``count`` CAS uploads at the same instant and measure latency."""
    clients = build_client_pools(deployment, pools)
    report = WorkloadReport(
        label=label or f"fig9/{deployment.consortium_size}cells/{count}tx",
        consortium_size=deployment.consortium_size,
    )
    rng = deployment.seeds.stream("workload-cas")
    events = []
    for index in range(count):
        client = clients[index % len(clients)]
        content = rng.getrandbits(8 * blob_bytes).to_bytes(blob_bytes, "big")
        # A fresh random account per request, as in the paper's harness.
        signer = deployment.make_client_signer(f"cas-account/{index}")
        events.append(CasClient(client).put(content, signer=signer))
    report.results = _collect(deployment, events, horizon)
    return report


# ----------------------------------------------------------------------
# Fig. 10 — simultaneous FastMoney transfers
# ----------------------------------------------------------------------
def run_burst_transfers(
    deployment: BlockumulusDeployment,
    count: int = 5_000,
    pools: int = DEFAULT_CLIENT_POOLS,
    amount: int = 1,
    label: Optional[str] = None,
    horizon: float = 3_600.0,
    submit_at: Optional[float] = None,
) -> WorkloadReport:
    """Submit ``count`` FastMoney transfers at the same instant.

    ``submit_at`` pins the submission to an absolute simulated time after
    the funding phase.  Experiments that compare two configurations of the
    same workload (e.g. the batched-pipeline ablation) use it so both runs
    sign transactions with identical timestamps and therefore identical
    transaction ids.
    """
    clients = build_client_pools(deployment, pools)
    _fund_pools(deployment, clients, amount * count * 2)
    if submit_at is not None:
        if submit_at < deployment.env.now:
            raise WorkloadError(
                f"cannot submit at {submit_at}: funding finished at {deployment.env.now}"
            )
        deployment.run(until=submit_at)
    report = WorkloadReport(
        label=label or f"fig10/{deployment.consortium_size}cells/{count}tx",
        consortium_size=deployment.consortium_size,
    )
    events = []
    for index in range(count):
        client = clients[index % len(clients)]
        events.append(
            FastMoneyClient(client).transfer(_fresh_recipient(index), amount)
        )
    report.results = _collect(deployment, events, horizon)
    return report


# ----------------------------------------------------------------------
# Tunable-contention transfers (the execution-lane benchmark workload)
# ----------------------------------------------------------------------
#: Deployment name of the contention workload's FastMoney instance (kept
#: apart from the default "fastmoney" so both can coexist).
CONTENDED_CONTRACT = "fastmoney.contended"


def run_contended_transfers(
    deployment: BlockumulusDeployment,
    count: int = 200,
    conflict_rate: float = 0.0,
    hot_accounts: int = 4,
    pools: int = DEFAULT_CLIENT_POOLS,
    amount: int = 1,
    label: Optional[str] = None,
    horizon: float = 3_600.0,
    submit_at: Optional[float] = None,
) -> WorkloadReport:
    """Submit ``count`` simultaneous transfers with a tunable conflict rate.

    Every transaction normally comes from its own genesis-funded account
    and pays a fresh recipient, so its write set is disjoint from every
    other transaction's and the conflict-aware lane scheduler can run them
    all in parallel.  With probability ``conflict_rate`` a transaction is
    instead sent *from* one of ``hot_accounts`` shared hot accounts — a
    genuine read-modify-write on the hot balance key (the insufficient-funds
    check), which conflicts with every other transfer from the same hot
    account and forces the scheduler to serialize them.

    ``conflict_rate=0`` is the embarrassingly parallel end of the dial,
    ``conflict_rate=1`` with one hot account reproduces the fully serial
    schedule.  The workload funds accounts through genesis balances (no
    measurable funding phase), and ``submit_at`` pins the submission
    instant so runs under different configurations sign byte-identical
    payloads (identical transaction ids), which is what lets the benchmark
    assert ledger/receipt/fingerprint equality across lane counts.
    """
    if not 0.0 <= conflict_rate <= 1.0:
        raise WorkloadError("conflict_rate must be between 0 and 1")
    if hot_accounts < 1:
        raise WorkloadError("at least one hot account is required")
    clients = build_client_pools(deployment, pools)
    cold_signers = [
        deployment.make_client_signer(f"contention-account/{index}") for index in range(count)
    ]
    hot_signers = [
        deployment.make_client_signer(f"contention-hot/{index}") for index in range(hot_accounts)
    ]
    genesis = {signer.address.hex(): amount for signer in cold_signers}
    for signer in hot_signers:
        genesis[signer.address.hex()] = amount * count  # never runs dry
    deployment.deploy_community_contract_instances(
        [
            FastMoney(
                CONTENDED_CONTRACT,
                params={"genesis_balances": genesis, "allow_faucet": False},
            )
        ]
    )
    rng = deployment.seeds.stream("workload-contention")
    if submit_at is not None:
        if submit_at < deployment.env.now:
            raise WorkloadError(f"cannot submit at {submit_at}: now is {deployment.env.now}")
        deployment.run(until=submit_at)
    report = WorkloadReport(
        label=label
        or f"lanes/{deployment.consortium_size}cells/{count}tx/conflict{conflict_rate:.2f}",
        consortium_size=deployment.consortium_size,
    )
    events = []
    for index in range(count):
        client = clients[index % len(clients)]
        if rng.random() < conflict_rate:
            signer = hot_signers[rng.randrange(hot_accounts)]
        else:
            signer = cold_signers[index]
        events.append(
            FastMoneyClient(client, contract_name=CONTENDED_CONTRACT).transfer(
                _fresh_recipient(index), amount, signer=signer
            )
        )
    report.results = _collect(deployment, events, horizon)
    return report
