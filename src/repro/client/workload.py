"""Workload generators mirroring the paper's test harness (Section VI-B).

The paper drives its evaluation from eight client-pool VMs scattered across
regions, generating a fresh random account for every request "to simulate
different clients and avoid potential caching".  The generators here do the
same inside the simulation:

* :func:`run_sequential_transfers` — 500 consecutive FastMoney transfers
  (Fig. 8, one experiment per consortium size).
* :func:`run_burst_cas_uploads` — N simultaneous CAS ``put`` requests
  (Fig. 9).
* :func:`run_burst_transfers` — N simultaneous FastMoney transfers
  (Fig. 10 / the 20,000-transaction headline).
* :func:`run_contended_transfers` — N simultaneous transfers with a
  tunable write-conflict rate (the execution-lane benchmark workload).
* :func:`run_mixed_operations` — a scripted multi-contract mix (FastMoney
  transfers incl. cross-shard 2PC, CAS uploads, ballot votes, dividend
  investments) submitted at fixed simulated times over a sharded
  deployment (the chaos engine's workload shape).

Each returns a :class:`WorkloadReport` with the raw per-transaction results
plus the latency series and throughput figures the benchmark harness
prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..contracts.community import FastMoney
from ..core.deployment import BlockumulusDeployment
from ..core.sharding import ShardedDeployment
from ..crypto.keys import Address
from ..sim.events import Event
from ..sim.metrics import SampleSeries, ThroughputResult
from .apps import CasClient, FastMoneyClient
from .client import BlockumulusClient, TransactionResult
from .sharded import CrossShardResult, ShardedClient, ShardedFastMoneyClient

#: Number of client-pool machines in the paper's harness.
DEFAULT_CLIENT_POOLS = 8


class WorkloadError(Exception):
    """Raised when a workload cannot complete."""


def _validate_count(count: int, what: str = "count") -> int:
    """Reject zero/negative/non-integer transaction counts up front.

    A bad count used to silently produce an empty burst whose report then
    failed much later (or not at all); workloads now fail fast with a
    clear message instead.
    """
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise WorkloadError(f"{what} must be a positive integer, got {count!r}")
    return count


def _validate_amount(amount: int) -> int:
    """Reject non-positive transfer amounts before signing anything."""
    if not isinstance(amount, int) or isinstance(amount, bool) or amount < 1:
        raise WorkloadError(f"amount must be a positive integer, got {amount!r}")
    return amount


def _validate_rate(rate: float, what: str) -> float:
    """A probability dial must lie in [0, 1]."""
    try:
        value = float(rate)
    except (TypeError, ValueError):
        raise WorkloadError(f"{what} must be a number between 0 and 1, got {rate!r}") from None
    if not 0.0 <= value <= 1.0:
        raise WorkloadError(f"{what} must be between 0 and 1, got {rate!r}")
    return value


@dataclass
class WorkloadReport:
    """Everything measured while running one workload."""

    label: str
    consortium_size: int
    results: list[TransactionResult] = field(default_factory=list)

    @property
    def successes(self) -> list[TransactionResult]:
        """Transactions that received a valid aggregated receipt."""
        return [result for result in self.results if result.ok]

    @property
    def failures(self) -> list[TransactionResult]:
        """Transactions that reverted or timed out."""
        return [result for result in self.results if not result.ok]

    @property
    def failure_count(self) -> int:
        """Number of failed transactions."""
        return len(self.failures)

    def latencies(self) -> SampleSeries:
        """Latency series over successful transactions."""
        series = SampleSeries(self.label)
        series.extend(result.latency for result in self.successes)
        return series

    def throughput(self) -> ThroughputResult:
        """Throughput over successful transactions (burst workloads)."""
        successes = self.successes
        if not successes:
            raise WorkloadError(f"workload {self.label!r} produced no successful transactions")
        return ThroughputResult(
            operations=len(successes),
            first_start=min(result.submitted_at for result in successes),
            last_end=max(result.completed_at for result in successes),
        )

    def summary(self) -> dict[str, Any]:
        """Headline numbers for EXPERIMENTS.md and the benchmark output."""
        latencies = self.latencies()
        throughput = self.throughput()
        return {
            "label": self.label,
            "cells": self.consortium_size,
            "transactions": len(self.results),
            "failures": self.failure_count,
            "latency_p50": latencies.p50(),
            "latency_p90": latencies.p90(),
            "latency_p99": latencies.p99(),
            "latency_max": latencies.max(),
            "makespan": throughput.makespan,
            "throughput_tps": throughput.throughput,
        }


def build_client_pools(
    deployment: BlockumulusDeployment,
    pools: int = DEFAULT_CLIENT_POOLS,
    subscribe: bool = False,
) -> list[BlockumulusClient]:
    """Create client-pool machines, assigned round-robin to the cells."""
    if pools < 1:
        raise WorkloadError("at least one client pool is required")
    clients = []
    for index in range(pools):
        client = BlockumulusClient(
            deployment,
            signer=deployment.make_client_signer(f"pool/{index}"),
            service_cell_index=index % deployment.consortium_size,
            node_name=f"client-pool-{index}",
        )
        clients.append(client)
    if subscribe or deployment.config.enforce_subscriptions:
        waiters = [client.subscribe() for client in clients]
        deployment.env.run(deployment.env.all_of(waiters))
    return clients


def _collect(
    deployment: BlockumulusDeployment, events: list[Event], horizon: float
) -> list[TransactionResult]:
    """Run the simulation until all result events fire (or the horizon)."""
    env = deployment.env
    done = env.all_of(events)
    guard = env.any_of([done, env.timeout(horizon)])
    env.run(guard)
    results = []
    for event in events:
        if event.processed or event.triggered:
            results.append(event.value)
        else:
            results.append(
                TransactionResult(
                    ok=False,
                    submitted_at=env.now - horizon,
                    completed_at=env.now,
                    error="workload horizon exceeded before a reply arrived",
                )
            )
    return results


def _fund_pools(
    deployment: BlockumulusDeployment,
    pool_clients: list[BlockumulusClient],
    amount: int,
    horizon: float = 3_600.0,
) -> None:
    """Give every pool account a large FastMoney balance (not measured)."""
    events = [FastMoneyClient(client).faucet(amount) for client in pool_clients]
    results = _collect(deployment, events, horizon)
    failed = [result for result in results if not result.ok]
    if failed:
        raise WorkloadError(f"pool funding failed: {failed[0].error}")


def _fresh_recipient(index: int) -> str:
    """A deterministic throwaway recipient address for transfer ``index``."""
    from ..crypto.hashing import fast_hash

    return "0x" + fast_hash(f"recipient/{index}".encode())[-20:].hex()


# ----------------------------------------------------------------------
# Fig. 8 — consecutive transfers under normal load
# ----------------------------------------------------------------------
def run_sequential_transfers(
    deployment: BlockumulusDeployment,
    count: int = 500,
    pools: int = DEFAULT_CLIENT_POOLS,
    amount: int = 5,
    label: Optional[str] = None,
    per_transaction_timeout: float = 120.0,
) -> WorkloadReport:
    """Execute ``count`` consecutive FastMoney transfers and measure latency."""
    _validate_count(count)
    _validate_amount(amount)
    clients = build_client_pools(deployment, pools)
    _fund_pools(deployment, clients, amount * count * 2)
    report = WorkloadReport(
        label=label or f"fig8/{deployment.consortium_size}cells",
        consortium_size=deployment.consortium_size,
    )
    env = deployment.env

    def driver() -> Generator[Event, Any, None]:
        for index in range(count):
            client = clients[index % len(clients)]
            result_event = FastMoneyClient(client).transfer(_fresh_recipient(index), amount)
            guard = env.any_of([result_event, env.timeout(per_transaction_timeout)])
            yield guard
            if result_event.triggered:
                report.results.append(result_event.value)
            else:
                report.results.append(
                    TransactionResult(
                        ok=False,
                        submitted_at=env.now - per_transaction_timeout,
                        completed_at=env.now,
                        error="per-transaction timeout",
                    )
                )

    process = env.process(driver())
    env.run(process)
    return report


# ----------------------------------------------------------------------
# Fig. 9 — simultaneous CAS uploads
# ----------------------------------------------------------------------
def run_burst_cas_uploads(
    deployment: BlockumulusDeployment,
    count: int = 5_000,
    pools: int = DEFAULT_CLIENT_POOLS,
    blob_bytes: int = 64,
    label: Optional[str] = None,
    horizon: float = 3_600.0,
) -> WorkloadReport:
    """Submit ``count`` CAS uploads at the same instant and measure latency."""
    _validate_count(count)
    if blob_bytes < 1:
        raise WorkloadError(f"blob_bytes must be positive, got {blob_bytes!r}")
    clients = build_client_pools(deployment, pools)
    report = WorkloadReport(
        label=label or f"fig9/{deployment.consortium_size}cells/{count}tx",
        consortium_size=deployment.consortium_size,
    )
    rng = deployment.seeds.stream("workload-cas")
    events = []
    for index in range(count):
        client = clients[index % len(clients)]
        content = rng.getrandbits(8 * blob_bytes).to_bytes(blob_bytes, "big")
        # A fresh random account per request, as in the paper's harness.
        signer = deployment.make_client_signer(f"cas-account/{index}")
        events.append(CasClient(client).put(content, signer=signer))
    report.results = _collect(deployment, events, horizon)
    return report


# ----------------------------------------------------------------------
# Fig. 10 — simultaneous FastMoney transfers
# ----------------------------------------------------------------------
def run_burst_transfers(
    deployment: BlockumulusDeployment,
    count: int = 5_000,
    pools: int = DEFAULT_CLIENT_POOLS,
    amount: int = 1,
    label: Optional[str] = None,
    horizon: float = 3_600.0,
    submit_at: Optional[float] = None,
) -> WorkloadReport:
    """Submit ``count`` FastMoney transfers at the same instant.

    ``submit_at`` pins the submission to an absolute simulated time after
    the funding phase.  Experiments that compare two configurations of the
    same workload (e.g. the batched-pipeline ablation) use it so both runs
    sign transactions with identical timestamps and therefore identical
    transaction ids.
    """
    _validate_count(count)
    _validate_amount(amount)
    clients = build_client_pools(deployment, pools)
    _fund_pools(deployment, clients, amount * count * 2)
    if submit_at is not None:
        if submit_at < deployment.env.now:
            raise WorkloadError(
                f"cannot submit at {submit_at}: funding finished at {deployment.env.now}"
            )
        deployment.run(until=submit_at)
    report = WorkloadReport(
        label=label or f"fig10/{deployment.consortium_size}cells/{count}tx",
        consortium_size=deployment.consortium_size,
    )
    events = []
    for index in range(count):
        client = clients[index % len(clients)]
        events.append(
            FastMoneyClient(client).transfer(_fresh_recipient(index), amount)
        )
    report.results = _collect(deployment, events, horizon)
    return report


# ----------------------------------------------------------------------
# Tunable-contention transfers (the execution-lane benchmark workload)
# ----------------------------------------------------------------------
#: Deployment name of the contention workload's FastMoney instance (kept
#: apart from the default "fastmoney" so both can coexist).
CONTENDED_CONTRACT = "fastmoney.contended"


def run_contended_transfers(
    deployment: BlockumulusDeployment,
    count: int = 200,
    conflict_rate: float = 0.0,
    hot_accounts: int = 4,
    pools: int = DEFAULT_CLIENT_POOLS,
    amount: int = 1,
    label: Optional[str] = None,
    horizon: float = 3_600.0,
    submit_at: Optional[float] = None,
) -> WorkloadReport:
    """Submit ``count`` simultaneous transfers with a tunable conflict rate.

    Every transaction normally comes from its own genesis-funded account
    and pays a fresh recipient, so its write set is disjoint from every
    other transaction's and the conflict-aware lane scheduler can run them
    all in parallel.  With probability ``conflict_rate`` a transaction is
    instead sent *from* one of ``hot_accounts`` shared hot accounts — a
    genuine read-modify-write on the hot balance key (the insufficient-funds
    check), which conflicts with every other transfer from the same hot
    account and forces the scheduler to serialize them.

    ``conflict_rate=0`` is the embarrassingly parallel end of the dial,
    ``conflict_rate=1`` with one hot account reproduces the fully serial
    schedule.  The workload funds accounts through genesis balances (no
    measurable funding phase), and ``submit_at`` pins the submission
    instant so runs under different configurations sign byte-identical
    payloads (identical transaction ids), which is what lets the benchmark
    assert ledger/receipt/fingerprint equality across lane counts.
    """
    _validate_count(count)
    _validate_amount(amount)
    conflict_rate = _validate_rate(conflict_rate, "conflict_rate")
    if hot_accounts < 1:
        raise WorkloadError("at least one hot account is required")
    clients = build_client_pools(deployment, pools)
    cold_signers = [
        deployment.make_client_signer(f"contention-account/{index}") for index in range(count)
    ]
    hot_signers = [
        deployment.make_client_signer(f"contention-hot/{index}") for index in range(hot_accounts)
    ]
    genesis = {signer.address.hex(): amount for signer in cold_signers}
    for signer in hot_signers:
        genesis[signer.address.hex()] = amount * count  # never runs dry
    deployment.deploy_community_contract_instances(
        [
            FastMoney(
                CONTENDED_CONTRACT,
                params={"genesis_balances": genesis, "allow_faucet": False},
            )
        ]
    )
    rng = deployment.seeds.stream("workload-contention")
    if submit_at is not None:
        if submit_at < deployment.env.now:
            raise WorkloadError(f"cannot submit at {submit_at}: now is {deployment.env.now}")
        deployment.run(until=submit_at)
    report = WorkloadReport(
        label=label
        or f"lanes/{deployment.consortium_size}cells/{count}tx/conflict{conflict_rate:.2f}",
        consortium_size=deployment.consortium_size,
    )
    events = []
    for index in range(count):
        client = clients[index % len(clients)]
        if rng.random() < conflict_rate:
            signer = hot_signers[rng.randrange(hot_accounts)]
        else:
            signer = cold_signers[index]
        events.append(
            FastMoneyClient(client, contract_name=CONTENDED_CONTRACT).transfer(
                _fresh_recipient(index), amount, signer=signer
            )
        )
    report.results = _collect(deployment, events, horizon)
    return report


# ----------------------------------------------------------------------
# Sharded workloads (contract-state sharding across cell groups)
# ----------------------------------------------------------------------
@dataclass
class ShardedWorkloadReport(WorkloadReport):
    """A workload report whose burst may include cross-shard transactions.

    In-group transactions land in ``results`` exactly as in the unsharded
    reports; cross-shard two-phase transfers land in ``cross_results``.
    Throughput covers both kinds.  With one shard there are no
    cross-shard transactions and this degenerates to a plain
    :class:`WorkloadReport`.
    """

    cross_results: list[CrossShardResult] = field(default_factory=list)

    @property
    def cross_successes(self) -> list[CrossShardResult]:
        """Cross-shard transactions that committed on every participant."""
        return [result for result in self.cross_results if result.ok]

    @property
    def cross_failures(self) -> list[CrossShardResult]:
        """Cross-shard transactions that genuinely failed (aborted).

        In-transit outcomes are excluded: the value provably moved (or
        reclaims under an escrow deadline), the client just never saw the
        final acknowledgement — that is a degraded observation, not a
        failed transfer.
        """
        return [
            result
            for result in self.cross_results
            if not result.ok and not result.in_transit
        ]

    @property
    def cross_in_transit(self) -> list[CrossShardResult]:
        """Cross-shard transactions decided but not fully acknowledged."""
        return [result for result in self.cross_results if result.in_transit]

    @property
    def failure_count(self) -> int:
        """Failed transactions, in-group and cross-shard combined."""
        return len(self.failures) + len(self.cross_failures)

    def cross_latencies(self) -> SampleSeries:
        """End-to-end latency series over committed cross-shard transfers."""
        series = SampleSeries(f"{self.label}/cross")
        series.extend(result.latency for result in self.cross_successes)
        return series

    def throughput(self) -> ThroughputResult:
        """Aggregate throughput over all successful transactions."""
        completed = [
            (result.submitted_at, result.completed_at) for result in self.successes
        ] + [
            (result.submitted_at, result.completed_at) for result in self.cross_successes
        ]
        if not completed:
            raise WorkloadError(f"workload {self.label!r} produced no successful transactions")
        return ThroughputResult(
            operations=len(completed),
            first_start=min(start for start, _end in completed),
            last_end=max(end for _start, end in completed),
        )

    def summary(self) -> dict[str, Any]:
        """Headline numbers including the cross-shard share.

        Built without assuming any in-group successes exist — a workload
        run entirely at ``cross_shard_rate=1.0`` has an empty in-group
        latency series, and its percentiles are reported as ``None``
        rather than raising.
        """
        latencies = self.latencies() if self.successes else None
        throughput = self.throughput()
        summary = {
            "label": self.label,
            "cells": self.consortium_size,
            "transactions": len(self.results) + len(self.cross_results),
            "failures": self.failure_count,
            "latency_p50": latencies.p50() if latencies is not None else None,
            "latency_p90": latencies.p90() if latencies is not None else None,
            "latency_p99": latencies.p99() if latencies is not None else None,
            "latency_max": latencies.max() if latencies is not None else None,
            "makespan": throughput.makespan,
            "throughput_tps": throughput.throughput,
            "cross_shard_transactions": len(self.cross_results),
            "cross_shard_failures": len(self.cross_failures),
            "cross_shard_in_transit": len(self.cross_in_transit),
        }
        if self.cross_successes:
            summary["cross_latency_p50"] = self.cross_latencies().p50()
        return summary


def build_sharded_client_pools(
    deployment: ShardedDeployment,
    pools: int = DEFAULT_CLIENT_POOLS,
) -> list[ShardedClient]:
    """Create client-pool machines spanning every cell group.

    Pool ``i`` reuses the unsharded pools' identity seed (``pool/<i>``)
    and cell assignment (``i mod consortium_size``), so with one shard
    the pools are indistinguishable from :func:`build_client_pools` —
    the anchor of the shards=1 equivalence guarantee.
    """
    if pools < 1:
        raise WorkloadError("at least one client pool is required")
    primary = deployment.group(0).deployment
    clients = [
        ShardedClient(
            deployment,
            signer=primary.make_client_signer(f"pool/{index}"),
            service_cell_index=index % primary.consortium_size,
            node_basename=f"client-pool-{index}",
        )
        for index in range(pools)
    ]
    if deployment.config.enforce_subscriptions:
        waiters = [
            inner.subscribe() for client in clients for inner in client.clients
        ]
        deployment.env.run(deployment.env.all_of(waiters))
    return clients


def _sharded_instances(deployment: ShardedDeployment, base_name: str) -> list[str]:
    """Per-group instance names of one sharded application contract."""
    return [
        ShardedFastMoneyClient.instance_name(base_name, group, deployment.shard_count)
        for group in range(deployment.shard_count)
    ]


def _collect_sharded(
    deployment: ShardedDeployment,
    events: list[tuple[Event, bool]],
    horizon: float,
) -> tuple[list[TransactionResult], list[CrossShardResult]]:
    """Run until all events fire, splitting plain and cross-shard results.

    Each event is tagged with whether it is a cross-shard coordination
    (so a timed-out cross-shard transaction is still accounted as one,
    not mislabelled as an in-group failure).
    """
    env = deployment.env
    done = env.all_of([event for event, _is_cross in events])
    env.run(env.any_of([done, env.timeout(horizon)]))
    results: list[TransactionResult] = []
    cross: list[CrossShardResult] = []
    for event, is_cross in events:
        if event.processed or event.triggered:
            value = event.value
            if isinstance(value, CrossShardResult):
                cross.append(value)
            else:
                results.append(value)
        elif is_cross:
            cross.append(
                CrossShardResult(
                    ok=False,
                    xtx="",
                    decision="abort",
                    submitted_at=env.now - horizon,
                    completed_at=env.now,
                    error="workload horizon exceeded before the cross-shard commit completed",
                )
            )
        else:
            results.append(
                TransactionResult(
                    ok=False,
                    submitted_at=env.now - horizon,
                    completed_at=env.now,
                    error="workload horizon exceeded before a reply arrived",
                )
            )
    return results, cross


def _validate_cross_rate(deployment: ShardedDeployment, cross_shard_rate: float) -> float:
    cross_shard_rate = _validate_rate(cross_shard_rate, "cross_shard_rate")
    if cross_shard_rate > 0.0 and deployment.shard_count < 2:
        raise WorkloadError("cross_shard_rate requires at least two shards")
    return cross_shard_rate


def run_sharded_burst_transfers(
    deployment: ShardedDeployment,
    count: int = 5_000,
    cross_shard_rate: float = 0.0,
    pools: int = DEFAULT_CLIENT_POOLS,
    amount: int = 1,
    label: Optional[str] = None,
    horizon: float = 3_600.0,
    submit_at: Optional[float] = None,
    fast_path: bool = False,
    await_redeem: bool = True,
) -> ShardedWorkloadReport:
    """The Fig. 10 burst, spread across cell groups.

    Transaction ``i`` lives on its *home group* ``i mod N`` and is a
    plain transfer on that group's FastMoney instance; with probability
    ``cross_shard_rate`` it instead runs as a two-phase escrow transfer
    to a different group.  With ``shard_count == 1`` every choice
    collapses to exactly :func:`run_burst_transfers` — same pool
    identities, same funding phase, same recipients, no RNG draws — so
    the two produce identical ledgers, receipts, and fingerprints.
    ``fast_path`` routes eligible cross transfers over the voucher fast
    path; ``await_redeem=False`` additionally completes each one at the
    asynchronous commit point (voucher secured), leaving
    ``CrossShardResult.redeem`` events for the caller to drain.
    """
    _validate_count(count)
    _validate_amount(amount)
    cross_shard_rate = _validate_cross_rate(deployment, cross_shard_rate)
    shards = deployment.shard_count
    instances = _sharded_instances(deployment, FastMoney.DEFAULT_NAME)
    if shards > 1:
        # One FastMoney instance per group (the unsharded deployment
        # already carries the base instance).
        for group, name in enumerate(instances):
            deployment.deploy_contract_instances([FastMoney(name)], group=group)
    pool_clients = build_sharded_client_pools(deployment, pools)

    # Funding phase (not measured): every pool faucets on every group's
    # instance, so any pool can send from any home group.
    funding = [
        (
            FastMoneyClient(pool.client_for(group), contract_name=instances[group]).faucet(
                amount * count * 2
            ),
            False,
        )
        for pool in pool_clients
        for group in range(shards)
    ]
    funded, _ = _collect_sharded(deployment, funding, horizon)
    failed = [result for result in funded if not result.ok]
    if failed:
        raise WorkloadError(f"pool funding failed: {failed[0].error}")

    if submit_at is not None:
        if submit_at < deployment.env.now:
            raise WorkloadError(
                f"cannot submit at {submit_at}: funding finished at {deployment.env.now}"
            )
        deployment.run(until=submit_at)

    report = ShardedWorkloadReport(
        label=label
        or f"sharding/{shards}shards/{count}tx/cross{cross_shard_rate:.2f}",
        consortium_size=deployment.config.consortium_size,
    )
    rng = deployment.seeds.stream("workload-xshard") if cross_shard_rate > 0.0 else None
    events: list[tuple[Event, bool]] = []
    for index in range(count):
        home = index % shards
        pool = pool_clients[(index // shards) % len(pool_clients)]
        recipient = _fresh_recipient(index)
        if rng is not None and rng.random() < cross_shard_rate:
            target = (home + 1 + rng.randrange(shards - 1)) % shards
            app = ShardedFastMoneyClient(pool, base_name=FastMoney.DEFAULT_NAME)
            events.append(
                (
                    app.transfer_cross(
                        home, target, recipient, amount,
                        signer=pool.signer, fast_path=fast_path,
                        await_redeem=await_redeem,
                    ),
                    True,
                )
            )
        else:
            events.append(
                (
                    FastMoneyClient(
                        pool.client_for(home), contract_name=instances[home]
                    ).transfer(recipient, amount),
                    False,
                )
            )
    report.results, report.cross_results = _collect_sharded(deployment, events, horizon)
    return report


# ----------------------------------------------------------------------
# Mixed multi-contract operations (the chaos-engine workload)
# ----------------------------------------------------------------------
#: Operation kinds run_mixed_operations understands.
MIXED_OP_KINDS = frozenset({"transfer", "cas_put", "vote", "invest"})


@dataclass(frozen=True)
class MixedOperation:
    """One scripted operation of a mixed multi-contract workload.

    ``sender`` indexes into the account list given to
    :func:`run_mixed_operations`; ``at`` is the absolute simulated
    submission time.  ``args`` are kind-specific:

    * ``transfer`` — ``{"to": <account index>, "amount": int}``; runs as
      a plain in-group transfer when both accounts live on the same cell
      group and as a two-phase cross-shard escrow transfer otherwise;
    * ``cas_put`` — ``{"content_hex": "0x..."}``;
    * ``vote`` — ``{"election_id": str, "choice": str}``;
    * ``invest`` — ``{"amount": int}``.
    """

    at: float
    kind: str
    sender: int
    args: dict[str, Any] = field(default_factory=dict)

    def validate(self, accounts: int) -> None:
        """Raise :class:`WorkloadError` for a malformed operation."""
        if self.kind not in MIXED_OP_KINDS:
            raise WorkloadError(
                f"unknown mixed operation kind {self.kind!r}; "
                f"known kinds: {sorted(MIXED_OP_KINDS)}"
            )
        if not isinstance(self.at, (int, float)) or self.at < 0:
            raise WorkloadError(f"operation time must be non-negative, got {self.at!r}")
        if not isinstance(self.sender, int) or not 0 <= self.sender < accounts:
            raise WorkloadError(
                f"operation sender {self.sender!r} is not an account index "
                f"in [0, {accounts})"
            )
        if self.kind == "transfer":
            to = self.args.get("to")
            if not isinstance(to, int) or not 0 <= to < accounts or to == self.sender:
                raise WorkloadError(
                    f"transfer recipient {to!r} must be a different account index"
                )
            _validate_amount(self.args.get("amount"))
        elif self.kind == "invest":
            _validate_amount(self.args.get("amount"))
        elif self.kind == "cas_put":
            content = self.args.get("content_hex")
            if not isinstance(content, str) or not content.startswith("0x"):
                raise WorkloadError("cas_put needs 0x-hex args['content_hex']")
        elif self.kind == "vote":
            if not self.args.get("election_id") or not self.args.get("choice"):
                raise WorkloadError("vote needs args['election_id'] and args['choice']")

    def to_data(self) -> dict[str, Any]:
        """JSON-serializable form (chaos scenario specs)."""
        return {
            "at": self.at,
            "kind": self.kind,
            "sender": self.sender,
            "args": dict(sorted(self.args.items())),
        }

    @classmethod
    def from_data(cls, data: dict[str, Any]) -> "MixedOperation":
        """Inverse of :meth:`to_data`."""
        return cls(
            at=float(data["at"]),
            kind=str(data["kind"]),
            sender=int(data["sender"]),
            args=dict(data.get("args", {})),
        )


@dataclass
class MixedWorkloadReport:
    """Everything observed while running one mixed workload.

    ``results[i]`` is what the client learned about ``operations[i]`` — a
    :class:`TransactionResult`, a :class:`CrossShardResult`, or ``None``
    when no reply ever arrived before the horizon (e.g. the operation was
    censored).  Client-side outcomes are *observations*, not ground
    truth: under faults a transaction can execute consortium-wide while
    its receipt is lost, so the chaos oracles derive the committed set
    from the ledgers instead.
    """

    label: str
    base_name: str
    operations: list[MixedOperation] = field(default_factory=list)
    results: list[Optional[TransactionResult | CrossShardResult]] = field(
        default_factory=list
    )
    #: Account signers, in index order (accounts[i] is op sender i).
    accounts: list[Any] = field(default_factory=list)
    #: Home cell group of each account under the workload's shard map.
    homes: list[int] = field(default_factory=list)
    #: Genesis balance each account was funded with, by index.
    genesis: list[int] = field(default_factory=list)

    @property
    def ok_count(self) -> int:
        """Operations whose client saw a successful outcome."""
        return sum(1 for result in self.results if result is not None and result.ok)

    @property
    def unanswered_count(self) -> int:
        """Operations whose client never heard back (censored or lost)."""
        return sum(1 for result in self.results if result is None)


def mixed_instance_names(deployment: ShardedDeployment, base_name: str) -> list[str]:
    """Per-group FastMoney instance names of a mixed workload."""
    return _sharded_instances(deployment, base_name)


def plan_mixed_genesis(
    operations: list[MixedOperation], accounts: int
) -> dict[int, int]:
    """Genesis balances that make every transfer order-independent.

    Funding each account with the *total* it could ever send means any
    subset of the workload's transfers succeeds in any order — which is
    what lets a serial reference execution replay exactly the operations
    a chaotic run committed, without manufacturing insufficient-funds
    divergences that depend on interleaving.  Accounts that send nothing
    get zero (a transfer from such a *pauper* deterministically reverts
    everywhere — the workload's built-in 2PC-abort generator).
    """
    genesis = {index: 0 for index in range(accounts)}
    for op in operations:
        if op.kind == "transfer":
            genesis[op.sender] += int(op.args["amount"])
    return genesis


def run_mixed_operations(
    deployment: ShardedDeployment,
    operations: list[MixedOperation],
    account_seeds: list[str],
    base_name: str = "fastmoney.chaos",
    genesis: Optional[dict[int, int]] = None,
    elections: Optional[list[tuple[str, list[str]]]] = None,
    election_closes_at: float = 1_000_000.0,
    pools: int = 4,
    horizon: float = 60.0,
    label: Optional[str] = None,
    fast_path: bool = False,
) -> MixedWorkloadReport:
    """Drive a scripted multi-contract workload over a sharded deployment.

    Deploys one genesis-funded FastMoney instance of ``base_name`` per
    cell group, creates the given ballot ``elections`` (driving the
    simulation until each is confirmed — a setup phase, exactly like the
    funding phase of the burst workloads), then submits every operation
    at its scheduled time and collects replies until all have arrived or
    the absolute simulated time ``horizon`` passes.  Accounts are minted
    deterministically from ``account_seeds``, so two runs of the same
    script are bit-for-bit identical.

    ``genesis`` overrides the auto-sized funding of
    :func:`plan_mixed_genesis` per account index (e.g. to create paupers
    whose transfers must revert).  The CAS, ballot, and dividend-pool
    operations target the deployment's default system/community
    contracts and route through the shard map like any client traffic.
    """
    if not operations:
        raise WorkloadError("a mixed workload needs at least one operation")
    accounts = len(account_seeds)
    if accounts < 2:
        raise WorkloadError("a mixed workload needs at least two accounts")
    for op in operations:
        op.validate(accounts)

    primary = deployment.group(0).deployment
    signers = [primary.make_client_signer(seed) for seed in account_seeds]

    funding = plan_mixed_genesis(operations, accounts)
    if genesis is not None:
        funding.update(genesis)
    shards = deployment.shard_count
    instances = _sharded_instances(deployment, base_name)
    homes = [
        ShardedFastMoneyClient.account_home(base_name, signer.address, shards)
        for signer in signers
    ]
    for group, name in enumerate(instances):
        group_genesis = {
            signers[index].address.hex(): amount
            for index, amount in sorted(funding.items())
            if homes[index] == group and amount > 0
        }
        prototype = FastMoney(
            name, params={"genesis_balances": group_genesis, "allow_faucet": False}
        )
        deployment.deploy_contract_instances([prototype], group=group)

    pool_clients = build_sharded_client_pools(deployment, pools)

    # Setup phase: elections exist (and are visible consortium-wide)
    # before any vote is submitted.
    for election_id, choices in elections or []:
        event = pool_clients[0].submit(
            "ballot",
            "create_election",
            {
                "election_id": election_id,
                "question": f"chaos/{election_id}",
                "choices": list(choices),
                "closes_at": election_closes_at,
            },
            signer=signers[0],
        )
        deployment.env.run(event)
        result = event.value
        if not result.ok:
            raise WorkloadError(f"creating election {election_id!r} failed: {result.error}")

    report = MixedWorkloadReport(
        label=label or f"mixed/{shards}shards/{len(operations)}ops",
        base_name=base_name,
        operations=list(operations),
        accounts=signers,
        homes=homes,
        genesis=[funding.get(index, 0) for index in range(accounts)],
    )
    env = deployment.env
    events: list[Optional[Event]] = [None] * len(operations)

    def submit(op: MixedOperation) -> Event:
        pool = pool_clients[op.sender % len(pool_clients)]
        signer = signers[op.sender]
        if op.kind == "transfer":
            app = ShardedFastMoneyClient(pool, base_name=base_name)
            return app.transfer(
                signers[op.args["to"]].address, op.args["amount"], signer=signer,
                fast_path=fast_path,
            )
        if op.kind == "cas_put":
            return pool.submit(
                "system.cas", "put", {"content_hex": op.args["content_hex"]}, signer=signer
            )
        if op.kind == "vote":
            return pool.submit(
                "ballot",
                "vote",
                {"election_id": op.args["election_id"], "choice": op.args["choice"]},
                signer=signer,
            )
        # invest
        return pool.submit(
            "dividendpool", "invest", {"amount": op.args["amount"]}, signer=signer
        )

    ordered = sorted(range(len(operations)), key=lambda i: (operations[i].at, i))

    def driver() -> Generator[Event, Any, None]:
        for index in ordered:
            op = operations[index]
            if op.at > env.now:
                yield env.timeout(op.at - env.now)
            events[index] = submit(op)

    process = env.process(driver())
    env.run(process)
    live = [event for event in events if event is not None]
    done = env.all_of(live)
    if horizon <= env.now:
        raise WorkloadError(f"horizon {horizon} is not after the last submission ({env.now})")
    env.run(env.any_of([done, env.timeout(horizon - env.now)]))
    report.results = [
        event.value if event is not None and (event.processed or event.triggered) else None
        for event in events
    ]
    return report


def run_sharded_contended_transfers(
    deployment: ShardedDeployment,
    count: int = 200,
    conflict_rate: float = 0.0,
    cross_shard_rate: float = 0.0,
    hot_accounts: int = 4,
    pools: int = DEFAULT_CLIENT_POOLS,
    amount: int = 1,
    label: Optional[str] = None,
    horizon: float = 3_600.0,
    submit_at: Optional[float] = None,
) -> ShardedWorkloadReport:
    """The tunable-contention workload, spread across cell groups.

    Within each group the contention dial works exactly as in
    :func:`run_contended_transfers` (hot senders force serialization);
    across groups the ``cross_shard_rate`` dial turns cold transfers into
    two-phase escrow transfers to another group.  The contention RNG
    stream is drawn identically to the unsharded workload and the
    cross-shard decision uses a separate stream, so with one shard and a
    zero cross rate this is the unsharded workload, artifact-for-artifact
    (the sharding differential suite asserts it).
    """
    _validate_count(count)
    _validate_amount(amount)
    conflict_rate = _validate_rate(conflict_rate, "conflict_rate")
    cross_shard_rate = _validate_cross_rate(deployment, cross_shard_rate)
    if hot_accounts < 1:
        raise WorkloadError("at least one hot account is required")
    shards = deployment.shard_count
    instances = _sharded_instances(deployment, CONTENDED_CONTRACT)
    primary = deployment.group(0).deployment

    cold_signers = [
        primary.make_client_signer(f"contention-account/{index}") for index in range(count)
    ]
    hot_signers = [
        primary.make_client_signer(f"contention-hot/{index}") for index in range(hot_accounts)
    ]
    # Genesis funding per instance: cold account i lives on its home
    # group's instance; hot accounts are funded everywhere so intra-group
    # conflicts exist on every shard.
    for group, name in enumerate(instances):
        genesis = {
            signer.address.hex(): amount
            for index, signer in enumerate(cold_signers)
            if index % shards == group
        }
        for signer in hot_signers:
            genesis[signer.address.hex()] = amount * count  # never runs dry
        prototype = FastMoney(
            name, params={"genesis_balances": genesis, "allow_faucet": False}
        )
        deployment.deploy_contract_instances([prototype], group=group)

    pool_clients = build_sharded_client_pools(deployment, pools)
    contention_rng = deployment.seeds.stream("workload-contention")
    cross_rng = (
        deployment.seeds.stream("workload-xshard") if cross_shard_rate > 0.0 else None
    )
    if submit_at is not None:
        if submit_at < deployment.env.now:
            raise WorkloadError(f"cannot submit at {submit_at}: now is {deployment.env.now}")
        deployment.run(until=submit_at)

    report = ShardedWorkloadReport(
        label=label
        or (
            f"sharding/{shards}shards/{count}tx/"
            f"conflict{conflict_rate:.2f}/cross{cross_shard_rate:.2f}"
        ),
        consortium_size=deployment.config.consortium_size,
    )
    events: list[tuple[Event, bool]] = []
    for index in range(count):
        home = index % shards
        pool = pool_clients[(index // shards) % len(pool_clients)]
        recipient = _fresh_recipient(index)
        if contention_rng.random() < conflict_rate:
            signer: Any = hot_signers[contention_rng.randrange(hot_accounts)]
            hot = True
        else:
            signer = cold_signers[index]
            hot = False
        # Hot senders stay in-group: contention is an intra-group effect.
        if not hot and cross_rng is not None and cross_rng.random() < cross_shard_rate:
            target = (home + 1 + cross_rng.randrange(shards - 1)) % shards
            app = ShardedFastMoneyClient(pool, base_name=CONTENDED_CONTRACT)
            events.append(
                (app.transfer_cross(home, target, recipient, amount, signer=signer), True)
            )
        else:
            events.append(
                (
                    FastMoneyClient(
                        pool.client_for(home), contract_name=instances[home]
                    ).transfer(recipient, amount, signer=signer),
                    False,
                )
            )
    report.results, report.cross_results = _collect_sharded(deployment, events, horizon)
    return report
