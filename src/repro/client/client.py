"""The Blockumulus client API.

A client (Section III-B4) holds an access subscription with one cell — its
*service cell* — and interacts with bContracts by sending signed TX_SUBMIT
messages and waiting for the aggregated multi-signature receipt.  A client
object here models one client machine (or one of the paper's geographically
scattered *client pools*): it owns a network node, and can submit requests
either under its own identity or on behalf of freshly generated throwaway
accounts, exactly as the paper's test harness does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.deployment import BlockumulusDeployment
from ..core.receipts import AggregatedReceipt, ReceiptError
from ..crypto.keys import Address
from ..messages.envelope import Envelope, NonceFactory
from ..messages.opcodes import Opcode
from ..messages.signer import Signer
from ..sim.events import Event


class ClientError(Exception):
    """Raised for client-side protocol failures."""


@dataclass
class TransactionResult:
    """What a client learns about one submitted transaction."""

    ok: bool
    submitted_at: float
    completed_at: float
    receipt: Optional[AggregatedReceipt] = None
    error: Optional[str] = None
    tx_id: Optional[str] = None

    @property
    def latency(self) -> float:
        """Client-observed confirmation delay (seconds of simulated time)."""
        return self.completed_at - self.submitted_at

    @property
    def shed(self) -> bool:
        """Whether the cell's admission controller rejected this arrival.

        A shed transaction was refused *before* ledger admission — it
        never executed anywhere and is safe to retry.  Matched on the
        ``OVERLOADED`` error prefix of the cell's ``TX_ERROR`` reply.
        """
        return not self.ok and self.error is not None and self.error.startswith("OVERLOADED")


class BlockumulusClient:
    """A client machine attached to the simulated network.

    One instance models one client machine bound to one *service cell*:
    construction registers a network node, links it to the cell, and
    (unless a ``signer`` is shared in) mints a fresh deterministic
    identity.  All request APIs are asynchronous in simulation time —
    they return a :class:`~repro.sim.events.Event` that fires with the
    typed result (:class:`TransactionResult` for :meth:`submit`, the raw
    view value for :meth:`query`, the reply envelope for
    :meth:`request`); drive the environment to make progress.  Replies
    are matched to requests by nonce, so any number of requests may be
    in flight concurrently.
    """

    _counter = 0

    def __init__(
        self,
        deployment: BlockumulusDeployment,
        signer: Optional[Signer] = None,
        service_cell_index: int = 0,
        node_name: Optional[str] = None,
    ) -> None:
        self.deployment = deployment
        self.env = deployment.env
        self.network = deployment.network
        type(self)._counter += 1
        self.node_name = node_name or f"client-{type(self)._counter}"
        self.signer = signer or deployment.make_client_signer(f"client/{self.node_name}")
        self.service_cell = deployment.cell(service_cell_index)
        self.nonces = NonceFactory(self.signer.address)
        self._waiting: dict[str, Event] = {}
        self.network.register(self.node_name, handler=self._on_message)
        self.network.set_link(
            self.node_name, self.service_cell.node_name, deployment.config.client_cell_latency
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        """The client's Blockumulus address."""
        return self.signer.address

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def _on_message(self, src_node: str, payload: Any, size: int) -> None:
        """Network handler: route a reply envelope to its waiting request.

        Replies carry the originating request's nonce in ``reply_to``;
        unsolicited or duplicate messages are dropped silently (a client
        never serves requests).
        """
        if not isinstance(payload, Envelope):
            return
        reply_to = payload.payload.reply_to
        if reply_to is None:
            return
        waiter = self._waiting.pop(reply_to, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(payload)

    def _send_request(
        self,
        operation: Opcode,
        data: dict[str, Any],
        signer: Optional[Signer] = None,
    ) -> tuple[Envelope, Event]:
        """Sign, send, and register a waiter for the reply."""
        signer = signer or self.signer
        request = Envelope.create(
            signer=signer,
            recipient=self.service_cell.address,
            operation=operation,
            data=data,
            timestamp=self.env.now,
            nonce=self.nonces.next(),
        )
        waiter = self.env.event()
        self._waiting[request.nonce] = waiter
        accepted = self.network.send(
            self.node_name, self.service_cell.node_name, request, request.byte_size()
        )
        if not accepted:
            # The service cell is offline; fail the waiter immediately so
            # callers do not hang forever.
            waiter.fail(ClientError("service cell is unreachable"))
        return request, waiter

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def request(
        self,
        operation: Opcode,
        data: dict[str, Any],
        signer: Optional[Signer] = None,
    ) -> tuple[Envelope, Event]:
        """Send one signed request to the service cell; returns (request, waiter).

        The waiter event fires with the reply :class:`Envelope` (or fails
        with :class:`ClientError` when the service cell is unreachable).
        This is the raw building block under :meth:`submit` and
        :meth:`query`; protocol layers that add their own reply handling —
        e.g. the cross-shard coordinator in
        :class:`~repro.client.sharded.ShardedClient`, which drives
        ``XSHARD_*`` phases against several groups — use it directly.
        """
        return self._send_request(operation, data, signer=signer)

    def subscribe(self) -> Event:
        """Open an access subscription with the service cell."""
        _request, waiter = self._send_request(Opcode.SUBSCRIBE, {"plan": "standard"})
        return waiter

    def submit(
        self,
        contract: str,
        method: str,
        args: dict[str, Any],
        signer: Optional[Signer] = None,
    ) -> Event:
        """Submit a bContract transaction; the event fires with a TransactionResult."""
        submitted_at = self.env.now
        request, waiter = self._send_request(
            Opcode.TX_SUBMIT,
            {"contract": contract, "method": method, "args": args},
            signer=signer,
        )
        result_event = self.env.event()

        def _resolve(event: Event) -> None:
            if not event._ok:
                event.defused = True
                result_event.succeed(
                    TransactionResult(
                        ok=False,
                        submitted_at=submitted_at,
                        completed_at=self.env.now,
                        error=str(event.value),
                        tx_id=request.payload.hash_hex(),
                    )
                )
                return
            reply: Envelope = event.value
            result_event.succeed(self._parse_reply(reply, submitted_at, request))

        waiter.add_callback(_resolve)
        return result_event

    def _parse_reply(
        self, reply: Envelope, submitted_at: float, request: Envelope
    ) -> TransactionResult:
        if reply.operation == Opcode.TX_RECEIPT:
            try:
                receipt = AggregatedReceipt.from_wire(reply.data["receipt"])
            except (KeyError, ReceiptError) as exc:
                return TransactionResult(
                    ok=False,
                    submitted_at=submitted_at,
                    completed_at=self.env.now,
                    error=f"malformed receipt: {exc}",
                    tx_id=request.payload.hash_hex(),
                )
            return TransactionResult(
                ok=True,
                submitted_at=submitted_at,
                completed_at=self.env.now,
                receipt=receipt,
                tx_id=receipt.tx_id,
            )
        error = reply.data.get("error", f"unexpected reply {reply.operation.value}")
        return TransactionResult(
            ok=False,
            submitted_at=submitted_at,
            completed_at=self.env.now,
            error=error,
            tx_id=request.payload.hash_hex(),
        )

    def query(self, contract: str, view: str, args: dict[str, Any] | None = None) -> Event:
        """Read-only state query served by the service cell alone."""
        _request, waiter = self._send_request(
            Opcode.QUERY_STATE, {"contract": contract, "view": view, "args": args or {}}
        )
        result_event = self.env.event()

        def _resolve(event: Event) -> None:
            if not event._ok:
                event.defused = True
                result_event.fail(ClientError(str(event.value)))
                return
            reply: Envelope = event.value
            if reply.operation == Opcode.QUERY_RESULT:
                result_event.succeed(reply.data.get("result"))
            else:
                result_event.fail(ClientError(reply.data.get("error", "query failed")))

        waiter.add_callback(_resolve)
        return result_event

    def submit_contingency(self, contract: str, method: str, args: dict[str, Any],
                           eth_key, signer: Optional[Signer] = None) -> Event:
        """Submit a transaction directly to the Ethereum anchor contract.

        This is the censorship escape hatch of Section V-B: the signed
        Blockumulus envelope is wrapped into an Ethereum transaction calling
        ``submit_contingency`` on the SnapshotRegistry; cells are obliged to
        execute everything recorded there.  Returns the event of the
        Ethereum receipt.
        """
        signer = signer or self.signer
        envelope = Envelope.create(
            signer=signer,
            recipient=self.service_cell.address,
            operation=Opcode.TX_SUBMIT,
            data={"contract": contract, "method": method, "args": args},
            timestamp=self.env.now,
            nonce=self.nonces.next(),
        )
        return self.deployment.eth.transact_and_wait(
            eth_key,
            self.deployment.registry_contract.address,
            "submit_contingency",
            {"transaction": envelope.to_wire()},
        )
