"""Application-level client wrappers for the bundled bContracts.

These mirror the JavaScript FastMoney and CAS user clients the paper
implements for its automated evaluation (Section VI-A): thin, typed facades
over :class:`BlockumulusClient` for the contracts shipped with the
framework.
"""

from __future__ import annotations

from typing import Any, Optional

from ..contracts.community.ballot import Ballot
from ..contracts.community.fastmoney import FastMoney
from ..contracts.system.cas import ContentAddressableStorage
from ..crypto.keys import Address
from ..messages.signer import Signer
from ..sim.events import Event
from .client import BlockumulusClient


class FastMoneyClient:
    """Client for the FastMoney payment bContract."""

    def __init__(self, client: BlockumulusClient, contract_name: str = FastMoney.DEFAULT_NAME) -> None:
        self.client = client
        self.contract_name = contract_name

    def faucet(self, amount: int, signer: Optional[Signer] = None) -> Event:
        """Credit the caller with new funds (evaluation helper)."""
        return self.client.submit(self.contract_name, "faucet", {"amount": amount}, signer=signer)

    def transfer(
        self, to: Address | str, amount: int, signer: Optional[Signer] = None
    ) -> Event:
        """Transfer ``amount`` units to ``to``."""
        recipient = to.hex() if isinstance(to, Address) else to
        return self.client.submit(
            self.contract_name, "transfer", {"to": recipient, "amount": amount}, signer=signer
        )

    def balance_of(self, account: Address | str) -> Event:
        """Query the balance of ``account``."""
        owner = account.hex() if isinstance(account, Address) else account
        return self.client.query(self.contract_name, "balance_of", {"account": owner})

    def total_supply(self) -> Event:
        """Query the total supply."""
        return self.client.query(self.contract_name, "total_supply")


class CasClient:
    """Client for the content-addressable storage system bContract."""

    def __init__(
        self,
        client: BlockumulusClient,
        contract_name: str = ContentAddressableStorage.DEFAULT_NAME,
    ) -> None:
        self.client = client
        self.contract_name = contract_name

    def put(self, content: bytes, signer: Optional[Signer] = None) -> Event:
        """Upload a blob; the receipt's result carries its CAS hash."""
        return self.client.submit(
            self.contract_name, "put", {"content_hex": "0x" + content.hex()}, signer=signer
        )

    def get(self, digest: str) -> Event:
        """Download a blob by hash (read-only query)."""
        return self.client.query(self.contract_name, "get", {"digest": digest})

    def release(self, digest: str, signer: Optional[Signer] = None) -> Event:
        """Release one reference to a blob."""
        return self.client.submit(self.contract_name, "release", {"digest": digest}, signer=signer)

    def reference_count(self, digest: str) -> Event:
        """Query the current reference count of a blob."""
        return self.client.query(self.contract_name, "reference_count", {"digest": digest})


class BallotClient:
    """Client for the Ballot voting bContract."""

    def __init__(self, client: BlockumulusClient, contract_name: str = Ballot.DEFAULT_NAME) -> None:
        self.client = client
        self.contract_name = contract_name

    def create_election(
        self, election_id: str, question: str, choices: list[str], closes_at: float,
        signer: Optional[Signer] = None,
    ) -> Event:
        """Open a new election."""
        return self.client.submit(
            self.contract_name,
            "create_election",
            {
                "election_id": election_id,
                "question": question,
                "choices": choices,
                "closes_at": closes_at,
            },
            signer=signer,
        )

    def vote(self, election_id: str, choice: str, signer: Optional[Signer] = None) -> Event:
        """Cast a vote."""
        return self.client.submit(
            self.contract_name, "vote", {"election_id": election_id, "choice": choice},
            signer=signer,
        )

    def tally(self, election_id: str) -> Event:
        """Query the current tally."""
        return self.client.query(self.contract_name, "tally", {"election_id": election_id})

    def winner(self, election_id: str) -> Event:
        """Query the leading choice."""
        return self.client.query(self.contract_name, "winner", {"election_id": election_id})


def deploy_contract_source(
    client: BlockumulusClient,
    name: str,
    source: str,
    params: dict[str, Any] | None = None,
    destroyable: bool = True,
    signer: Optional[Signer] = None,
) -> Event:
    """Deploy a community bContract from source through the system deployer."""
    return client.submit(
        "system.deployer",
        "deploy",
        {"name": name, "source": source, "params": params or {}, "destroyable": destroyable},
        signer=signer,
    )
