"""Client-side shard routing and the cross-shard 2PC coordinator.

A :class:`ShardedClient` fronts a whole
:class:`~repro.core.sharding.ShardedDeployment`: it holds one ordinary
:class:`~repro.client.client.BlockumulusClient` per cell group (all
sharing one identity) and routes every call to the group that owns the
target contract — or, for the namespace-sharded CAS, the blob digest —
through the deployment's :class:`~repro.core.sharding.ShardMap`.  Routing
is total and explicit: a contract no group owns raises
:class:`ShardRoutingError` instead of silently hitting the wrong group.

For the rare transaction whose access plan spans groups the client is the
two-phase-commit *coordinator* (see :mod:`repro.messages.xshard`):

1. **span detection** — each sub-call's pre-execution
   :class:`~repro.core.lanes.AccessFootprint` (derived from the target
   contract's declared access plan) is mapped through the shard map; one
   group means no 2PC is needed.
2. **prepare** — the client signs each group's inner *hold* transaction
   plus an ``XSHARD_PREPARE`` around it and collects the gateways'
   signed votes against the forwarding deadline.
3. **decide** — all-yes assembles the votes into a commit certificate and
   sends ``XSHARD_COMMIT`` everywhere; anything else sends
   ``XSHARD_ABORT`` to the groups that prepared, rolling their holds
   back.  Gateways re-verify the certificate against the shard
   directory, so a faulty coordinator cannot commit one side only.

The coordinator runs as a simulation process; :meth:`ShardedClient.submit_cross`
returns the process, whose value is a :class:`CrossShardResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..contracts.community.fastmoney import FastMoney
from ..core.lanes import AccessFootprint
from ..core.sharding import (
    GATEWAY_CELL_INDEX,
    NAMESPACE_SHARDED_CONTRACTS,
    ShardedDeployment,
    ShardingError,
    _stable_shard,
)
from ..crypto.hashing import fast_hash
from ..crypto.keys import Address
from ..messages.envelope import Envelope
from ..messages.opcodes import Opcode
from ..messages.signer import Signer
from ..messages.xshard import (
    CrossShardDecision,
    CrossShardError,
    CrossShardPrepare,
    CrossShardVote,
    CrossShardVoucher,
    CrossShardVoucherTransfer,
)
from ..sim.events import Event
from .client import BlockumulusClient, ClientError


class ShardRoutingError(ClientError):
    """Raised when a call cannot be routed to exactly one owning group."""


#: One invocation: (contract, method, args).
Call = tuple[str, str, dict[str, Any]]

#: Default padding (seconds) added to delivery-side escrow deadlines.
#: Clock skew in this system is a delivery delay (the network adds the
#: two endpoints' skews to a message's latency), so a deadline computed
#: at the client can pass *in flight* on the slower leg while the other
#: leg settles in time.  Padding the destination-side deadline by the
#: configured skew bound keeps the two legs' deadlines effectively
#: symmetric; the chaos engine samples per-node skews up to 0.5s, so the
#: default covers both endpoints of one delivery.
DEFAULT_SKEW_PAD = 1.0


@dataclass(frozen=True)
class ParticipantPlan:
    """One group's share of a cross-shard transaction.

    ``prepare`` is the hold, ``commit`` finalizes it, ``abort`` rolls it
    back — each an ordinary method call on a contract the group owns
    (e.g. the FastMoney escrow methods).
    """

    group: int
    prepare: Call
    commit: Call
    abort: Call


@dataclass
class PhaseOutcome:
    """What one gateway answered for one phase."""

    ok: bool
    vote: Optional[CrossShardVote] = None
    receipt: Optional[dict[str, Any]] = None
    error: Optional[str] = None


@dataclass
class CrossShardResult:
    """What the coordinator learned about one cross-shard transaction.

    ``ok=False`` alone does not mean the transfer failed: when
    ``in_transit`` is set the decision was *provably reached* (a commit
    certificate exists, or a voucher was minted) but some leg's
    acknowledgement never arrived — the value moved, or will move, and
    callers must not double-count it as a failure.  ``prepare`` carries
    the signed votes (the certificate) so an in-transit decision can be
    re-driven.
    """

    ok: bool
    xtx: str
    decision: str                      # "commit" | "abort"
    submitted_at: float
    completed_at: float
    prepare: dict[int, PhaseOutcome] = field(default_factory=dict)
    acks: dict[int, PhaseOutcome] = field(default_factory=dict)
    error: Optional[str] = None
    in_transit: bool = False
    #: Asynchronous fast path only (``await_redeem=False``): the still-
    #: running redeem delivery, resolving to the final CrossShardResult.
    redeem: Optional[Event] = field(default=None, compare=False, repr=False)

    @property
    def latency(self) -> float:
        """Client-observed end-to-end delay (seconds of simulated time)."""
        return self.completed_at - self.submitted_at


class ShardedClient:
    """A client machine spanning every cell group of a sharded deployment."""

    _counter = 0

    def __init__(
        self,
        deployment: ShardedDeployment,
        signer: Optional[Signer] = None,
        service_cell_index: int = 0,
        node_basename: Optional[str] = None,
    ) -> None:
        self.deployment = deployment
        self.env = deployment.env
        primary = deployment.group(0).deployment
        # The default identity seed must be deterministic (a process-wide
        # counter, like BlockumulusClient's), never an object id — seeded
        # runs must mint identical client addresses run over run.
        type(self)._counter += 1
        self.signer = signer or primary.make_client_signer(
            f"sharded-client/{node_basename or type(self)._counter}"
        )
        #: One per-group client, all speaking with this client's identity.
        self.clients: list[BlockumulusClient] = [
            BlockumulusClient(
                group.deployment,
                signer=self.signer,
                service_cell_index=service_cell_index,
                node_name=(
                    f"{node_basename}@g{group.index}" if node_basename is not None else None
                ),
            )
            for group in deployment.groups
        ]
        self._node_basename = node_basename
        self._service_cell_index = service_cell_index
        #: Lazily created per-group clients bound to each group's
        #: designated gateway cell — XSHARD phases must go there, while
        #: ordinary submits/queries may use any service cell.
        self._gateway_clients: list[Optional[BlockumulusClient]] = [None] * len(
            deployment.groups
        )
        self._xtx_counter = 0

    @property
    def address(self) -> Address:
        """The client's Blockumulus address (one identity on every group)."""
        return self.signer.address

    def client_for(self, group: int) -> BlockumulusClient:
        """The per-group client attached to cell group ``group``."""
        try:
            return self.clients[group]
        except IndexError:
            raise ShardRoutingError(f"no cell group with index {group}") from None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, contract: str, method: str, args: dict[str, Any]) -> int:
        """Owning group of one call; unknown contracts raise cleanly."""
        if (
            contract not in NAMESPACE_SHARDED_CONTRACTS
            and contract not in self.deployment.contract_locations
        ):
            raise ShardRoutingError(
                f"no contract named {contract!r} is deployed in any cell group"
            )
        try:
            return self.deployment.shard_map.route_call(contract, method, args)
        except ShardingError as exc:
            raise ShardRoutingError(str(exc)) from exc

    def submit(
        self,
        contract: str,
        method: str,
        args: dict[str, Any],
        signer: Optional[Signer] = None,
    ) -> Event:
        """Submit a single-group transaction to the owning group."""
        group = self.route(contract, method, args)
        return self.clients[group].submit(contract, method, args, signer=signer)

    def query(self, contract: str, view: str, args: dict[str, Any] | None = None) -> Event:
        """Read-only query served by the owning group's service cell."""
        group = self.route(contract, view, args or {})
        return self.clients[group].query(contract, view, args)

    # ------------------------------------------------------------------
    # Span detection (reusing the lane engine's access footprints)
    # ------------------------------------------------------------------
    def plan_groups(self, calls: list[Call], sender: Optional[Address] = None) -> frozenset[int]:
        """Groups the calls touch, per their pre-execution access plans.

        Each call's target contract (on its owning group) is asked for
        its declared access plan; the resulting
        :class:`~repro.core.lanes.AccessFootprint` qualified keys map
        back through the shard map.  A contract without a plan
        contributes its owning group alone — exactly the exclusive
        fallback the lane engine uses, and always a superset-safe answer
        here because one contract's keys live on one group.
        """
        sender_hex = (sender or self.signer.address).hex()
        groups: set[int] = set()
        for contract_name, method, args in calls:
            home = self.route(contract_name, method, args)
            groups.add(home)
            registry = self.deployment.group(home).cells[0].contracts
            if not registry.contains(contract_name):
                continue
            plan = None
            try:
                plan = registry.get(contract_name).access_plan(
                    method, args, sender=sender_hex, tx_id=f"plan/{method}"
                )
            except Exception:  # noqa: BLE001 - planless calls route by contract
                plan = None
            if plan is None:
                continue
            footprint = AccessFootprint.from_access_set(contract_name, plan)
            spanned = self.deployment.shard_map.groups_for_footprint(footprint)
            if spanned is not None:
                groups.update(spanned)
        return frozenset(groups)

    # ------------------------------------------------------------------
    # The two-phase cross-shard commit
    # ------------------------------------------------------------------
    def next_xtx(self) -> str:
        """A fresh deployment-unique cross-shard transaction id."""
        self._xtx_counter += 1
        digest = fast_hash(
            b"xtx/" + self.signer.address.value + self._xtx_counter.to_bytes(8, "big")
        )
        return "0x" + digest[:16].hex()

    def submit_cross(
        self,
        plans: list[ParticipantPlan],
        signer: Optional[Signer] = None,
        xtx: Optional[str] = None,
    ) -> Event:
        """Run a cross-shard transaction; the process value is a CrossShardResult."""
        if len({plan.group for plan in plans}) != len(plans) or len(plans) < 2:
            raise ShardRoutingError(
                "a cross-shard transaction needs one plan per group, for at least two groups"
            )
        return self.env.process(
            self._coordinate(plans, signer or self.signer, xtx or self.next_xtx())
        )

    def _gateway_client(self, group: int) -> BlockumulusClient:
        """The client bound to ``group``'s designated gateway cell."""
        if self._service_cell_index == GATEWAY_CELL_INDEX:
            # The regular per-group client already talks to the gateway.
            return self.clients[group]
        client = self._gateway_clients[group]
        if client is None:
            client = BlockumulusClient(
                self.deployment.group(group).deployment,
                signer=self.signer,
                service_cell_index=GATEWAY_CELL_INDEX,
                node_name=(
                    f"{self._node_basename}@g{group}/gw"
                    if self._node_basename is not None
                    else None
                ),
            )
            self._gateway_clients[group] = client
        return client

    def _sign_call(self, signer: Signer, group: int, call: Call) -> Envelope:
        """Sign one inner transaction addressed to a group's gateway cell."""
        contract, method, args = call
        client = self._gateway_client(group)
        return Envelope.create(
            signer=signer,
            recipient=client.service_cell.address,
            operation=Opcode.TX_SUBMIT,
            data={"contract": contract, "method": method, "args": args},
            timestamp=self.env.now,
            nonce=client.nonces.next(),
        )

    def _safe_reply(self, waiter: Event) -> Event:
        """Wrap a reply waiter so it always succeeds (with None on failure)."""
        safe = self.env.event()

        def _resolve(event: Event) -> None:
            if not event._ok:
                event.defused = True
                safe.succeed(None)
            else:
                safe.succeed(event.value)

        waiter.add_callback(_resolve)
        return safe

    def _send_phase(
        self, signer: Signer, plan: ParticipantPlan, data: dict[str, Any], opcode: Opcode
    ) -> Event:
        """Send one phase envelope to a group's gateway; returns the safe waiter."""
        _request, waiter = self._gateway_client(plan.group).request(
            opcode, data, signer=signer
        )
        return self._safe_reply(waiter)

    def _parse_vote(
        self,
        reply: Optional[Envelope],
        xtx: str,
        group: int,
        participants: tuple[int, ...],
        phase: str,
    ) -> PhaseOutcome:
        """Turn one gateway reply (or its absence) into a PhaseOutcome."""
        if reply is None:
            return PhaseOutcome(ok=False, error="gateway unreachable or timed out")
        if reply.operation != Opcode.XSHARD_VOTE:
            return PhaseOutcome(
                ok=False, error=str(reply.data.get("error", f"unexpected {reply.operation}"))
            )
        try:
            vote = CrossShardVote.from_data(reply.data)
        except CrossShardError as exc:
            return PhaseOutcome(ok=False, error=str(exc))
        if (
            vote.xtx != xtx
            or vote.group != group
            or vote.participants != participants
            or vote.phase != phase
            or not vote.verify()
            or vote.voter != reply.sender
        ):
            return PhaseOutcome(ok=False, error="gateway vote failed verification")
        return PhaseOutcome(
            ok=vote.ok,
            vote=vote,
            receipt=reply.data.get("receipt"),
            error=reply.data.get("error"),
        )

    def _coordinate(
        self, plans: list[ParticipantPlan], signer: Signer, xtx: str
    ) -> Generator[Event, Any, CrossShardResult]:
        submitted_at = self.env.now
        participants = tuple(sorted(plan.group for plan in plans))
        deadline = self.deployment.config.forwarding_deadline

        # Phase 1: prepare everywhere, in parallel.
        prepare_waiters: dict[int, Event] = {}
        for plan in plans:
            inner = self._sign_call(signer, plan.group, plan.prepare)
            body = CrossShardPrepare(
                xtx=xtx, group=plan.group, participants=participants,
                transaction=inner.to_wire(),
            )
            prepare_waiters[plan.group] = self._send_phase(
                signer, plan, body.to_data(), Opcode.XSHARD_PREPARE
            )
        yield self.env.any_of(
            [self.env.all_of(list(prepare_waiters.values())), self.env.timeout(deadline)]
        )
        prepare: dict[int, PhaseOutcome] = {
            plan.group: self._parse_vote(
                prepare_waiters[plan.group].value
                if prepare_waiters[plan.group].triggered
                else None,
                xtx, plan.group, participants, "prepare",
            )
            for plan in plans
        }

        committing = all(outcome.ok for outcome in prepare.values())
        decision = "commit" if committing else "abort"
        # The decision certificate: all yes votes for a commit, and the
        # genuine no votes as evidence for an abort (gateways require
        # proof that the commit certificate can never be assembled).
        certificate = tuple(
            outcome.vote for outcome in prepare.values() if outcome.vote is not None
        )
        have_no_vote = any(
            outcome.vote is not None and not outcome.vote.ok
            for outcome in prepare.values()
        )

        # Phase 2: commit everywhere, or roll back the groups that held.
        ack_waiters: dict[int, Event] = {}
        if committing or have_no_vote:
            for plan in plans:
                if not committing:
                    outcome = prepare[plan.group]
                    if outcome.vote is not None and not outcome.vote.ok:
                        # An explicit no-vote means the hold itself failed
                        # and was rolled back by the contract — nothing to
                        # abort.  A *lost* vote is different: the hold may
                        # have been taken, so the abort (carrying the
                        # no-vote evidence) is still sent; a gateway that
                        # never prepared simply refuses it.
                        continue
                call = plan.commit if committing else plan.abort
                inner = self._sign_call(signer, plan.group, call)
                body = CrossShardDecision(
                    xtx=xtx, decision=decision, group=plan.group,
                    participants=participants, transaction=inner.to_wire(),
                    votes=certificate,
                )
                ack_waiters[plan.group] = self._send_phase(
                    signer, plan, body.to_data(),
                    Opcode.XSHARD_COMMIT if committing else Opcode.XSHARD_ABORT,
                )
        if ack_waiters:
            yield self.env.any_of(
                [self.env.all_of(list(ack_waiters.values())), self.env.timeout(deadline)]
            )
        acks = {
            group: self._parse_vote(
                waiter.value if waiter.triggered else None, xtx, group, participants, decision
            )
            for group, waiter in ack_waiters.items()
        }

        ok = committing and all(outcome.ok for outcome in acks.values())
        error: Optional[str] = None
        in_transit = False
        if not committing:
            # Aggregate every group's distinct refusal, sorted by group,
            # so shrink/attribution reports see a stable message even
            # when several groups voted no for different reasons (dict
            # order used to surface an arbitrary one).
            failed = sorted(
                (group, outcome.error)
                for group, outcome in prepare.items()
                if not outcome.ok and outcome.error is not None
            )
            if not have_no_vote:
                error = (
                    "prepare votes were lost before any decision was provable; "
                    "holds remain escrowed until the decision is re-driven"
                )
            else:
                error = (
                    "; ".join(f"group {group}: {reason}" for group, reason in failed)
                    if failed
                    else "prepare phase failed"
                )
        elif not ok:
            # The commit *decision* was reached — the certificate in
            # ``prepare`` proves it and the decision was sent — so the
            # value is in transit, not lost: every group that received
            # the decision applied (or will apply) it, and a group that
            # missed it can have the certificate re-driven.  Reporting
            # this as a plain failure double-counts the transfer.
            in_transit = True
            failed = sorted(
                (group, outcome.error or "no commit acknowledgement before the deadline")
                for group, outcome in acks.items()
                if not outcome.ok
            )
            error = (
                "commit decided but not fully acknowledged ("
                + "; ".join(f"group {group}: {reason}" for group, reason in failed)
                + "); value is in transit under the commit certificate"
            )
        return CrossShardResult(
            ok=ok,
            xtx=xtx,
            decision=decision,
            submitted_at=submitted_at,
            completed_at=self.env.now,
            prepare=prepare,
            acks=acks,
            error=error,
            in_transit=in_transit,
        )

    # ------------------------------------------------------------------
    # The one-way voucher fast path
    # ------------------------------------------------------------------
    def destination_is_pure_increment(
        self, group: int, call: Call, sender: Optional[Address] = None
    ) -> bool:
        """Prove (not assume) that ``call``'s effect is a pure increment.

        The fast-path safety rule: the destination leg may skip 2PC only
        when its declared access plan shows that, apart from keys minted
        fresh for this transaction (they embed the unique xtx id, so no
        other transaction can touch them), every effect is a commutative
        delta.  Such a call commutes with all concurrent traffic — a
        one-way voucher redeemed at any later time yields the same state
        as a synchronous 2PC credit.  Anything unprovable (no plan, a
        read or write of a shared key, a routing mismatch) answers
        ``False`` and the transfer falls back to full 2PC.
        """
        contract_name, method, args = call
        xtx = args.get("xtx")
        if not isinstance(xtx, str) or not xtx:
            return False
        try:
            if self.route(contract_name, method, args) != group:
                return False
        except ShardRoutingError:
            return False
        registry = self.deployment.group(group).cells[0].contracts
        if not registry.contains(contract_name):
            return False
        sender_hex = (sender or self.signer.address).hex()
        try:
            plan = registry.get(contract_name).access_plan(
                method, args, sender=sender_hex, tx_id=f"plan/{method}"
            )
        except Exception:  # noqa: BLE001 - planless calls cannot prove safety
            return False
        if plan is None:
            return False
        shared = {key for key in (plan.reads | plan.writes) if xtx not in key}
        return not shared

    def submit_voucher(
        self,
        source_group: int,
        target_group: int,
        mint: Call,
        redeem: Call,
        signer: Optional[Signer] = None,
        xtx: Optional[str] = None,
        await_redeem: bool = True,
    ) -> Event:
        """Run a fast-path voucher transfer; the process value is a CrossShardResult.

        With ``await_redeem=False`` the process completes as soon as the
        signed voucher is secured and verified against the shard
        directory — the one-way asynchronous mode: the redeem leg keeps
        running in the background (``CrossShardResult.redeem`` resolves
        to the final outcome once delivery settles).
        """
        if source_group == target_group:
            raise ShardRoutingError("a voucher transfer needs two distinct groups")
        return self.env.process(
            self._coordinate_voucher(
                source_group, target_group, mint, redeem,
                signer or self.signer, xtx or self.next_xtx(),
                await_redeem=await_redeem,
            )
        )

    def _shard_gateway_directory(self) -> dict[int, frozenset]:
        """The shard directory: each group's designated gateway address."""
        return {
            group.index: frozenset({group.gateway.address})
            for group in self.deployment.groups
        }

    def _send_voucher(self, signer: Signer, group: int, data: dict[str, Any]) -> Event:
        """Send one voucher leg to a group's gateway; returns the safe waiter."""
        _request, waiter = self._gateway_client(group).request(
            Opcode.XSHARD_VOUCHER, data, signer=signer
        )
        return self._safe_reply(waiter)

    def _coordinate_voucher(
        self,
        source_group: int,
        target_group: int,
        mint: Call,
        redeem: Call,
        signer: Signer,
        xtx: str,
        await_redeem: bool = True,
    ) -> Generator[Event, Any, CrossShardResult]:
        """Drive mint-then-redeem; one message to each gateway, no barrier.

        Unlike :meth:`_coordinate` there is no prepare/decide round trip:
        the source gateway's signed voucher *is* the decision, and the
        destination's redeem is idempotent and deadline-bounded, so every
        partial outcome resolves — a refused mint fails cleanly before
        any value moves, and a lost voucher (or lost/refused redeem)
        leaves the value in transit until the source holder reclaims it
        after the voucher's reclaim deadline.

        With ``await_redeem=False`` the coordinator verifies the voucher
        against the shard directory itself (the check is load-bearing
        here: the early ``ok`` promises the credit will be honoured, so
        a forged voucher must be refused *before* the promise) and
        returns once it holds a valid voucher; the redeem leg runs on in
        the background and resolves ``CrossShardResult.redeem``.
        """
        submitted_at = self.env.now
        deadline = self.deployment.config.forwarding_deadline

        def result(
            ok: bool, decision: str, *, error: Optional[str] = None,
            in_transit: bool = False,
            prepare: Optional[dict[int, PhaseOutcome]] = None,
            acks: Optional[dict[int, PhaseOutcome]] = None,
            redeem_event: Optional[Event] = None,
        ) -> CrossShardResult:
            return CrossShardResult(
                ok=ok, xtx=xtx, decision=decision,
                submitted_at=submitted_at, completed_at=self.env.now,
                prepare=prepare or {}, acks=acks or {},
                error=error, in_transit=in_transit, redeem=redeem_event,
            )

        # Leg 1: the source gateway mints (escrowed debit + signed voucher).
        inner = self._sign_call(signer, source_group, mint)
        body = CrossShardVoucherTransfer(
            xtx=xtx, phase="mint", group=source_group,
            transaction=inner.to_wire(),
            target_group=target_group, target_contract=redeem[0],
        )
        waiter = self._send_voucher(signer, source_group, body.to_data())
        yield self.env.any_of([waiter, self.env.timeout(deadline)])
        reply = waiter.value if waiter.triggered else None
        if reply is None:
            return result(
                False, "abort", in_transit=True,
                error=(
                    "voucher mint unanswered before the deadline; an outstanding "
                    "voucher reclaims after its deadline"
                ),
            )
        if reply.operation != Opcode.XSHARD_VOUCHER:
            return result(
                False, "abort",
                error=str(reply.data.get("error", f"unexpected {reply.operation}")),
            )
        voucher_wire = reply.data.get("voucher")
        if reply.data.get("phase") != "minted" or not isinstance(voucher_wire, dict):
            return result(False, "abort", error="malformed voucher mint reply")
        try:
            voucher = CrossShardVoucher.from_wire(voucher_wire)
        except CrossShardError as exc:
            return result(False, "abort", error=str(exc))
        mint_outcome = PhaseOutcome(ok=True, receipt=reply.data.get("receipt"))

        if not await_redeem:
            # The asynchronous commit point: once the client holds a
            # directory-valid voucher the outcome is irrevocable — the
            # destination must honour it (idempotently) until its
            # deadline, after which the escrow reclaims.  The signature
            # check is load-bearing for the early ok, so a forged
            # voucher is refused here, before the promise is made.
            refusal = voucher.verify_against(self._shard_gateway_directory())
            if refusal is not None:
                return result(
                    False, "abort", in_transit=True,
                    prepare={source_group: mint_outcome},
                    error=(
                        f"voucher failed directory verification ({refusal}); "
                        "the escrowed debit reclaims after its deadline"
                    ),
                )
            redeem_event = self.env.process(
                self._redeem_voucher_leg(
                    signer, source_group, target_group, redeem, xtx,
                    voucher, mint_outcome, submitted_at,
                )
            )
            return result(
                True, "commit", prepare={source_group: mint_outcome},
                redeem_event=redeem_event,
            )

        # The synchronous client relays the voucher without judging its
        # signature: the destination gateway's directory check is the
        # authoritative refusal (which is how a forged voucher gets
        # caught and counted there rather than silently dropped here).
        final = yield from self._redeem_voucher_leg(
            signer, source_group, target_group, redeem, xtx,
            voucher, mint_outcome, submitted_at,
        )
        return final

    def _redeem_voucher_leg(
        self,
        signer: Signer,
        source_group: int,
        target_group: int,
        redeem: Call,
        xtx: str,
        voucher: CrossShardVoucher,
        mint_outcome: PhaseOutcome,
        submitted_at: float,
    ) -> Generator[Event, Any, CrossShardResult]:
        """Deliver one voucher to the destination gateway for redemption."""
        deadline = self.deployment.config.forwarding_deadline

        def result(
            ok: bool, *, error: Optional[str] = None, in_transit: bool = False,
            acks: Optional[dict[int, PhaseOutcome]] = None,
        ) -> CrossShardResult:
            return CrossShardResult(
                ok=ok, xtx=xtx, decision="commit",
                submitted_at=submitted_at, completed_at=self.env.now,
                prepare={source_group: mint_outcome}, acks=acks or {},
                error=error, in_transit=in_transit,
            )

        inner = self._sign_call(signer, target_group, redeem)
        body = CrossShardVoucherTransfer(
            xtx=xtx, phase="redeem", group=target_group,
            transaction=inner.to_wire(), voucher=voucher.to_wire(),
        )
        waiter = self._send_voucher(signer, target_group, body.to_data())
        yield self.env.any_of([waiter, self.env.timeout(deadline)])
        reply = waiter.value if waiter.triggered else None
        if reply is None:
            return result(
                False, in_transit=True,
                acks={target_group: PhaseOutcome(
                    ok=False, error="gateway unreachable or timed out"
                )},
                error=(
                    "voucher minted but the redeem was unanswered; value is in "
                    "transit until redeemed or reclaimed"
                ),
            )
        if reply.operation != Opcode.XSHARD_VOUCHER or reply.data.get("phase") != "redeemed":
            refusal = str(reply.data.get("error", f"unexpected {reply.operation}"))
            return result(
                False, in_transit=True,
                acks={target_group: PhaseOutcome(ok=False, error=refusal)},
                error=(
                    f"voucher minted but the redeem was refused ({refusal}); value "
                    "is in transit until redeemed or reclaimed"
                ),
            )
        return result(
            True,
            acks={target_group: PhaseOutcome(
                ok=True, receipt=reply.data.get("receipt")
            )},
        )


class ShardedFastMoneyClient:
    """FastMoney over a sharded deployment: per-group instances + 2PC transfers.

    The application deploys one FastMoney instance per group (named
    :meth:`instance_name`); accounts are assigned to groups by a stable
    hash, and a transfer whose sender and recipient live on different
    groups runs as a cross-shard escrow transfer (reserve/expect →
    settle/credit).  With one shard the instance name collapses to the
    base name and every transfer is a plain single-group transfer —
    which is what keeps ``shard_count=1`` identical to the unsharded
    pipeline.
    """

    def __init__(self, client: ShardedClient, base_name: str = FastMoney.DEFAULT_NAME) -> None:
        self.client = client
        self.base_name = base_name
        self.shard_count = client.deployment.shard_count

    @staticmethod
    def instance_name(base_name: str, group: int, shard_count: int) -> str:
        """Deployment name of the per-group instance (base name unsharded)."""
        return base_name if shard_count == 1 else f"{base_name}@s{group}"

    def instance(self, group: int) -> str:
        """This app's instance name on cell group ``group``."""
        return self.instance_name(self.base_name, group, self.shard_count)

    @staticmethod
    def account_home(base_name: str, account: Address | str, shard_count: int) -> int:
        """Home group of an account under one app's namespace (pure function)."""
        account_hex = account.hex() if isinstance(account, Address) else account
        return _stable_shard(
            f"account/{base_name}/{account_hex.lower()}", shard_count
        )

    def shard_of_account(self, account: Address | str) -> int:
        """Home group of an account (stable hash of its address)."""
        return self.account_home(self.base_name, account, self.shard_count)

    def transfer(
        self,
        to: Address | str,
        amount: int,
        signer: Optional[Signer] = None,
        hold_expiry: Optional[float] = None,
        fast_path: bool = False,
    ) -> Event:
        """Transfer with automatic routing: plain in-group, 2PC across groups.

        The event value is a
        :class:`~repro.client.client.TransactionResult` for an in-group
        transfer and a :class:`CrossShardResult` for a cross-group one.
        ``hold_expiry`` (seconds from now) arms the cross-shard escrow
        safety valve — see :meth:`transfer_cross`; it is ignored for
        in-group transfers, which hold nothing.  ``fast_path`` opts a
        cross-group transfer into the one-way voucher path when its
        destination footprint proves safe.
        """
        signer = signer or self.client.signer
        recipient = to.hex() if isinstance(to, Address) else to
        source = self.shard_of_account(signer.address)
        target = self.shard_of_account(recipient)
        if source == target:
            return self.client.clients[source].submit(
                self.instance(source), "transfer",
                {"to": recipient, "amount": amount}, signer=signer,
            )
        return self.transfer_cross(
            source, target, recipient, amount, signer=signer,
            hold_expiry=hold_expiry, fast_path=fast_path,
        )

    #: Voucher deadline when the caller arms no explicit hold_expiry,
    #: as a multiple of the forwarding deadline: far beyond the redeem
    #: round trip, yet early enough that a lost voucher reclaims within
    #: a bounded horizon.
    DEFAULT_VOUCHER_EXPIRY_FACTOR = 2.5

    def transfer_cross(
        self,
        source_group: int,
        target_group: int,
        to: Address | str,
        amount: int,
        signer: Optional[Signer] = None,
        hold_expiry: Optional[float] = None,
        fast_path: bool = False,
        skew_pad: float = DEFAULT_SKEW_PAD,
        await_redeem: bool = True,
    ) -> Event:
        """Cross-group transfer: two-phase escrow, or the voucher fast path.

        ``hold_expiry`` (seconds from now, far beyond the decision
        deadline) arms both escrow legs: if this coordinator then
        vanishes between PREPARE and the decision, the sender can pull
        the hold back with ``xshard_reclaim`` once the expiry passes,
        and a decision driven after it is refused on both sides.
        ``None`` (the default) keeps the historical behaviour — an
        undecided hold stays escrowed until a decision is re-driven.
        The *destination* leg's deadline is padded by ``skew_pad``
        (see :data:`DEFAULT_SKEW_PAD`): deadlines are checked at
        delivery time, and under skewed delivery the credit can arrive
        after a deadline the settle met — the pad keeps the two legs
        symmetric under the configured skew bound.

        ``fast_path=True`` runs the transfer as a one-way credit voucher
        *when the destination footprint provably is a pure increment*
        (see :meth:`ShardedClient.destination_is_pure_increment`):
        the source gateway executes the escrowed debit and signs a
        voucher, the destination redeems it as a plain increment — one
        message to each gateway instead of two full 2PC rounds.  The
        voucher always carries a deadline (``hold_expiry`` when given,
        else ``DEFAULT_VOUCHER_EXPIRY_FACTOR`` forwarding deadlines) so
        a lost voucher reclaims cleanly; an unprovable footprint falls
        back to full 2PC.  ``await_redeem=False`` (fast path only)
        completes once the voucher is secured and directory-verified,
        leaving the redeem to a background delivery —
        :attr:`CrossShardResult.redeem` resolves to the final outcome.
        """
        if source_group == target_group:
            raise ShardRoutingError("a cross-shard transfer needs two distinct groups")
        if hold_expiry is not None and hold_expiry <= self.client.deployment.config.forwarding_deadline:
            raise ShardRoutingError(
                "hold_expiry must exceed the forwarding deadline "
                f"({self.client.deployment.config.forwarding_deadline}s), "
                f"got {hold_expiry!r}"
            )
        if skew_pad < 0:
            raise ShardRoutingError(f"skew_pad must be non-negative, got {skew_pad!r}")
        signer = signer or self.client.signer
        recipient = to.hex() if isinstance(to, Address) else to
        xtx = self.client.next_xtx()
        source, target = self.instance(source_group), self.instance(target_group)

        if fast_path:
            expiry = (
                hold_expiry
                if hold_expiry is not None
                else self.DEFAULT_VOUCHER_EXPIRY_FACTOR
                * self.client.deployment.config.forwarding_deadline
            )
            # The redeem deadline is checked at the destination on
            # delivery, so it gets the skew pad; the reclaim deadline
            # sits another pad beyond it, keeping redeem and reclaim
            # mutually exclusive under the skew bound.
            voucher_expires = self.client.env.now + expiry + skew_pad
            reclaim_after = self.client.env.now + expiry + 2 * skew_pad
            mint: Call = (
                source, "xshard_voucher_mint",
                {"xtx": xtx, "to": recipient, "amount": amount,
                 "expires_at": voucher_expires, "reclaim_after": reclaim_after},
            )
            redeem: Call = (
                target, "xshard_voucher_redeem",
                {"xtx": xtx, "to": recipient, "amount": amount,
                 "expires_at": voucher_expires},
            )
            if self.client.destination_is_pure_increment(
                target_group, redeem, sender=signer.address
            ):
                return self.client.submit_voucher(
                    source_group, target_group, mint, redeem,
                    signer=signer, xtx=xtx, await_redeem=await_redeem,
                )
            # Unprovable destination footprint: fall through to 2PC.

        reserve_args: dict[str, Any] = {"xtx": xtx, "amount": amount}
        expect_args: dict[str, Any] = {"xtx": xtx, "to": recipient, "amount": amount}
        if hold_expiry is not None:
            expires_at = self.client.env.now + hold_expiry
            reserve_args["expires_at"] = expires_at
            # The credit-side deadline is enforced against the delivery
            # clock; pad it so a skew-delayed commit cannot expire the
            # destination leg while the source leg settles.
            expect_args["expires_at"] = expires_at + skew_pad
        plans = [
            ParticipantPlan(
                group=source_group,
                prepare=(source, "xshard_reserve", reserve_args),
                commit=(source, "xshard_settle", {"xtx": xtx}),
                abort=(source, "xshard_refund", {"xtx": xtx}),
            ),
            ParticipantPlan(
                group=target_group,
                prepare=(target, "xshard_expect", expect_args),
                commit=(target, "xshard_credit", {"xtx": xtx}),
                abort=(target, "xshard_cancel", {"xtx": xtx}),
            ),
        ]
        # Pre-execution span check: the declared access plans of the two
        # holds must really land on the two intended groups.
        spanned = self.client.plan_groups(
            [plans[0].prepare, plans[1].prepare], sender=signer.address
        )
        if not {source_group, target_group} <= spanned:
            raise ShardRoutingError(
                f"access plans span groups {sorted(spanned)}, "
                f"expected {sorted({source_group, target_group})}"
            )
        return self.client.submit_cross(plans, signer=signer, xtx=xtx)
