"""Client APIs, application wrappers, and workload generators."""

from .apps import BallotClient, CasClient, FastMoneyClient, deploy_contract_source
from .client import BlockumulusClient, ClientError, TransactionResult
from .sharded import (
    CrossShardResult,
    ParticipantPlan,
    ShardRoutingError,
    ShardedClient,
    ShardedFastMoneyClient,
)
from .workload import (
    CONTENDED_CONTRACT,
    DEFAULT_CLIENT_POOLS,
    ShardedWorkloadReport,
    WorkloadError,
    WorkloadReport,
    build_client_pools,
    build_sharded_client_pools,
    run_burst_cas_uploads,
    run_burst_transfers,
    run_contended_transfers,
    run_sequential_transfers,
    run_sharded_burst_transfers,
    run_sharded_contended_transfers,
)

__all__ = [
    "CONTENDED_CONTRACT",
    "BallotClient",
    "BlockumulusClient",
    "CasClient",
    "ClientError",
    "CrossShardResult",
    "DEFAULT_CLIENT_POOLS",
    "FastMoneyClient",
    "ParticipantPlan",
    "ShardRoutingError",
    "ShardedClient",
    "ShardedFastMoneyClient",
    "ShardedWorkloadReport",
    "TransactionResult",
    "WorkloadError",
    "WorkloadReport",
    "build_client_pools",
    "build_sharded_client_pools",
    "deploy_contract_source",
    "run_burst_cas_uploads",
    "run_burst_transfers",
    "run_contended_transfers",
    "run_sequential_transfers",
    "run_sharded_burst_transfers",
    "run_sharded_contended_transfers",
]
