"""Client APIs, application wrappers, and workload generators."""

from .apps import BallotClient, CasClient, FastMoneyClient, deploy_contract_source
from .client import BlockumulusClient, ClientError, TransactionResult
from .workload import (
    CONTENDED_CONTRACT,
    DEFAULT_CLIENT_POOLS,
    WorkloadError,
    WorkloadReport,
    build_client_pools,
    run_burst_cas_uploads,
    run_burst_transfers,
    run_contended_transfers,
    run_sequential_transfers,
)

__all__ = [
    "CONTENDED_CONTRACT",
    "BallotClient",
    "BlockumulusClient",
    "CasClient",
    "ClientError",
    "DEFAULT_CLIENT_POOLS",
    "FastMoneyClient",
    "TransactionResult",
    "WorkloadError",
    "WorkloadReport",
    "build_client_pools",
    "deploy_contract_source",
    "run_burst_cas_uploads",
    "run_burst_transfers",
    "run_contended_transfers",
    "run_sequential_transfers",
]
