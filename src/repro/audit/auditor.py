"""Independent Blockumulus auditors (Section III-B6, Fig. 4).

An auditor is a permissionless participant that oversees the integrity of a
deployment.  It performs the two audits the paper defines:

* **Snapshot succession audit** — download two consecutive data snapshots
  and the ledger segment between them from a cell, replay every executed
  transaction on top of the earlier snapshot, and check that the result
  fingerprints to the later snapshot.
* **Data integrity audit** — check that each cell anchored its snapshot
  fingerprint in the Ethereum contract on time, and that the anchored
  fingerprint matches the snapshot data the cell actually serves.

Auditors talk to cells over the same signed message interface as clients
and read the anchor contract through the Ethereum provider, so a cheating
cell cannot show the auditor anything it did not sign or anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional, TYPE_CHECKING

from ..contracts.community import Ballot, DividendPool, FastMoney
from ..contracts.interface import BContract
from ..contracts.registry import ContractRegistry
from ..contracts.system.cas import ContentAddressableStorage
from ..contracts.system.deployer import CommunityDeployer
from ..core.deployment import BlockumulusDeployment
from ..core.executor import TransactionExecutor
from ..core.ledger import LedgerEntry
from ..crypto.fingerprint import snapshot_fingerprint
from ..crypto.keys import Address
from ..messages.envelope import Envelope, NonceFactory
from ..messages.opcodes import Opcode
from ..messages.signer import Signer
from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.sharding import ShardedDeployment


class AuditError(Exception):
    """Raised when an audit cannot be carried out (not when it fails)."""


@dataclass
class AuditFinding:
    """One problem discovered by an audit."""

    kind: str
    cell: str
    cycle: int
    details: str


@dataclass
class AuditReport:
    """Outcome of one audit run."""

    auditor: str
    cell: str
    cycle: int
    passed: bool
    findings: list[AuditFinding] = field(default_factory=list)
    checked_transactions: int = 0
    #: Audit-specific payload (e.g. the recomputed shard digest).
    details: Optional[str] = None

    def add(self, kind: str, details: str) -> None:
        """Record a finding and mark the audit as failed."""
        self.passed = False
        self.findings.append(
            AuditFinding(kind=kind, cell=self.cell, cycle=self.cycle, details=details)
        )


def _default_contract_factories() -> dict[str, Any]:
    """How an auditor reconstructs each known contract type for replay."""
    return {
        ContentAddressableStorage.DEFAULT_NAME: lambda name: ContentAddressableStorage(name),
        CommunityDeployer.DEFAULT_NAME: lambda name: CommunityDeployer(name),
        FastMoney.DEFAULT_NAME: lambda name: FastMoney(name),
        Ballot.DEFAULT_NAME: lambda name: Ballot(name),
        DividendPool.DEFAULT_NAME: lambda name: DividendPool(name),
    }


#: Contract classes an auditor can instantiate from a snapshot's
#: ``contract_types`` tag — the general path, covering per-shard and
#: renamed instances the name-based factories above cannot know about.
_TYPE_FACTORIES: dict[str, Any] = {
    cls.TYPE: cls
    for cls in (
        ContentAddressableStorage,
        CommunityDeployer,
        FastMoney,
        Ballot,
        DividendPool,
    )
}


class Auditor:
    """A voluntary auditor attached to the simulated network."""

    _counter = 0

    def __init__(
        self,
        deployment: BlockumulusDeployment,
        signer: Optional[Signer] = None,
        node_name: Optional[str] = None,
    ) -> None:
        self.deployment = deployment
        self.env = deployment.env
        type(self)._counter += 1
        self.node_name = node_name or f"auditor-{type(self)._counter}"
        self.signer = signer or deployment.make_client_signer(f"auditor/{self.node_name}")
        self.nonces = NonceFactory(self.signer.address)
        self._waiting: dict[str, Event] = {}
        deployment.network.register(self.node_name, handler=self._on_message)

    # ------------------------------------------------------------------
    # Cell communication
    # ------------------------------------------------------------------
    def _on_message(self, src_node: str, payload: Any, size: int) -> None:
        if not isinstance(payload, Envelope) or payload.payload.reply_to is None:
            return
        waiter = self._waiting.pop(payload.payload.reply_to, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(payload)

    def _request(self, cell_index: int, operation: Opcode, data: dict[str, Any]) -> Event:
        cell = self.deployment.cell(cell_index)
        request = Envelope.create(
            signer=self.signer,
            recipient=cell.address,
            operation=operation,
            data=data,
            timestamp=self.env.now,
            nonce=self.nonces.next(),
        )
        waiter = self.env.event()
        self._waiting[request.nonce] = waiter
        accepted = self.deployment.network.send(
            self.node_name, cell.node_name, request, request.byte_size()
        )
        if not accepted:
            waiter.fail(AuditError(f"cell {cell.node_name} is unreachable"))
        return waiter

    def fetch_snapshot(self, cell_index: int, cycle: int) -> Event:
        """Download a cell's data snapshot for ``cycle``."""
        return self._request(cell_index, Opcode.SNAPSHOT_REQUEST, {"cycle": cycle})

    def fetch_ledger_segment(self, cell_index: int, first_cycle: int, last_cycle: int) -> Event:
        """Download a cell's ledger entries for a range of cycles."""
        return self._request(
            cell_index,
            Opcode.LEDGER_REQUEST,
            {"first_cycle": first_cycle, "last_cycle": last_cycle},
        )

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def audit_cell(self, cell_index: int, cycle: int) -> Generator[Event, Any, AuditReport]:
        """Full audit of one cell for one report cycle (a simulation process).

        Combines the data-integrity audit (anchored report present, timely,
        matching the served snapshot) with the snapshot-succession audit
        (replaying the cycle's transactions on the previous snapshot).
        Use ``deployment.env.process(auditor.audit_cell(...))`` and run the
        environment until the process completes; its value is the report.
        """
        cell = self.deployment.cell(cell_index)
        report = AuditReport(
            auditor=self.node_name, cell=cell.node_name, cycle=cycle, passed=True
        )

        snapshot_reply = yield self.fetch_snapshot(cell_index, cycle)
        if snapshot_reply.operation != Opcode.SNAPSHOT_RESPONSE:
            report.add("snapshot_unavailable", snapshot_reply.data.get("error", "no snapshot"))
            return report
        snapshot = snapshot_reply.data["snapshot"]

        previous_reply = yield self.fetch_snapshot(cell_index, cycle - 1)
        previous = (
            previous_reply.data["snapshot"]
            if previous_reply.operation == Opcode.SNAPSHOT_RESPONSE
            else None
        )

        ledger_reply = yield self.fetch_ledger_segment(cell_index, cycle, cycle)
        entries = (
            ledger_reply.data.get("entries", [])
            if ledger_reply.operation == Opcode.LEDGER_RESPONSE
            else []
        )

        self._check_anchoring(report, cell_index, cycle, snapshot)
        self._check_internal_consistency(report, snapshot)
        if previous is not None:
            self._check_succession(report, previous, snapshot, entries)
        return report

    # -- data integrity ------------------------------------------------
    def _check_anchoring(
        self, report: AuditReport, cell_index: int, cycle: int, snapshot: dict[str, Any]
    ) -> None:
        anchored = self.deployment.anchored_report(cycle, cell_index)
        if anchored is None:
            report.add("missing_report", f"cycle {cycle} has no anchored fingerprint")
            return
        served = snapshot.get("fingerprint", "")
        if "0x" + anchored.hex() != served:
            report.add(
                "fingerprint_mismatch",
                f"anchored {('0x' + anchored.hex())[:18]}... differs from served {served[:18]}...",
            )

    def _check_internal_consistency(self, report: AuditReport, snapshot: dict[str, Any]) -> None:
        """The served snapshot's combined fingerprint must match its parts."""
        parts = {
            name: bytes.fromhex(value[2:])
            for name, value in snapshot.get("contract_fingerprints", {}).items()
        }
        expected = "0x" + snapshot_fingerprint(parts).hex()
        if expected != snapshot.get("fingerprint"):
            report.add(
                "inconsistent_snapshot",
                "combined fingerprint does not match the per-contract fingerprints",
            )
        state_export = snapshot.get("state_export", {})
        types = snapshot.get("contract_types", {})
        for name, digest in parts.items():
            if name not in state_export:
                report.add("missing_state", f"snapshot omits state for contract {name!r}")
                continue
            rebuilt = _rebuild_contract(name, state_export[name], types.get(name))
            if rebuilt is None:
                continue
            if rebuilt.fingerprint() != digest:
                report.add(
                    "state_fingerprint_mismatch",
                    f"contract {name!r} state does not hash to its claimed fingerprint",
                )

    # -- snapshot succession --------------------------------------------
    def _check_succession(
        self,
        report: AuditReport,
        previous: dict[str, Any],
        snapshot: dict[str, Any],
        entries: list[dict[str, Any]],
    ) -> None:
        registry = ContractRegistry()
        previous_types = previous.get("contract_types", {})
        for name, state in previous.get("state_export", {}).items():
            contract = _rebuild_contract(name, state, previous_types.get(name))
            if contract is not None:
                registry.register(contract)
        if not len(registry):
            report.add("replay_impossible", "previous snapshot carries no reconstructable state")
            return
        executor = TransactionExecutor("auditor-replay", registry)
        replayed = 0
        for item in entries:
            summary = item.get("summary", {})
            if summary.get("status") != "executed":
                continue
            try:
                envelope = Envelope.from_wire(item["envelope"])
            except Exception:  # noqa: BLE001 - malformed entries are findings
                report.add("malformed_ledger_entry", f"sequence {summary.get('sequence')}")
                continue
            if not envelope.verify():
                report.add(
                    "forged_transaction",
                    f"ledger entry {summary.get('sequence')} has an invalid client signature",
                )
                continue
            entry = LedgerEntry(
                sequence=summary.get("sequence", replayed),
                tx_id=envelope.payload.hash_hex(),
                cycle=summary.get("cycle", snapshot.get("cycle", 0)),
                admitted_at=summary.get("admitted_at", 0.0),
                envelope=envelope,
                contingency=summary.get("contingency", False),
            )
            outcome = executor.execute(entry)
            if not outcome.ok:
                report.add(
                    "replay_divergence",
                    f"transaction {entry.tx_id[:18]}... fails on replay: {outcome.error}",
                )
            replayed += 1
        report.checked_transactions = replayed

        expected = {
            name: registry.get(name).fingerprint()
            for name in registry.names()
            if name in snapshot.get("contract_fingerprints", {})
        }
        claimed = {
            name: bytes.fromhex(value[2:])
            for name, value in snapshot.get("contract_fingerprints", {}).items()
            if name in expected
        }
        for name, digest in expected.items():
            if claimed.get(name) != digest:
                report.add(
                    "succession_mismatch",
                    f"replaying cycle {snapshot.get('cycle')} does not reproduce "
                    f"the fingerprint of contract {name!r}",
                )

    # -- recovered cells -------------------------------------------------
    def audit_recovery(
        self, cell_index: int, reference_index: int, cycle: Optional[int] = None
    ) -> Generator[Event, Any, AuditReport]:
        """Verify a recovered (or freshly bootstrapped) cell's fingerprints.

        Downloads the same-cycle snapshot from the recovered cell and from a
        live reference cell and requires identical combined and per-contract
        fingerprints; if the recovered cell has anchored a report for that
        cycle, it must match the snapshot it serves.  Run after the first
        post-recovery report cycle to confirm the cell rejoined in a state
        indistinguishable from one that never crashed (Section V).
        """
        cell = self.deployment.cell(cell_index)
        reference = self.deployment.cell(reference_index)
        report = AuditReport(
            auditor=self.node_name, cell=cell.node_name, cycle=cycle or -1, passed=True
        )

        recovered_reply = yield self.fetch_snapshot(cell_index, cycle)
        if recovered_reply.operation != Opcode.SNAPSHOT_RESPONSE:
            report.add(
                "snapshot_unavailable",
                recovered_reply.data.get("error", "recovered cell serves no snapshot"),
            )
            return report
        recovered = recovered_reply.data["snapshot"]
        report.cycle = int(recovered.get("cycle", -1))

        reference_reply = yield self.fetch_snapshot(reference_index, report.cycle)
        if reference_reply.operation != Opcode.SNAPSHOT_RESPONSE:
            report.add(
                "reference_unavailable",
                f"reference cell {reference.node_name} serves no snapshot "
                f"for cycle {report.cycle}",
            )
            return report
        expected = reference_reply.data["snapshot"]

        if recovered.get("fingerprint") != expected.get("fingerprint"):
            report.add(
                "recovery_divergence",
                f"cycle {report.cycle} fingerprints differ from {reference.node_name}",
            )
        recovered_parts = recovered.get("contract_fingerprints", {})
        for name, digest in expected.get("contract_fingerprints", {}).items():
            if recovered_parts.get(name) != digest:
                report.add(
                    "recovery_divergence",
                    f"contract {name!r} fingerprint differs from {reference.node_name}",
                )
        anchored = self.deployment.anchored_report(report.cycle, cell_index)
        if anchored is not None and "0x" + anchored.hex() != recovered.get("fingerprint"):
            report.add(
                "fingerprint_mismatch",
                f"recovered cell's anchored cycle-{report.cycle} report does not "
                "match the snapshot it serves",
            )
        return report

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def run_audit(self, cell_index: int, cycle: int) -> AuditReport:
        """Run a full audit synchronously (drives the simulation)."""
        process = self.env.process(self.audit_cell(cell_index, cycle))
        self.env.run(process)
        return process.value

    def run_recovery_audit(
        self, cell_index: int, reference_index: int, cycle: Optional[int] = None
    ) -> AuditReport:
        """Run a recovery audit synchronously (drives the simulation)."""
        process = self.env.process(self.audit_recovery(cell_index, reference_index, cycle))
        self.env.run(process)
        return process.value

    def cross_audit(self, cycle: int) -> list[AuditReport]:
        """Audit every cell for ``cycle`` (the consortium cross-audit)."""
        return [
            self.run_audit(cell_index, cycle)
            for cell_index in range(self.deployment.consortium_size)
        ]


class ShardedAuditor:
    """Global-consistency auditor for a sharded deployment.

    A sharded deployment has no single ledger to audit: each cell group
    keeps its own.  This auditor therefore composes two layers:

    * **per-group audits** — one ordinary :class:`Auditor` per group runs
      the paper's snapshot-succession and data-integrity audits against
      that group's cells (everything over the signed message interface,
      as usual);
    * **the shard digest** — every group's cells must agree on one
      execution fingerprint per report cycle; the auditor collects those
      per-group fingerprint histories, requires within-group unanimity,
      and recomputes the deployment-level hash chain with
      :func:`~repro.core.sharding.chain_shard_digest`.  Because the
      chain is a pure function of the per-group fingerprints, any
      divergence in any group's history — a dropped transaction, a
      different outcome, a reordered cycle — changes the digest;
      comparing the recomputation against a digest recorded earlier (or
      exchanged out of band) therefore detects tampering since that
      point.
    """

    def __init__(self, deployment: "ShardedDeployment") -> None:
        self.deployment = deployment
        self.group_auditors = [
            Auditor(group.deployment, node_name=f"sharded-auditor-g{group.index}")
            for group in deployment.groups
        ]

    def collect_group_fingerprints(self, through_cycle: int) -> list[list[str]]:
        """Per-cycle fingerprint lists ``[cycle][group]``, unanimity-checked.

        Raises :class:`AuditError` when the live cells of any group
        disagree among themselves — that is an intra-group consistency
        failure the group's own confirmation protocol should have caught,
        and chaining a digest over it would be meaningless.
        """
        per_group: list[list[str]] = []
        for group in self.deployment.groups:
            histories = {
                cell.node_name: cell.ledger.execution_fingerprints_through(through_cycle)
                for cell in group.cells
                if not cell.fault.crashed
            }
            if len(set(map(tuple, histories.values()))) != 1:
                # Localize the tamper: name the offending group and the
                # first cycle whose fingerprints disagree, so an operator
                # (or the chaos engine's shrinker) knows where to look.
                for cycle in range(through_cycle + 1):
                    # lint: disable=DET003 — feeds a set cardinality check, so order cannot leak
                    values = {history[cycle] for history in histories.values()}
                    if len(values) != 1:
                        raise AuditError(
                            f"cells of group {group.index} disagree on their execution "
                            f"history at cycle {cycle}: "
                            + ", ".join(
                                f"{name}={history[cycle][:18]}..."
                                for name, history in sorted(histories.items())
                            )
                        )
                raise AuditError(
                    f"cells of group {group.index} disagree on their execution history"
                )
            per_group.append(next(iter(histories.values())))
        return [
            [per_group[group][cycle] for group in range(len(per_group))]
            for cycle in range(through_cycle + 1)
        ]

    def localize_fingerprint_mismatch(
        self,
        through_cycle: int,
        published: list[list[str]],
        current: Optional[list[list[str]]] = None,
    ) -> list[tuple[int, int]]:
        """Where the deployment's history departs from a published one.

        ``published`` is a per-cycle list of per-group execution
        fingerprints ``[cycle][group]`` recorded earlier (the same matrix
        :meth:`collect_group_fingerprints` returns).  The result is the
        list of ``(cycle, group)`` coordinates whose fingerprints no
        longer match — which is how a forged shard-digest link is pinned
        to the offending group and cycle instead of just failing the
        end-of-chain comparison.  ``current`` reuses an already collected
        history instead of collecting it again.
        """
        if len(published) != through_cycle + 1:
            raise AuditError(
                f"published history covers {len(published)} cycles, "
                f"expected {through_cycle + 1}"
            )
        if current is None:
            current = self.collect_group_fingerprints(through_cycle)
        mismatches: list[tuple[int, int]] = []
        for cycle, (now_row, then_row) in enumerate(zip(current, published)):
            if len(then_row) != len(now_row):
                raise AuditError(
                    f"published cycle {cycle} carries {len(then_row)} group "
                    f"fingerprints, expected {len(now_row)}"
                )
            for group, (now_fp, then_fp) in enumerate(zip(now_row, then_row)):
                if now_fp != then_fp:
                    mismatches.append((cycle, group))
        return mismatches

    def verify_shard_digest(
        self,
        through_cycle: int,
        published: Optional[str] = None,
        published_fingerprints: Optional[list[list[str]]] = None,
    ) -> AuditReport:
        """Recompute the deployment digest from the per-group histories.

        Without ``published``, the audit establishes that a digest *can*
        be computed: every group's live cells agree on their whole
        execution-fingerprint history and the chain closes (this is the
        within-group consistency half).  Pass ``published`` — a digest
        recorded earlier, exchanged out of band, or anchored by the
        operator — to additionally verify the deployment's current state
        against that commitment: any dropped transaction, divergent
        outcome, or reordered cycle in any group since then changes the
        recomputation and is reported as a ``shard_digest_mismatch``.
        The recomputed digest is exposed as ``report.details``.

        ``published_fingerprints`` — the full per-cycle × per-group
        fingerprint matrix recorded alongside the digest — additionally
        localizes any mismatch: each forged or diverged link is reported
        as a ``shard_fingerprint_mismatch`` finding naming the offending
        group and cycle (:meth:`localize_fingerprint_mismatch`).
        """
        from ..core.sharding import ShardingError, chain_shard_digest

        report = AuditReport(
            auditor="sharded-auditor",
            cell=f"{self.deployment.shard_count} groups",
            cycle=through_cycle,
            passed=True,
        )
        try:
            fingerprints = self.collect_group_fingerprints(through_cycle)
            recomputed = chain_shard_digest(
                self.deployment.config.deployment_id,
                self.deployment.shard_count,
                fingerprints,
            )
        except (AuditError, ShardingError) as exc:
            report.add("shard_digest_unverifiable", str(exc))
            return report
        report.checked_transactions = sum(
            len(group.deployment.cells[0].ledger) for group in self.deployment.groups
        )
        report.details = recomputed
        if published is not None and recomputed != published:
            report.add(
                "shard_digest_mismatch",
                f"recomputed {recomputed[:18]}... differs from published {published[:18]}...",
            )
        if published_fingerprints is not None:
            try:
                mismatches = self.localize_fingerprint_mismatch(
                    through_cycle, published_fingerprints, current=fingerprints
                )
            except AuditError as exc:
                report.add("shard_digest_unverifiable", str(exc))
                return report
            for cycle, group in mismatches:
                report.add(
                    "shard_fingerprint_mismatch",
                    f"group {group} diverges from the published execution "
                    f"fingerprint at cycle {cycle}",
                )
        return report

    def run_sharded_audit(
        self,
        cycle: int,
        published_digest: Optional[str] = None,
        published_fingerprints: Optional[list[list[str]]] = None,
    ) -> dict[str, Any]:
        """Audit every group for ``cycle`` and verify the shard digest.

        Returns ``{"passed": bool, "digest": AuditReport, "groups":
        {group index: [AuditReport per cell]}}`` — the digest ties the
        per-group audits into one global-consistency verdict (compared
        against ``published_digest`` / the per-cycle
        ``published_fingerprints`` history when supplied; see
        :meth:`verify_shard_digest`).
        """
        group_reports = {
            auditor.deployment.config.node_namespace or str(index): auditor.cross_audit(cycle)
            for index, auditor in enumerate(self.group_auditors)
        }
        digest_report = self.verify_shard_digest(
            cycle,
            published=published_digest,
            published_fingerprints=published_fingerprints,
        )
        passed = digest_report.passed and all(
            report.passed for reports in group_reports.values() for report in reports
        )
        return {"passed": passed, "digest": digest_report, "groups": group_reports}


def _rebuild_contract(
    name: str, state: dict[str, Any], type_tag: Optional[str] = None
) -> Optional[BContract]:
    """Reconstruct a contract instance of a known type and restore its state.

    The snapshot's ``contract_types`` tag identifies the implementation
    regardless of the deployed name; the name-based factories remain as
    the fallback for snapshots recorded before the tag existed.
    """
    contract: Optional[BContract] = None
    cls = _TYPE_FACTORIES.get(type_tag) if type_tag else None
    if cls is not None:
        contract = cls(name)
    else:
        factory = _default_contract_factories().get(name)
        if factory is None:
            # Community contracts deployed from source would be rebuilt
            # through the deployer record; unknown names are skipped
            # rather than failed.
            return None
        contract = factory(name)
    contract.restore_state(state)
    return contract
