"""Composable audit oracles over a (sharded) deployment.

The paper's auditors (:mod:`repro.audit.auditor`) answer one question each
about one cell.  The chaos engine (:mod:`repro.chaos`) needs to ask *many*
questions about a whole deployment after an adversarial run and combine
the answers into one machine-checkable verdict — an *oracle stack*.  This
module provides the shared vocabulary:

* :class:`OracleResult` — one oracle's verdict: name, pass/fail, findings.
* :func:`run_audit_oracle` — the paper's audits as an oracle: every cell
  of every group passes its per-cycle audit, and the deployment-level
  shard digest recomputes (optionally against a published digest and
  fingerprint history, which localizes tampering to a group and cycle).
* :func:`run_conservation_oracle` — value conservation over every
  FastMoney-family instance: per-instance ``balances + held escrow ==
  supply``, cross-shard escrow pairs in legal states (a credit without a
  matching settle is minted value; a refund *and* a settle of one hold is
  a double spend), and the global ``minted == supply + in-transit``
  identity.

Oracles never use privileged state access to *decide* — the audit oracle
talks to cells over the signed message interface exactly as the paper's
auditors do; the conservation oracle reads contract stores directly, which
is sound because every store it reads is first covered by the audit
oracle's fingerprint checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..contracts.community.fastmoney import FastMoney
from ..core.sharding import ShardedDeployment
from .auditor import ShardedAuditor


@dataclass
class OracleResult:
    """One oracle's verdict about one deployment run."""

    oracle: str
    passed: bool
    #: Human-readable findings; empty when the oracle passed.
    findings: list[str] = field(default_factory=list)
    #: Oracle-specific headline numbers (coverage counters, totals).
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_data(self) -> dict[str, Any]:
        """JSON-serializable form (scenario reports)."""
        return {
            "oracle": self.oracle,
            "passed": self.passed,
            "findings": list(self.findings),
            "metrics": dict(sorted(self.metrics.items())),
        }


# ----------------------------------------------------------------------
# The paper's audits, composed over every group
# ----------------------------------------------------------------------
def run_audit_oracle(
    deployment: ShardedDeployment,
    cycle: int,
    published_digest: Optional[str] = None,
    published_fingerprints: Optional[list[list[str]]] = None,
) -> OracleResult:
    """Every cell passes its cycle audit and the shard digest closes.

    Wraps :meth:`ShardedAuditor.run_sharded_audit` (which drives the
    simulation) into an :class:`OracleResult`.  ``published_digest`` /
    ``published_fingerprints`` compare the deployment against a
    commitment recorded earlier; a mismatch is localized to the offending
    group and cycle when the fingerprint history is available.
    """
    findings: list[str] = []
    # Anchor agreement (Sections V-C/V-D): within each group, every cell
    # that anchored a report for a cycle must have anchored the *same*
    # fingerprint.  This is the public, cross-cell check that catches a
    # state-tampering cell even in the very first cycle, where the
    # per-cell succession audit has no predecessor snapshot to replay
    # from (a compromised cell is perfectly self-consistent — only the
    # comparison against its honest peers exposes it).  It runs first
    # and needs no cell cooperation, so its verdict survives even when a
    # cell is unreachable and aborts the interactive audits below.
    anchored_cycles = 0
    for group in deployment.groups:
        group_deployment = group.deployment
        for check_cycle in range(cycle + 1):
            anchors = {
                cell_index: anchored
                for cell_index in range(len(group_deployment.cells))
                if (anchored := group_deployment.anchored_report(check_cycle, cell_index))
                is not None
            }
            anchored_cycles += bool(anchors)
            if len(set(anchors.values())) > 1:
                counts: dict[bytes, int] = {}
                for value in anchors.values():
                    counts[value] = counts.get(value, 0) + 1
                top = max(counts.values())
                majority = [value for value, count in counts.items() if count == top]
                if len(majority) == 1:
                    outliers = sorted(
                        group_deployment.cells[index].node_name
                        for index, value in anchors.items()
                        if value != majority[0]
                    )
                    findings.append(
                        f"[group {group.index}] cycle {check_cycle}: anchored "
                        f"snapshot fingerprints disagree — {', '.join(outliers)} "
                        f"diverge(s) from the group majority"
                    )
                else:
                    # No majority (e.g. a 2-cell group split 1–1): the
                    # anchors prove *someone* tampered but cannot say
                    # who — name every side rather than coin-flipping an
                    # outlier; the succession audit assigns blame.
                    sides = ", ".join(
                        f"{group_deployment.cells[index].node_name}="
                        f"0x{value.hex()[:16]}..."
                        for index, value in sorted(anchors.items())
                    )
                    findings.append(
                        f"[group {group.index}] cycle {check_cycle}: anchored "
                        f"snapshot fingerprints disagree with no majority — {sides}"
                    )

    auditor = ShardedAuditor(deployment)
    audited_cells = 0
    checked_transactions = 0
    shard_digest = None
    try:
        outcome = auditor.run_sharded_audit(
            cycle,
            published_digest=published_digest,
            published_fingerprints=published_fingerprints,
        )
    except Exception as exc:  # noqa: BLE001 - an unauditable deployment is a finding
        findings.append(f"audit could not complete: {exc}")
    else:
        for namespace, reports in outcome["groups"].items():
            for report in reports:
                audited_cells += 1
                for finding in report.findings:
                    findings.append(
                        f"[group {namespace or '0'}] cell {finding.cell} cycle "
                        f"{finding.cycle}: {finding.kind}: {finding.details}"
                    )
        digest_report = outcome["digest"]
        for finding in digest_report.findings:
            findings.append(f"[digest] {finding.kind}: {finding.details}")
        checked_transactions = digest_report.checked_transactions
        shard_digest = digest_report.details
    return OracleResult(
        oracle="audit",
        passed=not findings,
        findings=findings,
        metrics={
            "audited_cells": audited_cells,
            "anchored_group_cycles": anchored_cycles,
            "checked_transactions": checked_transactions,
            "shard_digest": shard_digest,
        },
    )


# ----------------------------------------------------------------------
# Value conservation across FastMoney escrows
# ----------------------------------------------------------------------
def fastmoney_instances(
    deployment: ShardedDeployment,
) -> list[tuple[int, str, FastMoney]]:
    """Every FastMoney-family instance, as ``(group, name, contract)``.

    Contracts are read from each group's cell 0; the within-group audit
    (fingerprint agreement of all live cells) is what entitles an oracle
    to treat one cell's store as *the* group state.
    """
    instances: list[tuple[int, str, FastMoney]] = []
    for group in deployment.groups:
        registry = group.cells[0].contracts
        for name in registry.names():
            contract = registry.get(name)
            if isinstance(contract, FastMoney):
                instances.append((group.index, name, contract))
    return instances


def harvest_escrows(
    deployment: ShardedDeployment, base_name: Optional[str] = None
) -> dict[str, dict[str, dict[str, Any]]]:
    """All cross-shard escrow records, keyed ``xtx -> direction -> record``.

    Each record is augmented with the instance name and group it was read
    from.  ``base_name`` restricts the harvest to one application's
    per-group instances (e.g. ``fastmoney`` / ``fastmoney@s1``).
    """
    escrows: dict[str, dict[str, dict[str, Any]]] = {}
    for group_index, name, contract in fastmoney_instances(deployment):
        if base_name is not None and name.split("@s", 1)[0] != base_name:
            continue
        for key, record in contract.store.items("xshard/"):
            xtx = key.split("/", 1)[1]
            enriched = dict(record)
            enriched["instance"] = name
            enriched["group"] = group_index
            escrows.setdefault(xtx, {})[record["direction"]] = enriched
    return escrows


def run_conservation_oracle(
    deployment: ShardedDeployment,
    minted: dict[str, int],
) -> OracleResult:
    """No FastMoney value is created or destroyed, escrows included.

    ``minted`` maps each FastMoney instance name to the value legally
    minted into it (genesis balances plus executed faucets minus burns).
    Three layers of checks:

    * **per instance** — ``sum(balances) + sum(held out-escrows) ==
      supply``: an invariant of the contract's own bookkeeping, so any
      violation means the state itself was corrupted;
    * **escrow pairing** — each cross-shard transaction's (source,
      target) escrow pair is in a legal joint state: a credit requires a
      settle (else value was minted), a fast-path redeem requires a
      minted voucher that was not reclaimed, and a
      settled/refunded/reclaimed hold is terminal exactly once (else
      value was double-spent);
    * **global** — ``sum(minted) == sum(supplies) + in-transit``, where
      in-transit is value settled out of a source instance whose credit
      has not (yet) executed on the target — escrowed by the protocol,
      recoverable with the commit certificate, and reported in the
      metrics so a stuck decision is visible.
    """
    findings: list[str] = []
    instances = fastmoney_instances(deployment)
    known_names = {name for _g, name, _c in instances}
    for name in minted:
        if name not in known_names:
            findings.append(f"minted map names unknown instance {name!r}")

    total_supply = 0
    total_held = 0
    for _group, name, contract in instances:
        balances = sum(value for _k, value in contract.store.items("balance/"))
        held = sum(
            int(record["amount"])
            for _k, record in contract.store.items("xshard/")
            if record["direction"] == "out" and record["status"] == "held"
        )
        supply = contract.store.get("supply", 0)
        total_supply += supply
        total_held += held
        if balances + held != supply:
            findings.append(
                f"instance {name!r}: balances {balances} + held escrow {held} "
                f"!= supply {supply}"
            )

    escrows = harvest_escrows(deployment)
    in_transit = 0
    for xtx, pair in sorted(escrows.items()):
        out = pair.get("out")
        into = pair.get("in")
        if into is not None and into["status"] == "credited":
            if out is None or out["status"] != "settled":
                findings.append(
                    f"xtx {xtx}: credited on {into['instance']!r} without a "
                    f"settled source hold (value minted)"
                )
            elif int(out["amount"]) != int(into["amount"]):
                findings.append(
                    f"xtx {xtx}: settled {out['amount']} but credited {into['amount']}"
                )
        if out is not None and out["status"] == "settled":
            if into is None:
                findings.append(
                    f"xtx {xtx}: settled on {out['instance']!r} with no target "
                    f"escrow record at all"
                )
            elif into["status"] == "expected":
                # Decision made (a commit certificate existed) but the
                # credit has not executed: value in transit, conserved.
                in_transit += int(out["amount"])
            elif into["status"] == "cancelled":
                findings.append(
                    f"xtx {xtx}: settled on {out['instance']!r} but cancelled on "
                    f"{into['instance']!r} (contradictory decisions)"
                )
        # Fast-path voucher pairing: a redeem needs a minted, unreclaimed
        # source voucher; an outstanding voucher is value in transit (it
        # redeems with the voucher or reclaims after its deadline).
        if into is not None and into["status"] == "redeemed":
            if out is None:
                findings.append(
                    f"xtx {xtx}: voucher redeemed on {into['instance']!r} with "
                    f"no minted source voucher (value minted)"
                )
            elif out["status"] == "voucher_reclaimed":
                findings.append(
                    f"xtx {xtx}: voucher redeemed on {into['instance']!r} but "
                    f"reclaimed on {out['instance']!r} (double spend)"
                )
            elif out["status"] != "voucher":
                findings.append(
                    f"xtx {xtx}: redeemed on {into['instance']!r} but the "
                    f"source record on {out['instance']!r} has status "
                    f"{out['status']!r}, not a minted voucher"
                )
            elif int(out["amount"]) != int(into["amount"]):
                findings.append(
                    f"xtx {xtx}: vouched {out['amount']} but redeemed "
                    f"{into['amount']}"
                )
        if out is not None and out["status"] == "voucher":
            if into is None or into.get("status") != "redeemed":
                in_transit += int(out["amount"])

    minted_total = sum(minted.values())
    if minted_total != total_supply + in_transit:
        findings.append(
            f"global: minted {minted_total} != supplies {total_supply} "
            f"+ in-transit {in_transit}"
        )
    return OracleResult(
        oracle="conservation",
        passed=not findings,
        findings=findings,
        metrics={
            "instances": len(instances),
            "supply_total": total_supply,
            "held_total": total_held,
            "in_transit": in_transit,
            "escrow_pairs": len(escrows),
        },
    )
