"""Independent auditing of Blockumulus deployments."""

from .auditor import AuditError, AuditFinding, AuditReport, Auditor, ShardedAuditor
from .oracles import (
    OracleResult,
    fastmoney_instances,
    harvest_escrows,
    run_audit_oracle,
    run_conservation_oracle,
)

__all__ = [
    "AuditError",
    "AuditFinding",
    "AuditReport",
    "Auditor",
    "OracleResult",
    "ShardedAuditor",
    "fastmoney_instances",
    "harvest_escrows",
    "run_audit_oracle",
    "run_conservation_oracle",
]
