"""Independent auditing of Blockumulus deployments."""

from .auditor import AuditError, AuditFinding, AuditReport, Auditor

__all__ = ["AuditError", "AuditFinding", "AuditReport", "Auditor"]
