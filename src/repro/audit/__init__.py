"""Independent auditing of Blockumulus deployments."""

from .auditor import AuditError, AuditFinding, AuditReport, Auditor, ShardedAuditor

__all__ = ["AuditError", "AuditFinding", "AuditReport", "Auditor", "ShardedAuditor"]
