"""Blocks of the simulated Ethereum chain."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.keccak import keccak256
from ..crypto.keys import Address
from ..crypto.merkle import merkle_root
from ..encoding import rlp
from .transaction import EthTransaction, TransactionReceipt

#: Genesis parent hash.
GENESIS_PARENT_HASH = b"\x00" * 32
#: Block gas limit (mainnet-era value; bounds how many reports fit a block).
DEFAULT_BLOCK_GAS_LIMIT = 15_000_000


@dataclass
class BlockHeader:
    """Header fields that feed the block hash."""

    number: int
    parent_hash: bytes
    timestamp: float
    miner: Address
    transactions_root: bytes
    state_nonce: int = 0
    gas_used: int = 0
    gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT
    difficulty: int = 1

    def hash(self) -> bytes:
        """Keccak hash of the RLP-encoded header."""
        encoded = rlp.encode(
            [
                self.number,
                self.parent_hash,
                int(self.timestamp * 1000),
                self.miner.value,
                self.transactions_root,
                self.state_nonce,
                self.gas_used,
                self.gas_limit,
                self.difficulty,
            ]
        )
        return keccak256(encoded)

    def hash_hex(self) -> str:
        """0x-prefixed block hash."""
        return "0x" + self.hash().hex()


@dataclass
class Block:
    """A block: header plus the transactions it includes."""

    header: BlockHeader
    transactions: list[EthTransaction] = field(default_factory=list)
    receipts: list[TransactionReceipt] = field(default_factory=list)

    @property
    def number(self) -> int:
        """Block height."""
        return self.header.number

    @property
    def timestamp(self) -> float:
        """Block timestamp (simulated seconds)."""
        return self.header.timestamp

    def hash(self) -> bytes:
        """The block hash."""
        return self.header.hash()

    def hash_hex(self) -> str:
        """0x-prefixed block hash."""
        return self.header.hash_hex()

    def byte_size(self) -> int:
        """Approximate serialized block size (header + transactions)."""
        return 512 + sum(tx.byte_size() for tx in self.transactions)


def build_block(
    number: int,
    parent_hash: bytes,
    timestamp: float,
    miner: Address,
    transactions: list[EthTransaction],
    gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT,
) -> Block:
    """Assemble an (unexecuted) block over ``transactions``."""
    tx_root = merkle_root([tx.hash() for tx in transactions]) if transactions else b"\x00" * 32
    header = BlockHeader(
        number=number,
        parent_hash=parent_hash,
        timestamp=timestamp,
        miner=miner,
        transactions_root=tx_root,
        gas_limit=gas_limit,
    )
    return Block(header=header, transactions=list(transactions))
