"""Native contracts deployed on the simulated Ethereum chain."""

from .base import CallContext, ContractError, NativeContract, contract_method
from .erc20 import ERC20Token
from .snapshot_registry import SnapshotRegistry

__all__ = [
    "CallContext",
    "ContractError",
    "ERC20Token",
    "NativeContract",
    "SnapshotRegistry",
    "contract_method",
]
