"""A minimal ERC-20-style fungible token as a native contract.

Used by the Ethereum-L1 baseline (E9) to run the same payment workload that
FastMoney executes on Blockumulus, so fee and latency comparisons are
apples-to-apples, and by examples demonstrating the simulated chain on its
own.
"""

from __future__ import annotations

from typing import Any

from ...crypto.keys import Address
from .base import CallContext, ContractError, NativeContract, contract_method


class ERC20Token(NativeContract):
    """Fixed-supply fungible token with transfer/approve/transferFrom."""

    NAME = "ERC20Token"

    def __init__(self, address: Address, name: str, symbol: str, decimals: int = 18) -> None:
        super().__init__(address)
        self.token_name = name
        self.symbol = symbol
        self.decimals = decimals

    @staticmethod
    def _balance_key(owner: str) -> str:
        return f"balance/{owner}"

    @staticmethod
    def _allowance_key(owner: str, spender: str) -> str:
        return f"allowance/{owner}/{spender}"

    _SUPPLY_KEY = "total_supply"

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    def _get_balance(self, ctx: CallContext, owner: str) -> int:
        raw = self.sload(ctx, self._balance_key(owner))
        return int(raw.decode()) if raw else 0

    def _set_balance(self, ctx: CallContext, owner: str, amount: int) -> None:
        self.sstore(ctx, self._balance_key(owner), str(amount).encode())

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------
    @contract_method
    def mint(self, ctx: CallContext, to: str, amount: int) -> dict[str, Any]:
        """Create ``amount`` tokens for ``to`` (deployer-style faucet)."""
        if amount <= 0:
            raise ContractError("mint: amount must be positive")
        raw_supply = self.sload(ctx, self._SUPPLY_KEY)
        supply = int(raw_supply.decode()) if raw_supply else 0
        self._set_balance(ctx, to, self._get_balance(ctx, to) + amount)
        self.sstore(ctx, self._SUPPLY_KEY, str(supply + amount).encode())
        self.emit(ctx, "Transfer", source=None, destination=to, amount=amount)
        return {"to": to, "amount": amount}

    @contract_method
    def transfer(self, ctx: CallContext, to: str, amount: int) -> dict[str, Any]:
        """Move ``amount`` tokens from the caller to ``to``."""
        if amount <= 0:
            raise ContractError("transfer: amount must be positive")
        sender = ctx.sender.hex()
        balance = self._get_balance(ctx, sender)
        if balance < amount:
            raise ContractError("transfer: insufficient balance")
        self._set_balance(ctx, sender, balance - amount)
        self._set_balance(ctx, to, self._get_balance(ctx, to) + amount)
        self.emit(ctx, "Transfer", source=sender, destination=to, amount=amount)
        return {"from": sender, "to": to, "amount": amount}

    @contract_method
    def approve(self, ctx: CallContext, spender: str, amount: int) -> dict[str, Any]:
        """Authorize ``spender`` to transfer up to ``amount`` of caller funds."""
        if amount < 0:
            raise ContractError("approve: amount must be non-negative")
        owner = ctx.sender.hex()
        self.sstore(ctx, self._allowance_key(owner, spender), str(amount).encode())
        self.emit(ctx, "Approval", owner=owner, spender=spender, amount=amount)
        return {"owner": owner, "spender": spender, "amount": amount}

    @contract_method
    def transfer_from(self, ctx: CallContext, owner: str, to: str, amount: int) -> dict[str, Any]:
        """Spend an allowance granted by ``owner``."""
        if amount <= 0:
            raise ContractError("transfer_from: amount must be positive")
        spender = ctx.sender.hex()
        raw_allowance = self.sload(ctx, self._allowance_key(owner, spender))
        allowance = int(raw_allowance.decode()) if raw_allowance else 0
        if allowance < amount:
            raise ContractError("transfer_from: allowance exceeded")
        balance = self._get_balance(ctx, owner)
        if balance < amount:
            raise ContractError("transfer_from: insufficient owner balance")
        self.sstore(ctx, self._allowance_key(owner, spender), str(allowance - amount).encode())
        self._set_balance(ctx, owner, balance - amount)
        self._set_balance(ctx, to, self._get_balance(ctx, to) + amount)
        self.emit(ctx, "Transfer", source=owner, destination=to, amount=amount)
        return {"from": owner, "to": to, "amount": amount}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def balance_of(self, state, owner: Address | str) -> int:
        """Token balance of ``owner`` (gas-free view)."""
        key = owner.hex() if isinstance(owner, Address) else owner
        raw = self.view(state, self._balance_key(key))
        return int(raw.decode()) if raw else 0

    def total_supply(self, state) -> int:
        """Total minted supply (gas-free view)."""
        raw = self.view(state, self._SUPPLY_KEY)
        return int(raw.decode()) if raw else 0
