"""Base class for native contracts on the simulated Ethereum chain.

The real Blockumulus deployment anchors snapshots in a Solidity contract.
Re-implementing the EVM is out of scope for the reproduction (and would not
change any measured quantity), so contracts on the simulated chain are
Python classes that (a) keep their state in the account's storage dict,
(b) meter gas through :class:`repro.ethchain.gas.GasMeter` using the real
opcode prices for the storage/hashing work they do, and (c) are invoked
through normal signed transactions carrying ABI-like calldata.  The gas a
call reports is therefore comparable with what the Solidity version pays,
which is all Table III needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

from ...crypto.keys import Address
from ..gas import (
    COLD_ACCOUNT_ACCESS_GAS,
    COLD_SLOAD_GAS,
    GasMeter,
    SSTORE_RESET_GAS,
    SSTORE_SET_GAS,
    WARM_SLOAD_GAS,
    keccak_gas,
    log_gas,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..account import WorldState


class ContractError(Exception):
    """Raised by contract logic to revert the calling transaction."""


@dataclass
class CallContext:
    """Everything a contract method can see about the calling transaction."""

    sender: Address
    value: int
    block_number: int
    timestamp: float
    gas: GasMeter
    state: "WorldState"
    address: Address
    logs: list[dict[str, Any]]


class NativeContract:
    """A contract implemented natively in Python with EVM-style gas metering.

    Subclasses define public methods decorated with :func:`contract_method`;
    dispatch happens by method name from the transaction calldata.  State
    access must go through :meth:`sload` / :meth:`sstore` so gas is charged
    at the standard rates and every write lands in the account storage that
    the chain state root covers.
    """

    #: Human-readable contract type name (set by subclasses).
    NAME = "native"

    def __init__(self, address: Address) -> None:
        self.address = address
        self._methods: dict[str, Callable[..., Any]] = {}
        for attr_name in dir(self):
            attr = getattr(self, attr_name)
            if callable(attr) and getattr(attr, "_is_contract_method", False):
                self._methods[attr_name] = attr

    # ------------------------------------------------------------------
    # Storage helpers (gas-metered)
    # ------------------------------------------------------------------
    def sload(self, ctx: CallContext, key: str, warm: bool = False) -> Optional[bytes]:
        """Read a storage slot, charging cold/warm SLOAD gas."""
        ctx.gas.charge(WARM_SLOAD_GAS if warm else COLD_SLOAD_GAS, f"sload {key}")
        return ctx.state.storage_get(self.address, key)

    def sstore(self, ctx: CallContext, key: str, value: bytes) -> None:
        """Write a storage slot, charging the new-slot or reset price."""
        existing = ctx.state.storage_get(self.address, key)
        ctx.gas.charge(COLD_SLOAD_GAS, f"sstore cold access {key}")
        if existing is None:
            ctx.gas.charge(SSTORE_SET_GAS, f"sstore set {key}")
        else:
            ctx.gas.charge(SSTORE_RESET_GAS, f"sstore reset {key}")
        ctx.state.storage_set(self.address, key, value)

    def charge_keccak(self, ctx: CallContext, data_length: int) -> None:
        """Charge for hashing ``data_length`` bytes inside the contract."""
        ctx.gas.charge(keccak_gas(data_length), "keccak")

    def emit(self, ctx: CallContext, event: str, **fields: Any) -> None:
        """Emit a log entry (charged at LOG prices)."""
        # lint: disable=DET003 — sum() is commutative; only the total reaches gas accounting
        data_length = sum(len(str(value)) for value in fields.values())
        ctx.gas.charge(log_gas(topics=1, data_length=data_length), f"log {event}")
        ctx.logs.append({"event": event, "address": self.address.hex(), **fields})

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def call(self, ctx: CallContext, method: str, args: dict[str, Any]) -> Any:
        """Dispatch ``method`` with ``args``; raises ContractError on revert."""
        ctx.gas.charge(COLD_ACCOUNT_ACCESS_GAS, "call target access")
        handler = self._methods.get(method)
        if handler is None:
            raise ContractError(f"{self.NAME}: unknown method {method!r}")
        return handler(ctx, **args)

    def view(self, state: "WorldState", key: str) -> Optional[bytes]:
        """Gas-free read used by off-chain observers (eth_call analogue)."""
        return state.storage_get(self.address, key)


def contract_method(func: Callable[..., Any]) -> Callable[..., Any]:
    """Mark a method as externally callable through transactions."""
    func._is_contract_method = True  # type: ignore[attr-defined]
    return func
