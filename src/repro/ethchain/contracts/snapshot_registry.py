"""The Blockumulus anchor contract (Solidity contract in the paper).

This is the on-chain half of the overlay consensus (Section III-A3): each
cell periodically reports the fingerprint of its current data snapshot; the
contract records the report immutably and refuses repeated reports for the
same cycle, so any later mismatch between a cell's published data and its
anchored fingerprint is publicly verifiable proof of misbehaviour.

The contract also implements the censorship-resistance escape hatch of
Section V-B: any user can submit a Blockumulus transaction directly to the
contract ("contingency transaction"), and the protocol obliges cells to
execute everything submitted this way.
"""

from __future__ import annotations

from typing import Any, Optional

from ...crypto.keys import Address
from ...encoding import canonical_json
from .base import CallContext, ContractError, NativeContract, contract_method


class SnapshotRegistry(NativeContract):
    """On-chain registry of Blockumulus snapshot fingerprints."""

    NAME = "SnapshotRegistry"

    def __init__(
        self,
        address: Address,
        deployment_id: str,
        cells: list[Address],
        report_period: int,
        initial_timestamp: int,
    ) -> None:
        super().__init__(address)
        if report_period <= 0:
            raise ValueError("report period must be positive")
        if not cells:
            raise ValueError("a deployment needs at least one cell")
        # System invariants are fixed at deployment time and kept on the
        # instance (they would be immutable constructor arguments in
        # Solidity); reports and contingency transactions live in storage.
        self.deployment_id = deployment_id
        self.cells = list(cells)
        self.report_period = int(report_period)
        self.initial_timestamp = int(initial_timestamp)

    # ------------------------------------------------------------------
    # Storage keys
    # ------------------------------------------------------------------
    @staticmethod
    def _report_key(cycle: int, cell: Address) -> str:
        return f"report/{cycle}/{cell.hex()}"

    @staticmethod
    def _contingency_key(index: int) -> str:
        return f"contingency/{index}"

    _CONTINGENCY_COUNT_KEY = "contingency_count"

    # ------------------------------------------------------------------
    # Externally callable methods
    # ------------------------------------------------------------------
    @contract_method
    def report(self, ctx: CallContext, cycle: int, fingerprint: str) -> dict[str, Any]:
        """Record the snapshot ``fingerprint`` of ``ctx.sender`` for ``cycle``.

        Reverts if the sender is not one of the consortium cells or if the
        sender has already reported for this cycle (retrospective
        modification is thereby impossible).
        """
        if ctx.sender not in self.cells:
            raise ContractError("report: sender is not a registered cell")
        if not isinstance(cycle, int) or cycle < 0:
            raise ContractError("report: cycle must be a non-negative integer")
        fingerprint_bytes = parse_fingerprint(fingerprint)
        key = self._report_key(cycle, ctx.sender)
        existing = self.sload(ctx, key)
        if existing is not None:
            raise ContractError(f"report: cycle {cycle} already reported by this cell")
        self.charge_keccak(ctx, len(fingerprint_bytes))
        self.sstore(ctx, key, fingerprint_bytes)
        self.emit(ctx, "SnapshotReported", cell=ctx.sender.hex(), cycle=cycle,
                  fingerprint="0x" + fingerprint_bytes.hex())
        return {"cycle": cycle, "cell": ctx.sender.hex()}

    @contract_method
    def submit_contingency(self, ctx: CallContext, transaction: dict[str, Any]) -> dict[str, Any]:
        """Store a censored Blockumulus transaction for mandatory execution."""
        if not isinstance(transaction, dict) or not transaction:
            raise ContractError("submit_contingency: transaction payload required")
        encoded = canonical_json.dump_bytes(transaction)
        count = self._read_contingency_count(ctx)
        self.charge_keccak(ctx, len(encoded))
        self.sstore(ctx, self._contingency_key(count), encoded)
        self.sstore(ctx, self._CONTINGENCY_COUNT_KEY, str(count + 1).encode())
        self.emit(ctx, "ContingencySubmitted", index=count, submitter=ctx.sender.hex())
        return {"index": count}

    def _read_contingency_count(self, ctx: CallContext) -> int:
        raw = self.sload(ctx, self._CONTINGENCY_COUNT_KEY)
        return int(raw.decode()) if raw else 0

    # ------------------------------------------------------------------
    # Gas-free views (eth_call analogues used by cells and auditors)
    # ------------------------------------------------------------------
    def get_report(self, state, cycle: int, cell: Address) -> Optional[bytes]:
        """The fingerprint reported by ``cell`` for ``cycle`` (or None).

        The time at which the report landed is available from the mined
        transaction's receipt/block rather than contract storage, keeping
        the per-report gas close to the 49,193 gas the paper measures.
        """
        return self.view(state, self._report_key(cycle, cell))

    def reports_for_cycle(self, state, cycle: int) -> dict[str, bytes]:
        """All reports recorded for ``cycle``, keyed by cell address hex."""
        reports = {}
        for cell in self.cells:
            fingerprint = self.get_report(state, cycle, cell)
            if fingerprint is not None:
                reports[cell.hex()] = fingerprint
        return reports

    def contingency_count(self, state) -> int:
        """Number of contingency transactions submitted so far."""
        raw = self.view(state, self._CONTINGENCY_COUNT_KEY)
        return int(raw.decode()) if raw else 0

    def get_contingency(self, state, index: int) -> Optional[dict[str, Any]]:
        """Fetch the contingency transaction at ``index``."""
        raw = self.view(state, self._contingency_key(index))
        return canonical_json.loads(raw) if raw else None

    def all_contingencies(self, state) -> list[dict[str, Any]]:
        """All contingency transactions, in submission order."""
        return [
            self.get_contingency(state, index)
            for index in range(self.contingency_count(state))
        ]


def parse_fingerprint(fingerprint: str | bytes) -> bytes:
    """Normalize a 32-byte fingerprint supplied as hex or bytes."""
    if isinstance(fingerprint, bytes):
        value = fingerprint
    elif isinstance(fingerprint, str):
        text = fingerprint[2:] if fingerprint.startswith("0x") else fingerprint
        try:
            value = bytes.fromhex(text)
        except ValueError as exc:
            raise ContractError("report: fingerprint is not valid hex") from exc
    else:
        raise ContractError("report: fingerprint must be hex or bytes")
    if len(value) != 32:
        raise ContractError("report: fingerprint must be exactly 32 bytes")
    return value
