"""An Ethereum node process living inside the discrete-event simulation.

The node owns a :class:`Blockchain` and a :class:`Mempool` and runs a miner
process that produces blocks at stochastic intervals (Ropsten-like ~13 s
mean by default).  Cells submit snapshot reports to it, clients submit
contingency transactions to it, and auditors read anchored fingerprints
from it — all through the provider interface in
:mod:`repro.ethchain.provider`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

if TYPE_CHECKING:
    import random

from ..crypto.keys import Address, PrivateKey
from ..sim.environment import Environment
from ..sim.events import Event
from .chain import Blockchain, ChainConfig
from .mempool import Mempool, MempoolError
from .transaction import EthTransaction, TransactionReceipt


class EthereumNode:
    """A mining Ethereum node attached to a simulation environment."""

    def __init__(
        self,
        env: Environment,
        rng: random.Random,
        config: ChainConfig | None = None,
        miner_key: PrivateKey | None = None,
        auto_mine: bool = True,
    ) -> None:
        self.env = env
        self.rng = rng
        self.chain = Blockchain(config=config, genesis_time=env.now)
        self.mempool = Mempool()
        self.miner_key = miner_key or PrivateKey.from_seed("simulated-miner")
        self._receipt_waiters: dict[str, list[Event]] = {}
        self._mining_process = None
        if auto_mine:
            self.start_mining()

    @property
    def miner_address(self) -> Address:
        """Address collecting block rewards/fees."""
        return self.miner_key.address

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def start_mining(self) -> None:
        """Start the block-production process (idempotent)."""
        if self._mining_process is None or not self._mining_process.is_alive:
            self._mining_process = self.env.process(self._mine_loop())

    def _next_block_delay(self) -> float:
        """PoW block intervals are approximately exponential."""
        interval = self.chain.config.target_block_interval
        return max(0.5, self.rng.expovariate(1.0 / interval))

    def _mine_loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.env.timeout(self._next_block_delay())
            self.mine_block()

    def mine_block(self) -> Optional[object]:
        """Mine one block immediately from the current mempool contents."""
        selected = self.mempool.select_for_block(
            self.chain.expected_nonces(), self.chain.config.block_gas_limit
        )
        block = self.chain.apply_block(selected, self.miner_address, self.env.now)
        self.mempool.remove_mined(selected)
        for receipt in block.receipts:
            self._notify_receipt(receipt)
        return block

    def _notify_receipt(self, receipt: TransactionReceipt) -> None:
        waiters = self._receipt_waiters.pop(receipt.tx_hash, [])
        for event in waiters:
            if not event.triggered:
                event.succeed(receipt)

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------
    def submit_transaction(self, tx: EthTransaction) -> str:
        """Add a signed transaction to the mempool; returns its hash."""
        return self.mempool.add(tx)

    def submit_and_wait(self, tx: EthTransaction) -> Event:
        """Submit a transaction and return an event firing with its receipt."""
        try:
            tx_hash = self.submit_transaction(tx)
        except MempoolError as exc:
            failed = self.env.event()
            failed.fail(exc)
            return failed
        return self.wait_for_receipt(tx_hash)

    def wait_for_receipt(self, tx_hash: str) -> Event:
        """An event that fires with the receipt once the tx is mined."""
        event = self.env.event()
        existing = self.chain.receipt(tx_hash)
        if existing is not None:
            event.succeed(existing)
            return event
        self._receipt_waiters.setdefault(tx_hash, []).append(event)
        return event

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    def get_nonce(self, address: Address) -> int:
        """Next nonce for ``address``, counting pending mempool transactions."""
        base = self.chain.state.nonce_of(address)
        pending = [
            tx.nonce
            for tx in self.mempool.pending()
            if tx.sender == address and tx.nonce >= base
        ]
        return (max(pending) + 1) if pending else base

    def get_balance(self, address: Address) -> int:
        """Confirmed balance in wei."""
        return self.chain.state.balance_of(address)

    def get_receipt(self, tx_hash: str) -> Optional[TransactionReceipt]:
        """Receipt for a mined transaction, if any."""
        return self.chain.receipt(tx_hash)
