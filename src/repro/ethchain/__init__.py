"""A from-scratch simulated Ethereum blockchain.

Provides everything the Blockumulus overlay consensus needs from its public
anchor chain: secp256k1 accounts, RLP-encoded signed transactions, gas
metering on the mainnet schedule, PoW-style stochastic block production,
and native contracts — most importantly the :class:`SnapshotRegistry`
anchor contract and an :class:`ERC20Token` used by the L1 baseline.
"""

from .account import Account, StateError, WorldState
from .block import Block, BlockHeader, build_block
from .chain import Blockchain, ChainConfig, ChainError, make_funded_key
from .contracts import (
    CallContext,
    ContractError,
    ERC20Token,
    NativeContract,
    SnapshotRegistry,
    contract_method,
)
from .gas import FeeSchedule, GasMeter, OutOfGasError, intrinsic_gas
from .mempool import Mempool, MempoolError
from .node import EthereumNode
from .provider import Web3Provider
from .transaction import (
    EthTransaction,
    TransactionError,
    TransactionReceipt,
    decode_call_data,
    encode_call_data,
)

__all__ = [
    "Account",
    "Block",
    "BlockHeader",
    "Blockchain",
    "CallContext",
    "ChainConfig",
    "ChainError",
    "ContractError",
    "ERC20Token",
    "EthTransaction",
    "EthereumNode",
    "FeeSchedule",
    "GasMeter",
    "Mempool",
    "MempoolError",
    "NativeContract",
    "OutOfGasError",
    "SnapshotRegistry",
    "StateError",
    "TransactionError",
    "TransactionReceipt",
    "Web3Provider",
    "WorldState",
    "build_block",
    "contract_method",
    "decode_call_data",
    "encode_call_data",
    "intrinsic_gas",
    "make_funded_key",
]
