"""Accounts and world state for the simulated Ethereum chain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.keys import Address


class StateError(Exception):
    """Raised for invalid balance or nonce operations."""


@dataclass
class Account:
    """One account: externally owned if ``contract_name`` is None."""

    address: Address
    nonce: int = 0
    balance: int = 0
    contract_name: Optional[str] = None
    storage: dict[str, bytes] = field(default_factory=dict)

    @property
    def is_contract(self) -> bool:
        """True if this account hosts a native contract."""
        return self.contract_name is not None


class WorldState:
    """The account trie of the simulated chain (a plain dict here)."""

    def __init__(self) -> None:
        self._accounts: dict[Address, Account] = {}

    def account(self, address: Address) -> Account:
        """Get (creating lazily) the account at ``address``."""
        if address not in self._accounts:
            self._accounts[address] = Account(address=address)
        return self._accounts[address]

    def has_account(self, address: Address) -> bool:
        """Whether the address has been touched before."""
        return address in self._accounts

    def balance_of(self, address: Address) -> int:
        """Balance in wei (0 for untouched accounts)."""
        account = self._accounts.get(address)
        return account.balance if account else 0

    def nonce_of(self, address: Address) -> int:
        """Next expected transaction nonce."""
        account = self._accounts.get(address)
        return account.nonce if account else 0

    def credit(self, address: Address, amount: int) -> None:
        """Add ``amount`` wei to an account."""
        if amount < 0:
            raise StateError("cannot credit a negative amount")
        self.account(address).balance += amount

    def debit(self, address: Address, amount: int) -> None:
        """Remove ``amount`` wei from an account, failing on overdraft."""
        if amount < 0:
            raise StateError("cannot debit a negative amount")
        account = self.account(address)
        if account.balance < amount:
            raise StateError(
                f"insufficient balance at {address.short()}: "
                f"{account.balance} < {amount}"
            )
        account.balance -= amount

    def transfer(self, sender: Address, recipient: Address, amount: int) -> None:
        """Move ``amount`` wei from ``sender`` to ``recipient``."""
        self.debit(sender, amount)
        self.credit(recipient, amount)

    def increment_nonce(self, address: Address) -> None:
        """Advance the sender nonce after a transaction is applied."""
        self.account(address).nonce += 1

    def set_contract(self, address: Address, contract_name: str) -> None:
        """Mark an account as hosting the named native contract."""
        self.account(address).contract_name = contract_name

    def storage_get(self, address: Address, key: str) -> bytes | None:
        """Read a raw storage slot of a contract account."""
        account = self._accounts.get(address)
        if account is None:
            return None
        return account.storage.get(key)

    def storage_set(self, address: Address, key: str, value: bytes) -> bool:
        """Write a storage slot; returns True if the slot was previously empty."""
        account = self.account(address)
        fresh = key not in account.storage
        account.storage[key] = value
        return fresh

    def addresses(self) -> list[Address]:
        """All touched addresses."""
        return list(self._accounts)

    def snapshot_balances(self) -> dict[str, int]:
        """Hex-address -> balance mapping (handy for assertions in tests)."""
        return {address.hex(): account.balance for address, account in self._accounts.items()}
