"""The simulated Ethereum blockchain: state transitions and block storage.

The chain executes plain value transfers and calls to registered native
contracts (:mod:`repro.ethchain.contracts`), charging gas by the mainnet
schedule, collecting fees for the miner, and producing receipts.  It is
deliberately single-forked: the Blockumulus anchor contract only needs an
append-only, totally ordered log with fee accounting, and the paper treats
the public chain as a black box with exactly those properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..crypto.keccak import keccak256
from ..crypto.keys import Address, PrivateKey
from .account import StateError, WorldState
from .block import Block, GENESIS_PARENT_HASH, build_block
from .contracts.base import CallContext, ContractError, NativeContract
from .gas import FeeSchedule, GasMeter, OutOfGasError
from .transaction import (
    EthTransaction,
    TransactionError,
    TransactionReceipt,
    decode_call_data,
)


class ChainError(Exception):
    """Raised for invalid blocks or transactions at the chain level."""


@dataclass
class ChainConfig:
    """Chain-wide parameters."""

    chain_id: int = 1337
    block_gas_limit: int = 15_000_000
    #: Average seconds between blocks (Ropsten-like).
    target_block_interval: float = 13.0
    fee_schedule: FeeSchedule = field(default_factory=FeeSchedule)


class Blockchain:
    """A single-fork chain with native-contract execution."""

    def __init__(self, config: ChainConfig | None = None, genesis_time: float = 0.0) -> None:
        self.config = config or ChainConfig()
        self.state = WorldState()
        self.blocks: list[Block] = []
        self.receipts: dict[str, TransactionReceipt] = {}
        self.contracts: dict[Address, NativeContract] = {}
        self._genesis_time = genesis_time
        genesis = build_block(
            number=0,
            parent_hash=GENESIS_PARENT_HASH,
            timestamp=genesis_time,
            miner=Address.zero(),
            transactions=[],
            gas_limit=self.config.block_gas_limit,
        )
        self.blocks.append(genesis)

    # ------------------------------------------------------------------
    # Chain queries
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of the latest block."""
        return self.blocks[-1].number

    def latest_block(self) -> Block:
        """The most recently appended block."""
        return self.blocks[-1]

    def block_by_number(self, number: int) -> Block:
        """Fetch a block by height."""
        if not (0 <= number < len(self.blocks)):
            raise ChainError(f"unknown block number {number}")
        return self.blocks[number]

    def receipt(self, tx_hash: str) -> Optional[TransactionReceipt]:
        """Receipt of a mined transaction, or None if not yet mined."""
        return self.receipts.get(tx_hash)

    def expected_nonces(self) -> dict[Address, int]:
        """Next nonce per touched account (for mempool block selection)."""
        return {address: self.state.nonce_of(address) for address in self.state.addresses()}

    # ------------------------------------------------------------------
    # Account funding and contract deployment
    # ------------------------------------------------------------------
    def fund(self, address: Address, amount_wei: int) -> None:
        """Credit an account out of thin air (genesis/faucet helper)."""
        self.state.credit(address, amount_wei)

    def deploy_contract(self, contract: NativeContract) -> Address:
        """Register a native contract instance at its address."""
        if contract.address in self.contracts:
            raise ChainError(f"contract already deployed at {contract.address.hex()}")
        self.contracts[contract.address] = contract
        self.state.set_contract(contract.address, contract.NAME)
        return contract.address

    def contract_at(self, address: Address) -> NativeContract:
        """The contract instance deployed at ``address``."""
        try:
            return self.contracts[address]
        except KeyError:
            raise ChainError(f"no contract deployed at {address.hex()}") from None

    @staticmethod
    def contract_address_for(deployer: Address, salt: str) -> Address:
        """Deterministic contract address derivation (CREATE2-like)."""
        return Address(keccak256(deployer.value + salt.encode())[-20:])

    # ------------------------------------------------------------------
    # Transaction execution
    # ------------------------------------------------------------------
    def _execute_transaction(
        self, tx: EthTransaction, block_number: int, tx_index: int, timestamp: float
    ) -> TransactionReceipt:
        sender = tx.sender
        expected_nonce = self.state.nonce_of(sender)
        if tx.nonce != expected_nonce:
            raise ChainError(
                f"invalid nonce for {sender.short()}: got {tx.nonce}, expected {expected_nonce}"
            )
        max_fee = tx.max_fee()
        if self.state.balance_of(sender) < max_fee + tx.value:
            raise ChainError(f"insufficient funds for gas * price + value at {sender.short()}")

        # Charge the maximum fee up front; refund the unused part afterwards.
        self.state.debit(sender, max_fee)
        self.state.increment_nonce(sender)

        meter = GasMeter(tx.gas_limit)
        logs: list[dict[str, Any]] = []
        success = True
        error: Optional[str] = None
        return_value: Any = None
        try:
            meter.charge(tx.intrinsic_gas(), "intrinsic gas")
            if tx.value and tx.to is not None:
                self.state.transfer(sender, tx.to, tx.value)
            if tx.to is not None and tx.to in self.contracts:
                contract = self.contracts[tx.to]
                method, args = decode_call_data(tx.data)
                ctx = CallContext(
                    sender=sender,
                    value=tx.value,
                    block_number=block_number,
                    timestamp=timestamp,
                    gas=meter,
                    state=self.state,
                    address=tx.to,
                    logs=logs,
                )
                return_value = contract.call(ctx, method, args)
        except (ContractError, OutOfGasError, TransactionError, StateError) as exc:
            success = False
            error = f"{type(exc).__name__}: {exc}"
            # Revert the value transfer if it happened before the failure.
            if tx.value and tx.to is not None and isinstance(exc, (ContractError, OutOfGasError)):
                try:
                    self.state.transfer(tx.to, sender, tx.value)
                except StateError:
                    pass
            logs = []

        gas_used = meter.settle() if success else meter.gas_used
        gas_used = max(gas_used, tx.intrinsic_gas()) if gas_used else tx.intrinsic_gas()
        gas_used = min(gas_used, tx.gas_limit)
        fee = gas_used * tx.gas_price
        # Refund unused gas to the sender and pay the miner later via block apply.
        self.state.credit(sender, max_fee - fee)

        receipt = TransactionReceipt(
            tx_hash=tx.hash_hex(),
            block_number=block_number,
            tx_index=tx_index,
            sender=sender,
            to=tx.to,
            success=success,
            gas_used=gas_used,
            fee_wei=fee,
            return_value=return_value,
            error=error,
            logs=logs,
        )
        return receipt

    def apply_block(self, transactions: list[EthTransaction], miner: Address, timestamp: float) -> Block:
        """Execute ``transactions``, append the resulting block, return it."""
        parent = self.latest_block()
        if timestamp < parent.timestamp:
            timestamp = parent.timestamp
        block = build_block(
            number=parent.number + 1,
            parent_hash=parent.hash(),
            timestamp=timestamp,
            miner=miner,
            transactions=transactions,
            gas_limit=self.config.block_gas_limit,
        )
        total_gas = 0
        total_fees = 0
        for index, tx in enumerate(transactions):
            receipt = self._execute_transaction(tx, block.number, index, timestamp)
            block.receipts.append(receipt)
            self.receipts[receipt.tx_hash] = receipt
            total_gas += receipt.gas_used
            total_fees += receipt.fee_wei
        if total_gas > self.config.block_gas_limit:
            raise ChainError("block gas limit exceeded")
        block.header.gas_used = total_gas
        self.state.credit(miner, total_fees)
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    # Gas-free calls
    # ------------------------------------------------------------------
    def call_view(self, contract_address: Address, view_name: str, *args: Any) -> Any:
        """Invoke a named gas-free view method on a deployed contract."""
        contract = self.contract_at(contract_address)
        view = getattr(contract, view_name, None)
        if view is None or not callable(view):
            raise ChainError(f"{contract.NAME} has no view {view_name!r}")
        return view(self.state, *args)


def make_funded_key(chain: Blockchain, seed: str, ether: float = 100.0) -> PrivateKey:
    """Create a deterministic key and fund it on ``chain`` (test/bench helper)."""
    key = PrivateKey.from_seed(seed)
    chain.fund(key.address, int(ether * 10 ** 18))
    return key
